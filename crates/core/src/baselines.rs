//! The paper's comparison baselines: TopK-W, TopK-C and Random
//! (Section 5.3).
//!
//! All baselines return full [`SolveReport`]s — including trajectories and
//! the `I` array — so experiment code treats every algorithm uniformly. The
//! selection *order* of a baseline is its own ranking order (descending
//! weight / coverage; draw order for Random), which is what the
//! complementary-problem adaptation binary-searches over (Figure 4f).

// lint: allow-file(no-index) — per-item arrays (I-values, selection masks, gains) are sized to
// node_count and indexed by ItemId::index(); bounds-checked [] in the hot greedy
// loops is deliberate and in bounds by construction.
use std::time::Instant;

use rand::seq::index::sample;
use rand::SeedableRng;

use pcover_graph::{ItemId, PreferenceGraph};

use crate::cover::CoverState;
use crate::greedy::finish;
use crate::report::{Algorithm, SolveReport};
use crate::solver::{SolveCtx, Solver, SolverCaps, SolverSpec};
use crate::variant::CoverModel;
use crate::SolveError;

/// TopK-W: the naive baseline retaining the `k` best-selling items,
/// ignoring alternatives entirely.
pub fn top_k_weight<M: CoverModel>(
    g: &PreferenceGraph,
    k: usize,
) -> Result<SolveReport, SolveError> {
    let ranking = rank_by_weight(g);
    materialize::<M>(Algorithm::TopKWeight, g, k, &ranking)
}

/// TopK-C: retains the `k` items with the highest *singleton coverage*
/// `C({v})` — item weight plus the weighted requests it can serve as an
/// alternative. Alternatives are considered, but not the overlap between
/// the covers of different retained items.
pub fn top_k_coverage<M: CoverModel>(
    g: &PreferenceGraph,
    k: usize,
) -> Result<SolveReport, SolveError> {
    let ranking = rank_by_singleton_coverage(g);
    materialize::<M>(Algorithm::TopKCoverage, g, k, &ranking)
}

/// Random: retains `k` items uniformly at random (seeded, reproducible).
pub fn random<M: CoverModel>(
    g: &PreferenceGraph,
    k: usize,
    seed: u64,
) -> Result<SolveReport, SolveError> {
    let n = g.node_count();
    if k > n {
        return Err(SolveError::KTooLarge { k, n });
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut picked: Vec<ItemId> = sample(&mut rng, n, k)
        .into_iter()
        .map(ItemId::from_index)
        // lint: allow(alloc-in-hot-loop) — each random attempt owns its sampled selection: k entries, dwarfed by the O(n+m) evaluation it feeds
        .collect();
    // Fill the ranking with the unpicked remainder so `materialize` can
    // also serve prefix queries beyond k if ever needed.
    // lint: allow(alloc-in-hot-loop) — the ranking is part of the returned report and must own its storage
    let mut ranking = picked.clone();
    // lint: allow(alloc-in-hot-loop) — n-bit membership scratch; allocation is the documented cost of the random baseline
    let mut in_pick = vec![false; n];
    for &v in &picked {
        in_pick[v.index()] = true;
    }
    ranking.extend(g.node_ids().filter(|v| !in_pick[v.index()]));
    picked.truncate(k);
    materialize::<M>(Algorithm::Random, g, k, &ranking)
}

/// Random with the paper's evaluation protocol: best cover across
/// `attempts` independent draws (the paper takes the best of 10).
pub fn random_best_of<M: CoverModel>(
    g: &PreferenceGraph,
    k: usize,
    seed: u64,
    attempts: usize,
) -> Result<SolveReport, SolveError> {
    assert!(attempts > 0, "attempts must be positive");
    let mut best: Option<SolveReport> = None;
    for i in 0..attempts {
        let r = random::<M>(g, k, seed.wrapping_add(i as u64))?;
        if best.as_ref().is_none_or(|b| r.cover > b.cover) {
            best = Some(r);
        }
    }
    best.ok_or_else(|| SolveError::internal("best_of_random called with zero attempts"))
}

/// All node ids sorted by `(weight desc, id asc)` — the TopK-W ranking.
pub fn rank_by_weight(g: &PreferenceGraph) -> Vec<ItemId> {
    let mut ids: Vec<ItemId> = g.node_ids().collect();
    ids.sort_by(|&x, &y| {
        crate::float::cmp_gain(g.node_weight(y), g.node_weight(x)).then(x.cmp(&y))
    });
    ids
}

/// All node ids sorted by `(singleton coverage desc, id asc)` — the TopK-C
/// ranking.
///
/// At an empty retained set the two variants assign the same singleton
/// coverage `C({v}) = W(v) + Σ_{(u,v) ∈ E} W(u) · W(u, v)`, so the ranking
/// is variant-independent.
pub fn rank_by_singleton_coverage(g: &PreferenceGraph) -> Vec<ItemId> {
    let empty = CoverState::new(g.node_count());
    let mut scored: Vec<(f64, ItemId)> = g
        .node_ids()
        // Either model works at I ≡ 0; pick Normalized for definiteness.
        .map(|v| (empty.gain::<crate::Normalized>(g, v), v))
        .collect();
    scored.sort_by(|a, b| crate::float::cmp_gain(b.0, a.0).then(a.1.cmp(&b.1)));
    scored.into_iter().map(|(_, v)| v).collect()
}

/// Builds the report for the first `k` items of `ranking` by replaying them
/// through the incremental state (yielding trajectory and `I`).
fn materialize<M: CoverModel>(
    algorithm: Algorithm,
    g: &PreferenceGraph,
    k: usize,
    ranking: &[ItemId],
) -> Result<SolveReport, SolveError> {
    let started = Instant::now();
    let n = g.node_count();
    if k > n {
        return Err(SolveError::KTooLarge { k, n });
    }
    let mut state = CoverState::new(n);
    // lint: allow(alloc-in-hot-loop) — the trajectory is returned inside the report and must own its storage
    let mut trajectory = Vec::with_capacity(k);
    // Each AddNode replay is one oracle evaluation — counted so baseline
    // reports satisfy the registry-wide `gain_evaluations > 0` invariant.
    let mut gain_evaluations = 0u64;
    for &v in &ranking[..k] {
        state.add_node::<M>(g, v);
        gain_evaluations += 1;
        trajectory.push(state.cover());
    }
    Ok(finish::<M>(
        algorithm,
        state,
        trajectory,
        started,
        gain_evaluations,
    ))
}

/// TopK-W as a registry [`Solver`].
#[derive(Clone, Copy, Debug, Default)]
pub struct TopKWeight;

impl Solver for TopKWeight {
    fn solve<M: CoverModel>(
        &self,
        g: &PreferenceGraph,
        k: usize,
        ctx: &mut SolveCtx<'_>,
    ) -> Result<SolveReport, SolveError> {
        let report = top_k_weight::<M>(g, k)?;
        ctx.emit_report(&report);
        Ok(report)
    }
}

/// The registry entry for [`TopKWeight`].
pub fn top_k_weight_spec() -> SolverSpec {
    SolverSpec::new(
        "topk-w",
        Algorithm::TopKWeight,
        "TopK-W baseline: the k best-selling items by weight, ignoring alternatives",
        SolverCaps::default(),
        |v, g, k, ctx| TopKWeight.dispatch(v, g, k, ctx),
    )
}

/// TopK-C as a registry [`Solver`].
#[derive(Clone, Copy, Debug, Default)]
pub struct TopKCoverage;

impl Solver for TopKCoverage {
    fn solve<M: CoverModel>(
        &self,
        g: &PreferenceGraph,
        k: usize,
        ctx: &mut SolveCtx<'_>,
    ) -> Result<SolveReport, SolveError> {
        let mut report = top_k_coverage::<M>(g, k)?;
        // The ranking scan evaluates every node's singleton cover once.
        report.gain_evaluations += g.node_count() as u64;
        ctx.emit_report(&report);
        Ok(report)
    }
}

/// The registry entry for [`TopKCoverage`].
pub fn top_k_coverage_spec() -> SolverSpec {
    SolverSpec::new(
        "topk-c",
        Algorithm::TopKCoverage,
        "TopK-C baseline: the k items with highest singleton coverage, overlap-blind",
        SolverCaps::default(),
        |v, g, k, ctx| TopKCoverage.dispatch(v, g, k, ctx),
    )
}

/// The Random baseline (best-of-`attempts` draws) as a registry [`Solver`].
#[derive(Clone, Copy, Debug)]
pub struct RandomBestOf {
    /// RNG seed of the first draw; draw `i` uses `seed + i`.
    pub seed: u64,
    /// Independent draws to take the best of (clamped to at least 1).
    pub attempts: usize,
}

impl Solver for RandomBestOf {
    fn solve<M: CoverModel>(
        &self,
        g: &PreferenceGraph,
        k: usize,
        ctx: &mut SolveCtx<'_>,
    ) -> Result<SolveReport, SolveError> {
        let report = random_best_of::<M>(g, k, self.seed, self.attempts.max(1))?;
        ctx.emit_report(&report);
        Ok(report)
    }
}

/// The registry entry for [`RandomBestOf`]; seed and attempt count come
/// from the [`SolverConfig`](crate::solver::SolverConfig).
pub fn random_spec() -> SolverSpec {
    SolverSpec::new(
        "random",
        Algorithm::Random,
        "Random baseline: best cover over N uniform draws (the paper takes best of 10)",
        SolverCaps {
            needs_seed: true,
            ..SolverCaps::default()
        },
        |v, g, k, ctx| {
            RandomBestOf {
                seed: ctx.config.seed,
                attempts: ctx.config.random_attempts,
            }
            .dispatch(v, g, k, ctx)
        },
    )
}

/// Replays an arbitrary externally-chosen selection (in order) into a
/// report. Useful for evaluating hand-curated or pinned inventories.
pub fn evaluate_selection<M: CoverModel>(
    g: &PreferenceGraph,
    selection: &[ItemId],
) -> Result<SolveReport, SolveError> {
    let started = Instant::now();
    let n = g.node_count();
    if selection.len() > n {
        return Err(SolveError::KTooLarge {
            k: selection.len(),
            n,
        });
    }
    let mut state = CoverState::new(n);
    // lint: allow(alloc-in-hot-loop) — the trajectory is returned inside the report and must own its storage
    let mut trajectory = Vec::with_capacity(selection.len());
    for &v in selection {
        if v.index() >= n {
            return Err(SolveError::InvalidPrefix {
                message: format!("node {v} out of range"),
            });
        }
        if state.contains(v) {
            return Err(SolveError::InvalidPrefix {
                message: format!("node {v} listed twice"),
            });
        }
        state.add_node::<M>(g, v);
        trajectory.push(state.cover());
    }
    // Externally-chosen selections carry the BruteForce tag: like BF
    // output, the order is not a greedy trajectory, just an exact
    // evaluation of a given set.
    Ok(finish::<M>(
        Algorithm::BruteForce,
        state,
        trajectory,
        started,
        0,
    ))
}

#[cfg(test)]
mod tests {
    use pcover_graph::examples::figure1_ids;

    use crate::cover::cover_value;
    use crate::{greedy, Independent, Normalized};

    use super::*;

    #[test]
    fn top_k_weight_picks_best_sellers() {
        let (g, ids) = figure1_ids();
        let r = top_k_weight::<Normalized>(&g, 2).unwrap();
        // A (0.33) then B (0.22, tie with C broken by id).
        assert_eq!(r.order, vec![ids.a, ids.b]);
        // Introduction: {A, B} covers 77%.
        assert!((r.cover - 0.77).abs() < 1e-9);
    }

    #[test]
    fn greedy_beats_topk_on_figure1() {
        let (g, _) = figure1_ids();
        let gr = greedy::solve::<Normalized>(&g, 2).unwrap();
        let tw = top_k_weight::<Normalized>(&g, 2).unwrap();
        let tc = top_k_coverage::<Normalized>(&g, 2).unwrap();
        assert!(gr.cover > tw.cover);
        assert!(gr.cover >= tc.cover - 1e-12);
    }

    #[test]
    fn top_k_coverage_ranking() {
        let (g, ids) = figure1_ids();
        let ranking = rank_by_singleton_coverage(&g);
        // Singleton covers: B = 0.66, C = 0.22 + 0.22 = 0.44,
        // A = 0.33, D = 0.06 + 0.153 = 0.213, E = 0.17.
        assert_eq!(ranking[0], ids.b);
        assert_eq!(ranking[1], ids.c);
        assert_eq!(ranking[2], ids.a);
        assert_eq!(ranking[3], ids.d);
        assert_eq!(ranking[4], ids.e);
    }

    #[test]
    fn random_is_reproducible_and_valid() {
        let (g, _) = figure1_ids();
        let r1 = random::<Independent>(&g, 3, 42).unwrap();
        let r2 = random::<Independent>(&g, 3, 42).unwrap();
        assert_eq!(r1.order, r2.order);
        let r3 = random::<Independent>(&g, 3, 43).unwrap();
        // Different seeds may coincide on tiny graphs, but the cover must
        // always be consistent with a from-scratch evaluation.
        let mut mask = vec![false; g.node_count()];
        for &v in &r3.order {
            mask[v.index()] = true;
        }
        assert!((r3.cover - cover_value::<Independent>(&g, &mask)).abs() < 1e-9);
        assert_eq!(r3.order.len(), 3);
    }

    #[test]
    fn random_best_of_takes_the_best() {
        let (g, _) = figure1_ids();
        let single = random::<Normalized>(&g, 2, 7).unwrap();
        let best = random_best_of::<Normalized>(&g, 2, 7, 10).unwrap();
        assert!(best.cover >= single.cover - 1e-12);
    }

    #[test]
    fn evaluate_selection_validates() {
        let (g, ids) = figure1_ids();
        assert!(evaluate_selection::<Normalized>(&g, &[ids.b, ids.b]).is_err());
        assert!(evaluate_selection::<Normalized>(&g, &[pcover_graph::ItemId::new(40)]).is_err());
        let r = evaluate_selection::<Normalized>(&g, &[ids.b, ids.d]).unwrap();
        assert!((r.cover - 0.873).abs() < 1e-9);
    }

    #[test]
    fn k_too_large_rejected_by_all() {
        let (g, _) = figure1_ids();
        assert!(top_k_weight::<Normalized>(&g, 9).is_err());
        assert!(top_k_coverage::<Normalized>(&g, 9).is_err());
        assert!(random::<Normalized>(&g, 9, 1).is_err());
    }
}

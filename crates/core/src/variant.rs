//! The two Preference Cover variants as compile-time cover models.

use serde::{Deserialize, Serialize};

/// Runtime tag identifying a Preference Cover variant.
///
/// Use this at API boundaries (CLI flags, file metadata); the solvers
/// themselves are generic over [`CoverModel`] so the variant-specific
/// formulas compile to straight-line arithmetic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Variant {
    /// `IPC_k` — alternatives are independent events (Definition 2.1).
    Independent,
    /// `NPC_k` — at most one acceptable alternative per request
    /// (Definition 2.2); out-weight sums must be ≤ 1.
    Normalized,
}

impl Variant {
    /// Short lowercase name (`"independent"` / `"normalized"`) used in CLI
    /// flags and file names.
    pub fn name(self) -> &'static str {
        match self {
            Variant::Independent => "independent",
            Variant::Normalized => "normalized",
        }
    }

    /// Parses a variant name, case-insensitively; accepts the full names
    /// and the paper's suffixes `i`/`n`.
    pub fn parse(s: &str) -> Option<Variant> {
        match s.to_ascii_lowercase().as_str() {
            "independent" | "i" | "ipc" => Some(Variant::Independent),
            "normalized" | "n" | "npc" => Some(Variant::Normalized),
            _ => None,
        }
    }
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A Preference Cover variant as a zero-sized strategy type.
///
/// The entire difference between the paper's Algorithms 2/3 (Normalized) and
/// 4/5 (Independent) is the marginal contribution a newly retained node `v`
/// makes to the cover of a non-retained in-neighbor `u`. Everything else —
/// the greedy scheme, the incremental `I` array bookkeeping, lazy and
/// parallel variants — is shared and generic over this trait.
pub trait CoverModel: Copy + Send + Sync + 'static {
    /// The runtime tag for this model.
    const VARIANT: Variant;

    /// Marginal gain to the cover of a **non-retained** node `u` when a new
    /// node `v` with edge `u → v` of weight `w` is added to the retained
    /// set.
    ///
    /// * `w` — the edge weight `W(u, v)`.
    /// * `w_u` — the node weight `W(u)`.
    /// * `i_u` — the current `I[u]`: the probability `u` is requested *and*
    ///   already matched by the retained set.
    ///
    /// Independent (Algorithm 4, line 3): `w · (W(u) − I[u])` — the paper's
    /// `O(1)` simplification of multiplying the miss-product by `(1 − w)`.
    ///
    /// Normalized (Algorithm 2, line 3): `W(u) · w` — alternatives are
    /// mutually exclusive, so contributions add without interaction.
    fn marginal(w: f64, w_u: f64, i_u: f64) -> f64;

    /// The probability a request for a non-retained node is matched, given
    /// the multiset of edge weights toward its retained neighbors.
    ///
    /// Used by from-scratch cover evaluation ([`cover_value`]) and by tests
    /// as an independent oracle for the incremental bookkeeping.
    ///
    /// [`cover_value`]: crate::cover_value
    fn combine<I: Iterator<Item = f64>>(weights: I) -> f64;
}

/// The Independent variant (`IPC_k`): edge events are independent.
#[derive(Clone, Copy, Debug, Default)]
pub struct Independent;

impl CoverModel for Independent {
    const VARIANT: Variant = Variant::Independent;

    #[inline]
    fn marginal(w: f64, w_u: f64, i_u: f64) -> f64 {
        w * (w_u - i_u)
    }

    #[inline]
    fn combine<I: Iterator<Item = f64>>(weights: I) -> f64 {
        let miss: f64 = weights.map(|w| 1.0 - w).product();
        1.0 - miss
    }
}

/// The Normalized variant (`NPC_k`): at most one acceptable alternative per
/// request; edge weights out of a node sum to at most 1.
#[derive(Clone, Copy, Debug, Default)]
pub struct Normalized;

impl CoverModel for Normalized {
    const VARIANT: Variant = Variant::Normalized;

    #[inline]
    fn marginal(w: f64, w_u: f64, _i_u: f64) -> f64 {
        w_u * w
    }

    #[inline]
    fn combine<I: Iterator<Item = f64>>(weights: I) -> f64 {
        weights.sum()
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exactly-representable constants
mod tests {
    use super::*;

    #[test]
    fn variant_names_roundtrip() {
        for v in [Variant::Independent, Variant::Normalized] {
            assert_eq!(Variant::parse(v.name()), Some(v));
        }
        assert_eq!(Variant::parse("I"), Some(Variant::Independent));
        assert_eq!(Variant::parse("NPC"), Some(Variant::Normalized));
        assert_eq!(Variant::parse("bogus"), None);
    }

    #[test]
    fn independent_combine_is_inclusion_exclusion() {
        let p = Independent::combine([0.5, 0.5].into_iter());
        assert!((p - 0.75).abs() < 1e-12);
        assert_eq!(Independent::combine(std::iter::empty()), 0.0);
        // A sure alternative matches with certainty.
        assert_eq!(Independent::combine([1.0, 0.3].into_iter()), 1.0);
    }

    #[test]
    fn normalized_combine_is_a_sum() {
        let p = Normalized::combine([0.2, 0.3].into_iter());
        assert!((p - 0.5).abs() < 1e-12);
        assert_eq!(Normalized::combine(std::iter::empty()), 0.0);
    }

    #[test]
    fn independent_marginal_shrinks_with_existing_cover() {
        // Once u is partially covered, the marginal of a new alternative
        // shrinks proportionally — the submodularity driver.
        let fresh = Independent::marginal(0.5, 0.4, 0.0);
        let partly = Independent::marginal(0.5, 0.4, 0.2);
        assert!((fresh - 0.2).abs() < 1e-12);
        assert!((partly - 0.1).abs() < 1e-12);
        assert!(partly < fresh);
    }

    #[test]
    fn normalized_marginal_ignores_existing_cover() {
        assert_eq!(
            Normalized::marginal(0.5, 0.4, 0.0),
            Normalized::marginal(0.5, 0.4, 0.3)
        );
    }
}

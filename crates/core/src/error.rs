//! Solver error types.

use std::fmt;

use crate::variant::Variant;

/// Errors raised by the solvers in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// `k` exceeds the number of nodes in the graph.
    KTooLarge {
        /// The requested retained-set size.
        k: usize,
        /// The number of available items.
        n: usize,
    },
    /// The brute-force solver would enumerate more subsets than its
    /// configured limit.
    TooManySubsets {
        /// `C(n, k)`, the number of subsets that would be evaluated
        /// (saturating).
        subsets: u128,
        /// The configured enumeration limit.
        limit: u128,
    },
    /// The brute-force bitmask representation supports at most 64 nodes.
    TooManyNodesForBruteForce {
        /// The number of nodes in the instance.
        n: usize,
    },
    /// The minimization threshold cannot be reached even by retaining every
    /// item.
    ThresholdUnreachable {
        /// The requested cover threshold.
        threshold: f64,
        /// The best cover achievable (retaining all items).
        achievable: f64,
    },
    /// The minimization threshold is not a finite probability in `[0, 1]`.
    InvalidThreshold {
        /// The rejected threshold.
        threshold: f64,
    },
    /// A requested thread count of zero.
    ZeroThreads,
    /// A registered solver was asked to run under a cover variant it does
    /// not support (e.g. the VC-reduction solver under IPC).
    UnsupportedVariant {
        /// The registry name of the solver.
        solver: String,
        /// The rejected variant.
        variant: Variant,
    },
    /// A pinned-prefix solve received a prefix longer than `k` or containing
    /// duplicates/out-of-range ids.
    InvalidPrefix {
        /// What was wrong with the prefix.
        message: String,
    },
    /// The installed [`crate::Observer`] reported cancellation (deadline
    /// exceeded, shutdown in progress, …) and the solve stopped early.
    /// Incremental solvers check between rounds; every registered solver
    /// checks at least once on entry via [`crate::SolverSpec::solve`].
    Cancelled,
    /// A solver invariant that should hold by construction was violated.
    /// Reaching this is a bug in the solver, not bad input; it exists so
    /// library code can propagate the condition instead of panicking
    /// mid-batch (see the `no-expect`/`no-panic` lint rules).
    Internal {
        /// Which invariant failed.
        message: String,
    },
}

impl SolveError {
    /// Builds an [`SolveError::Internal`] from any displayable reason.
    pub fn internal(message: impl Into<String>) -> Self {
        SolveError::Internal {
            message: message.into(),
        }
    }
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::KTooLarge { k, n } => {
                write!(f, "k = {k} exceeds the number of items n = {n}")
            }
            SolveError::TooManySubsets { subsets, limit } => write!(
                f,
                "brute force would enumerate {subsets} subsets, above the limit of {limit}"
            ),
            SolveError::TooManyNodesForBruteForce { n } => write!(
                f,
                "brute force supports at most 64 nodes, instance has {n}"
            ),
            SolveError::ThresholdUnreachable {
                threshold,
                achievable,
            } => write!(
                f,
                "cover threshold {threshold} unreachable; retaining everything covers only {achievable}"
            ),
            SolveError::InvalidThreshold { threshold } => {
                write!(f, "threshold {threshold} is not a probability in [0, 1]")
            }
            SolveError::ZeroThreads => write!(f, "thread count must be at least 1"),
            SolveError::UnsupportedVariant { solver, variant } => write!(
                f,
                "solver '{solver}' does not support the {} variant",
                variant.name()
            ),
            SolveError::InvalidPrefix { message } => write!(f, "invalid prefix: {message}"),
            SolveError::Cancelled => {
                write!(f, "solve cancelled by observer before completion")
            }
            SolveError::Internal { message } => {
                write!(f, "internal solver invariant violated: {message}")
            }
        }
    }
}

impl std::error::Error for SolveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_key_numbers() {
        let e = SolveError::KTooLarge { k: 10, n: 5 };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains('5'));

        let e = SolveError::ThresholdUnreachable {
            threshold: 0.99,
            achievable: 0.8,
        };
        assert!(e.to_string().contains("0.99"));
    }
}

//! # pcover-core
//!
//! Solvers for the **Preference Cover** problem — the primary contribution of
//! "Inventory Reduction via Maximal Coverage in E-Commerce" (Gershtein, Milo,
//! Novgorodov — EDBT 2020).
//!
//! Given a preference graph (see [`pcover_graph`]) and a budget `k`, select
//! `k` items to retain so that the probability a random purchase request is
//! *matched* — either because the requested item is retained or because a
//! retained alternative is acceptable — is maximized. Two variants interpret
//! the dependency between alternatives differently:
//!
//! * [`Independent`] (`IPC_k`, Definition 2.1): alternatives are independent
//!   events; a non-retained request for `v` is matched with probability
//!   `1 − Π_{u ∈ R_v(S)} (1 − W(v, u))`.
//! * [`Normalized`] (`NPC_k`, Definition 2.2): each consumer accepts at most
//!   one alternative; matching probability is `Σ_{u ∈ R_v(S)} W(v, u)` and
//!   out-weight sums are bounded by 1.
//!
//! ## Algorithms
//!
//! | Module | Algorithm | Guarantee | Notes |
//! |---|---|---|---|
//! | [`greedy`] | Algorithm 1 of the paper (with variant-specific `Gain`/`AddNode`, Algorithms 2–5) | `1 − 1/e` for IPC (tight); `max{1 − 1/e, 1 − (1 − k/n)²}` for NPC | `O(nkD)` |
//! | [`lazy`] | Lazy greedy with a stale-gain priority queue | same set quality (both cover functions are monotone submodular) | near-linear in practice |
//! | [`delta`] | Dirty-set gain maintenance (cached gains, CSR-derived invalidation) | identical result to [`greedy`] | `O(n)` first round, `O(dirty)` after |
//! | [`parallel`] | Rayon data-parallel gain scans | identical result to [`greedy`] | `O(k + nkD/N)` on `N` threads |
//! | [`brute_force`] | Exact enumeration | optimal | tiny instances only (the paper's BF baseline) |
//! | [`baselines`] | TopK-W, TopK-C, Random | none | the paper's comparison baselines |
//! | [`minimize`] | Greedy for the complementary problem (smallest set reaching a cover threshold) | ln-style greedy set cover behavior | no `O(log n)` binary-search overhead |
//! | [`stochastic`] | Stochastic greedy (sampled scans) | `1 − 1/e − ε` in expectation | beyond-paper; k-independent work |
//! | [`streaming`] | Sieve-streaming single-pass selection | `1/2 − ε` | beyond-paper |
//! | [`local_search`] | Swap-refinement of any feasible set | `1/2` standalone; never degrades its input | beyond-paper |
//!
//! ## Quick example
//!
//! ```
//! use pcover_core::{greedy, Normalized};
//! use pcover_graph::examples::figure1;
//!
//! let g = figure1();
//! let report = greedy::solve::<Normalized>(&g, 2).unwrap();
//! // Example 3.2: greedy retains B then D, covering 87.3% of requests.
//! assert!((report.cover - 0.873).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cover;
mod error;
mod report;
mod variant;

pub mod baselines;
pub mod bounds;
pub mod brute_force;
pub mod delta;
pub mod extensions;
pub mod float;
pub mod greedy;
pub mod lazy;
pub mod local_search;
pub mod maxvc;
pub mod minimize;
pub mod parallel;
pub mod partitioned;
pub mod pool;
pub mod solver;
pub mod stochastic;
pub mod streaming;

pub use cover::{cover_value, CoverState};
pub use delta::{WarmOutcome, WarmState};
pub use error::SolveError;
pub use report::{Algorithm, SolveReport};
pub use solver::{
    NoopObserver, Observer, ProgressObserver, Registry, RoundStats, SolveCtx, Solver, SolverCaps,
    SolverConfig, SolverSpec, TraceEvent, TraceObserver, VariantSupport, WarmRun,
};
pub use variant::{CoverModel, Independent, Normalized, Variant};

//! The solver abstraction layer: a [`Solver`] trait over every selection
//! scheme in this crate, a typed [`SolverSpec`] registry that downstream
//! layers (CLI, benchmarks, adaptation engine) dispatch through, and an
//! [`Observer`] hook that surfaces per-iteration progress without touching
//! the solvers' arithmetic.
//!
//! # Architecture
//!
//! * [`Solver`] is the strategy interface: `solve::<M>(g, k, ctx)` for a
//!   [`CoverModel`] `M`. Solver structs are tiny configuration carriers
//!   (thread counts, seeds, sampling rates); the graph and budget arrive
//!   per call.
//! * [`SolveCtx`] is the execution harness handed to every solve: the
//!   [`SolverConfig`] (threads, seed, …) plus an optional [`Observer`].
//! * [`SolverSpec`] is the type-erased registry entry: name, description,
//!   capability flags, and a monomorphization-erasing function pointer.
//!   Erasure uses a plain `fn` pointer — not a boxed closure — so specs are
//!   `const`-friendly, `Copy`-cheap, and allocation-free.
//! * [`Registry`] owns the spec list. [`Registry::builtin`] registers every
//!   solver in this crate; [`Registry::register`] adds (or replaces) an
//!   entry, which is all a new solver needs to become reachable from the
//!   CLI, help text, and benchmark loops.
//!
//! # Observer lifecycle
//!
//! Observers receive `on_select(iter, item, gain, cover)` once per retained
//! item and `on_round_stats` once per completed round. Incremental solvers
//! (greedy, lazy, parallel, stochastic) emit *live*, as items are chosen;
//! solvers whose solution is assembled at the end (brute force, baselines,
//! sieve, partitioned merge, local search, MaxVC) replay the finished
//! report through [`SolveCtx::emit_report`], so in every case the event
//! stream matches the returned `order`/`trajectory` exactly. Observers only
//! *read* values the solver already computed — they cannot perturb
//! selection, which is what keeps the bit-identical determinism guarantees
//! of the parallel solvers intact — with one deliberate exception: the
//! [`Observer::cancelled`] poll lets an observer *stop* a solve early
//! (deadline enforcement in the serving layer), turning the run into
//! [`SolveError::Cancelled`] rather than perturbing its output. When no
//! observer is installed the hooks cost one branch per selection (see the
//! `gain_addnode` benchmark).

use std::io::Write;

use serde::Serialize;

use pcover_graph::{ItemId, PreferenceGraph};

use crate::delta::{WarmOutcome, WarmState};
use crate::error::SolveError;
use crate::report::{Algorithm, SolveReport};
use crate::variant::{CoverModel, Independent, Normalized, Variant};

/// Per-round statistics handed to [`Observer::on_round_stats`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct RoundStats {
    /// Zero-based round index (the `iter` of the matching `on_select`).
    pub iter: usize,
    /// Gain evaluations performed during this round alone.
    pub gain_evaluations: u64,
}

/// Per-iteration hook into a running solve.
///
/// All methods have no-op defaults, so an observer implements only what it
/// needs. Observers are handed values the solver already computed; they can
/// record or display them but cannot influence selection.
pub trait Observer {
    /// Called when `item` joins the retained set as selection `iter`
    /// (zero-based), with the marginal `gain` realized and the resulting
    /// running `cover`.
    fn on_select(&mut self, iter: usize, item: ItemId, gain: f64, cover: f64) {
        let _ = (iter, item, gain, cover);
    }

    /// Called at the end of each round with work statistics.
    fn on_round_stats(&mut self, stats: &RoundStats) {
        let _ = stats;
    }

    /// Polled by the harness to decide whether the solve should stop early
    /// (deadline exceeded, shutdown in progress, …). Returning `true` makes
    /// the solve return [`SolveError::Cancelled`]. Live-emitting solvers
    /// (greedy, lazy, parallel, stochastic) poll between rounds; every
    /// registered solver additionally polls once on entry via
    /// [`SolverSpec::solve`], so even replay-style solvers observe a
    /// cancellation that was signalled before the solve began.
    fn cancelled(&mut self) -> bool {
        false
    }
}

/// The do-nothing observer; behaviourally identical to installing none.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopObserver;

impl Observer for NoopObserver {}

/// One recorded selection of a [`TraceObserver`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct TraceEvent {
    /// Zero-based selection index.
    pub iter: usize,
    /// The selected item.
    pub item: ItemId,
    /// Marginal gain realized by the selection.
    pub gain: f64,
    /// Running cover after the selection.
    pub cover: f64,
}

/// An [`Observer`] that records the full per-iteration trajectory, ready to
/// serialize (the CLI writes it as JSON for `--trace`).
#[derive(Clone, Debug, Default, Serialize)]
pub struct TraceObserver {
    /// Every selection, in order.
    pub events: Vec<TraceEvent>,
    /// Every round's statistics, in order (empty for replayed solvers).
    pub rounds: Vec<RoundStats>,
}

impl TraceObserver {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Observer for TraceObserver {
    fn on_select(&mut self, iter: usize, item: ItemId, gain: f64, cover: f64) {
        self.events.push(TraceEvent {
            iter,
            item,
            gain,
            cover,
        });
    }

    fn on_round_stats(&mut self, stats: &RoundStats) {
        self.rounds.push(*stats);
    }
}

/// An [`Observer`] that prints one line per selection to a writer (the CLI
/// wires this to stderr under `--progress`). Write errors are swallowed:
/// progress output must never fail a solve.
#[derive(Debug)]
pub struct ProgressObserver<W: Write> {
    out: W,
    every: usize,
}

impl<W: Write> ProgressObserver<W> {
    /// Reports every selection to `out`.
    pub fn new(out: W) -> Self {
        Self { out, every: 1 }
    }

    /// Reports only every `every`-th selection (0 is treated as 1).
    pub fn with_stride(out: W, every: usize) -> Self {
        Self {
            out,
            every: every.max(1),
        }
    }
}

impl<W: Write> Observer for ProgressObserver<W> {
    fn on_select(&mut self, iter: usize, item: ItemId, gain: f64, cover: f64) {
        if (iter + 1) % self.every != 0 {
            return;
        }
        let _ = writeln!(
            self.out,
            "[{:>6}] + item {item}  gain {gain:.6}  cover {cover:.6}",
            iter + 1
        );
    }
}

/// Uniform construction parameters for every registered solver. Each solver
/// reads only the fields it needs (see [`SolverCaps`] for which).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SolverConfig {
    /// Worker threads for parallel solvers.
    pub threads: usize,
    /// RNG seed for randomized solvers.
    pub seed: u64,
    /// Sampling/threshold accuracy for stochastic and sieve solvers;
    /// `None` uses each solver's default.
    pub epsilon: Option<f64>,
    /// Independent draws for the `random` baseline (best-of selection).
    pub random_attempts: usize,
    /// Swap budget for local search.
    pub max_swaps: usize,
    /// Enumeration cap for brute force.
    pub max_subsets: u128,
}

impl Default for SolverConfig {
    fn default() -> Self {
        Self {
            threads: 4,
            seed: 42,
            epsilon: None,
            random_attempts: 10,
            max_swaps: 64,
            max_subsets: 20_000_000,
        }
    }
}

/// The execution harness handed to every solve: configuration plus an
/// optional observer. Constructed once per solve call.
#[derive(Default)]
pub struct SolveCtx<'o> {
    /// Construction parameters for the solver.
    pub config: SolverConfig,
    observer: Option<&'o mut dyn Observer>,
}

impl std::fmt::Debug for SolveCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolveCtx")
            .field("config", &self.config)
            .field("observer", &self.observer.is_some())
            .finish()
    }
}

impl<'o> SolveCtx<'o> {
    /// A context with the given configuration and no observer.
    pub fn new(config: SolverConfig) -> Self {
        Self {
            config,
            observer: None,
        }
    }

    /// A context with an observer attached.
    pub fn with_observer(config: SolverConfig, observer: &'o mut dyn Observer) -> Self {
        Self {
            config,
            observer: Some(observer),
        }
    }

    /// Whether an observer is installed (used by solvers to skip
    /// observer-only bookkeeping entirely).
    pub fn observing(&self) -> bool {
        self.observer.is_some()
    }

    /// Forwards one selection to the observer, if any. One branch when
    /// unobserved.
    #[inline]
    pub fn emit_select(&mut self, iter: usize, item: ItemId, gain: f64, cover: f64) {
        if let Some(obs) = self.observer.as_deref_mut() {
            obs.on_select(iter, item, gain, cover);
        }
    }

    /// Forwards round statistics to the observer, if any.
    #[inline]
    pub fn emit_round_stats(&mut self, stats: RoundStats) {
        if let Some(obs) = self.observer.as_deref_mut() {
            obs.on_round_stats(&stats);
        }
    }

    /// Polls the observer's cancellation flag, turning it into an error.
    ///
    /// # Errors
    ///
    /// [`SolveError::Cancelled`] when an observer is installed and its
    /// [`Observer::cancelled`] returns `true`; `Ok(())` otherwise (including
    /// when no observer is installed). One branch when unobserved.
    #[inline]
    pub fn check_cancelled(&mut self) -> Result<(), SolveError> {
        if let Some(obs) = self.observer.as_deref_mut() {
            if obs.cancelled() {
                return Err(SolveError::Cancelled);
            }
        }
        Ok(())
    }

    /// Replays a finished report's selection sequence through the observer.
    ///
    /// Solvers that assemble their solution at the end (brute force,
    /// baselines, sieve, partitioned merge, local search, MaxVC) call this
    /// so their event stream matches the returned `order`/`trajectory`,
    /// exactly as live-emitting solvers' streams do.
    pub fn emit_report(&mut self, report: &SolveReport) {
        if self.observer.is_none() {
            return;
        }
        let mut prev = 0.0f64;
        for (iter, (&item, &cover)) in report.order.iter().zip(&report.trajectory).enumerate() {
            let gain = cover - prev;
            prev = cover;
            self.emit_select(iter, item, gain, cover);
        }
    }
}

/// A selection strategy for the preference-cover problem.
///
/// Implementors are small configuration structs; the graph and budget are
/// per-call. The trait is generic over the [`CoverModel`], so it is not
/// object-safe — the registry erases it through [`SolverSpec`]'s function
/// pointer instead of `dyn`.
pub trait Solver {
    /// Selects `k` items from `g` under cover model `M`.
    fn solve<M: CoverModel>(
        &self,
        g: &PreferenceGraph,
        k: usize,
        ctx: &mut SolveCtx<'_>,
    ) -> Result<SolveReport, SolveError>;

    /// Runtime-variant dispatch: resolves `variant` to the matching
    /// monomorphization of [`Solver::solve`].
    fn dispatch(
        &self,
        variant: Variant,
        g: &PreferenceGraph,
        k: usize,
        ctx: &mut SolveCtx<'_>,
    ) -> Result<SolveReport, SolveError>
    where
        Self: Sized,
    {
        match variant {
            Variant::Independent => self.solve::<Independent>(g, k, ctx),
            Variant::Normalized => self.solve::<Normalized>(g, k, ctx),
        }
    }
}

/// Which cover variants a solver accepts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VariantSupport {
    /// Works for both IPC and NPC.
    Both,
    /// Restricted to one variant (e.g. the NPC-only low-memory greedy and
    /// the VC-reduction solver).
    Only(Variant),
}

impl VariantSupport {
    /// Whether `variant` is accepted.
    pub fn supports(self, variant: Variant) -> bool {
        match self {
            VariantSupport::Both => true,
            VariantSupport::Only(v) => v == variant,
        }
    }
}

/// Capability flags of a registered solver, used by callers to decide what
/// configuration matters and what output shape to expect.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SolverCaps {
    /// Reads [`SolverConfig::threads`].
    pub supports_threads: bool,
    /// Reads [`SolverConfig::seed`] (output depends on it).
    pub needs_seed: bool,
    /// Returns the exact optimum (subject to its size limits).
    pub exact: bool,
    /// Always returns exactly `k` items; `false` for solvers that may
    /// legitimately return fewer (sieve streaming).
    pub fills_budget: bool,
    /// Which cover variants are accepted.
    pub variants: VariantSupport,
}

impl Default for SolverCaps {
    fn default() -> Self {
        Self {
            supports_threads: false,
            needs_seed: false,
            exact: false,
            fills_budget: true,
            variants: VariantSupport::Both,
        }
    }
}

/// The type-erased entry point stored in a [`SolverSpec`]: builds the
/// solver from `ctx.config` and runs it under the given variant.
pub type SolverRun =
    fn(Variant, &PreferenceGraph, usize, &mut SolveCtx<'_>) -> Result<SolveReport, SolveError>;

/// The type-erased warm-start entry point: repairs a previous generation's
/// [`WarmState`] against the post-delta graph given the delta's touched
/// frontier. Only solvers whose warm repair is provably bit-identical to
/// their cold solve register one.
pub type WarmRun = fn(
    Variant,
    &PreferenceGraph,
    usize,
    &[ItemId],
    &WarmState,
    &mut SolveCtx<'_>,
) -> Result<WarmOutcome, SolveError>;

/// A registry entry: everything downstream layers need to list, describe,
/// configure, and invoke one solver.
#[derive(Clone, Copy, Debug)]
pub struct SolverSpec {
    /// CLI/registry name (`--algorithm` value), e.g. `"lazy"`.
    pub name: &'static str,
    /// The [`Algorithm`] tag reports produced by this spec carry.
    pub algorithm: Algorithm,
    /// One-line human description (help text, README table).
    pub description: &'static str,
    /// Capability flags.
    pub caps: SolverCaps,
    run: SolverRun,
    warm: Option<WarmRun>,
}

impl SolverSpec {
    /// Builds a spec. `run` is typically `|v, g, k, ctx| TheSolver.dispatch(v, g, k, ctx)`
    /// — a capture-less closure coerced to a function pointer.
    pub fn new(
        name: &'static str,
        algorithm: Algorithm,
        description: &'static str,
        caps: SolverCaps,
        run: SolverRun,
    ) -> Self {
        Self {
            name,
            algorithm,
            description,
            caps,
            run,
            warm: None,
        }
    }

    /// Registers a warm-start entry point (builder-style). Specs without
    /// one simply decline [`Self::solve_warm`]; callers fall back to
    /// [`Self::solve`].
    pub fn with_warm(mut self, warm: WarmRun) -> Self {
        self.warm = Some(warm);
        self
    }

    /// Whether this solver can repair a [`WarmState`] instead of solving
    /// cold.
    pub fn supports_warm_start(&self) -> bool {
        self.warm.is_some()
    }

    /// Runs the solver, gating unsupported variants first, then polling the
    /// observer's cancellation flag once before handing off — so every
    /// registered solver, including replay-style ones with no internal poll
    /// points, returns promptly when cancellation was signalled up front.
    ///
    /// # Errors
    ///
    /// [`SolveError::UnsupportedVariant`] when `variant` is outside
    /// [`SolverCaps::variants`]; [`SolveError::Cancelled`] when the observer
    /// already signals cancellation; otherwise whatever the solver returns.
    pub fn solve(
        &self,
        variant: Variant,
        g: &PreferenceGraph,
        k: usize,
        ctx: &mut SolveCtx<'_>,
    ) -> Result<SolveReport, SolveError> {
        if !self.caps.variants.supports(variant) {
            return Err(SolveError::UnsupportedVariant {
                solver: self.name.to_string(),
                variant,
            });
        }
        ctx.check_cancelled()?;
        (self.run)(variant, g, k, ctx)
    }

    /// Runs the solver's warm-start repair with the same gating as
    /// [`Self::solve`]: variant support first, then one up-front
    /// cancellation poll.
    ///
    /// # Errors
    ///
    /// An internal error when the spec has no warm entry point (gate on
    /// [`Self::supports_warm_start`]); [`SolveError::UnsupportedVariant`] /
    /// [`SolveError::Cancelled`] as for [`Self::solve`]; otherwise whatever
    /// the repair returns.
    pub fn solve_warm(
        &self,
        variant: Variant,
        g: &PreferenceGraph,
        k: usize,
        touched: &[ItemId],
        warm: &WarmState,
        ctx: &mut SolveCtx<'_>,
    ) -> Result<WarmOutcome, SolveError> {
        let Some(run) = self.warm else {
            return Err(SolveError::internal(format!(
                "solver '{}' has no warm-start entry point",
                self.name
            )));
        };
        if !self.caps.variants.supports(variant) {
            return Err(SolveError::UnsupportedVariant {
                solver: self.name.to_string(),
                variant,
            });
        }
        ctx.check_cancelled()?;
        run(variant, g, k, touched, warm, ctx)
    }
}

/// The solver registry: an ordered list of [`SolverSpec`]s that the CLI,
/// benchmarks, and adaptation engine dispatch through.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    specs: Vec<SolverSpec>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The registry of every solver in this crate, in the order they appear
    /// in help text and experiment sweeps.
    pub fn builtin() -> Self {
        let mut r = Self::new();
        for spec in [
            crate::greedy::spec(),
            crate::greedy::low_memory_spec(),
            crate::lazy::spec(),
            crate::delta::spec(),
            crate::delta::parallel_spec(),
            crate::parallel::spec(),
            crate::partitioned::spec(),
            crate::brute_force::spec(),
            crate::baselines::top_k_weight_spec(),
            crate::baselines::top_k_coverage_spec(),
            crate::baselines::random_spec(),
            crate::stochastic::spec(),
            crate::streaming::spec(),
            crate::local_search::spec(),
            crate::maxvc::spec(),
        ] {
            r.register(spec);
        }
        r
    }

    /// Adds a spec; an existing entry with the same name is replaced in
    /// place (so tests can shadow a builtin).
    pub fn register(&mut self, spec: SolverSpec) {
        match self.specs.iter().position(|s| s.name == spec.name) {
            Some(i) => {
                if let Some(slot) = self.specs.get_mut(i) {
                    *slot = spec;
                }
            }
            None => self.specs.push(spec),
        }
    }

    /// Looks up a spec by name.
    pub fn get(&self, name: &str) -> Option<&SolverSpec> {
        self.specs.iter().find(|s| s.name == name)
    }

    /// All specs, in registration order.
    pub fn specs(&self) -> &[SolverSpec] {
        &self.specs
    }

    /// All registered names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.specs.iter().map(|s| s.name).collect()
    }

    /// The `--algorithm` usage fragment, derived from the registry so help
    /// text can never drift from the accepted set: `"greedy|lazy|…"`.
    pub fn usage_line(&self) -> String {
        self.names().join("|")
    }

    /// The error message for an unrecognized algorithm name: a suggestion
    /// listing every registered name.
    pub fn unknown_algorithm_message(&self, requested: &str) -> String {
        format!(
            "unknown algorithm '{requested}'; available: {}",
            self.names().join(", ")
        )
    }

    /// A GitHub-flavoured markdown table of the registered solvers (name,
    /// report label, description) — the README's algorithm table is
    /// generated from this and a test keeps the two in sync.
    pub fn markdown_table(&self) -> String {
        let mut out = String::from("| `--algorithm` | Label | Description |\n|---|---|---|\n");
        for s in &self.specs {
            out.push_str(&format!(
                "| `{}` | {} | {} |\n",
                s.name,
                s.algorithm.label(),
                s.description
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use pcover_graph::examples::figure1_ids;

    use super::*;

    #[test]
    fn builtin_registry_lists_every_algorithm() {
        let r = Registry::builtin();
        for algo in Algorithm::ALL {
            assert!(
                r.specs().iter().any(|s| s.algorithm == algo),
                "no spec produces {algo:?}"
            );
        }
        // CLI names of the enum are registry names.
        for algo in Algorithm::ALL {
            assert!(
                r.get(algo.cli_name()).is_some(),
                "cli name {} not registered",
                algo.cli_name()
            );
        }
    }

    #[test]
    fn register_replaces_by_name() {
        let mut r = Registry::builtin();
        let before = r.specs().len();
        let fake = SolverSpec::new(
            "greedy",
            Algorithm::Greedy,
            "shadowed",
            SolverCaps::default(),
            |v, g, k, ctx| crate::greedy::Greedy.dispatch(v, g, k, ctx),
        );
        r.register(fake);
        assert_eq!(r.specs().len(), before);
        assert_eq!(
            r.get("greedy").map(|s| s.description),
            Some("shadowed"),
            "same-name registration must replace"
        );
    }

    #[test]
    fn usage_line_and_unknown_message_derive_from_registry() {
        let r = Registry::builtin();
        let usage = r.usage_line();
        assert!(usage.starts_with("greedy|"));
        assert!(usage.contains("|lazy|"));
        let msg = r.unknown_algorithm_message("nope");
        assert!(msg.contains("nope"));
        assert!(msg.contains("lazy"));
    }

    #[test]
    fn variant_gating() {
        let r = Registry::builtin();
        let (g, _) = figure1_ids();
        let Some(spec) = r.get("maxvc") else {
            unreachable!("maxvc registered")
        };
        let mut ctx = SolveCtx::default();
        let err = spec.solve(Variant::Independent, &g, 2, &mut ctx);
        assert!(matches!(err, Err(SolveError::UnsupportedVariant { .. })));
        assert!(spec.solve(Variant::Normalized, &g, 2, &mut ctx).is_ok());
    }

    #[test]
    fn trace_observer_records_the_trajectory() {
        let (g, ids) = figure1_ids();
        let mut trace = TraceObserver::new();
        let mut ctx = SolveCtx::with_observer(SolverConfig::default(), &mut trace);
        let r = crate::greedy::Greedy
            .solve::<Normalized>(&g, 2, &mut ctx)
            .map_err(|e| e.to_string());
        let Ok(report) = r else {
            unreachable!("greedy solves figure 1")
        };
        assert_eq!(trace.events.len(), 2);
        let Some(first) = trace.events.first() else {
            unreachable!("two events recorded")
        };
        assert_eq!(first.item, ids.b);
        assert_eq!(first.iter, 0);
        let items: Vec<ItemId> = trace.events.iter().map(|e| e.item).collect();
        assert_eq!(items, report.order);
        let covers: Vec<f64> = trace.events.iter().map(|e| e.cover).collect();
        let matches = covers
            .iter()
            .zip(&report.trajectory)
            .all(|(a, b)| crate::float::approx_eq(*a, *b, 1e-12));
        assert!(matches, "trace covers must mirror the trajectory");
        assert_eq!(trace.rounds.len(), 2);
    }

    #[test]
    fn progress_observer_writes_lines_and_swallows_errors() {
        let mut buf = Vec::new();
        {
            let mut obs = ProgressObserver::new(&mut buf);
            obs.on_select(0, ItemId::new(3), 0.5, 0.5);
            obs.on_select(1, ItemId::new(1), 0.2, 0.7);
        }
        let text = String::from_utf8_lossy(&buf).to_string();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("item 3"));

        /// A writer that always fails, to prove progress never errors out.
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("nope"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Err(std::io::Error::other("nope"))
            }
        }
        let mut obs = ProgressObserver::with_stride(Failing, 2);
        obs.on_select(0, ItemId::new(0), 0.1, 0.1);
        obs.on_select(1, ItemId::new(1), 0.1, 0.2);
    }

    #[test]
    fn emit_report_replays_order_and_trajectory() {
        let (g, _) = figure1_ids();
        let mut ctx = SolveCtx::default();
        let Ok(report) = crate::greedy::Greedy.solve::<Normalized>(&g, 3, &mut ctx) else {
            unreachable!("greedy solves figure 1")
        };
        let mut trace = TraceObserver::new();
        let mut ctx = SolveCtx::with_observer(SolverConfig::default(), &mut trace);
        ctx.emit_report(&report);
        let items: Vec<ItemId> = trace.events.iter().map(|e| e.item).collect();
        assert_eq!(items, report.order);
    }
}

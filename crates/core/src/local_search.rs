//! Swap-based local search refinement — a beyond-paper extension.
//!
//! Takes any feasible solution (typically a greedy output) and repeatedly
//! applies the best improving swap: remove one retained item, insert one
//! non-retained item, keep the exchange if it strictly improves the cover
//! by more than a relative tolerance. Terminates at a swap-local optimum
//! or after `max_swaps`.
//!
//! For monotone submodular maximization under a cardinality constraint,
//! swap-local optima are `1/2`-approximate on their own; applied *after*
//! greedy the result can only improve on greedy's `1 − 1/e`, which makes
//! this a cheap quality knob for small/medium instances and a useful
//! upper-bound probe in experiments.

// lint: allow-file(no-index) — per-item arrays (I-values, selection masks, gains) are sized to
// node_count and indexed by ItemId::index(); bounds-checked [] in the hot greedy
// loops is deliberate and in bounds by construction.
use std::time::Instant;

use pcover_graph::{ItemId, PreferenceGraph};

use crate::baselines::evaluate_selection;
use crate::cover::CoverState;
use crate::greedy::finish;
use crate::report::{Algorithm, SolveReport};
use crate::solver::{SolveCtx, Solver, SolverCaps, SolverSpec};
use crate::variant::CoverModel;
use crate::SolveError;

/// Options for [`refine`].
#[derive(Clone, Copy, Debug)]
pub struct LocalSearchOptions {
    /// Stop after this many accepted swaps.
    pub max_swaps: usize,
    /// A swap must improve the cover by more than this relative amount to
    /// be accepted (guards against float-noise cycling).
    pub min_relative_gain: f64,
}

impl Default for LocalSearchOptions {
    fn default() -> Self {
        LocalSearchOptions {
            max_swaps: 64,
            min_relative_gain: 1e-9,
        }
    }
}

/// The outcome of a refinement.
#[derive(Clone, Debug)]
pub struct LocalSearchResult {
    /// The refined solution.
    pub report: SolveReport,
    /// Cover of the starting solution.
    pub initial_cover: f64,
    /// Number of accepted swaps.
    pub swaps: usize,
}

/// Refines `initial` by best-improvement swaps.
///
/// # Errors
///
/// Propagates validation errors for malformed initial selections.
pub fn refine<M: CoverModel>(
    g: &PreferenceGraph,
    initial: &[ItemId],
    opts: &LocalSearchOptions,
) -> Result<LocalSearchResult, SolveError> {
    let started = Instant::now();
    let initial_report = evaluate_selection::<M>(g, initial)?;
    let initial_cover = initial_report.cover;
    let k = initial.len();
    let n = g.node_count();

    let mut current: Vec<ItemId> = initial.to_vec();
    let mut current_cover = initial_cover;
    let mut swaps = 0usize;
    let mut gain_evaluations = 0u64;

    'outer: while swaps < opts.max_swaps {
        // Candidate insertions: marginal gain of each outside node w.r.t.
        // the current set; candidate removals: leave-one-out loss of each
        // retained node. A swap (out, in) improves by roughly
        // gain(in | S \ out) − loss(out); evaluate exactly for the most
        // promising pairs.
        let mut state = CoverState::new(n);
        for &v in &current {
            state.add_node::<M>(g, v);
        }

        // Rank outside nodes by optimistic gain (w.r.t. full S, a lower
        // bound on the post-removal gain thanks to submodularity).
        let mut ins: Vec<(f64, ItemId)> = g
            .node_ids()
            .filter(|v| !state.contains(*v))
            .map(|v| {
                gain_evaluations += 1;
                (state.gain::<M>(g, v), v)
            })
            // lint: allow(alloc-in-hot-loop) — insertion ranking built once per swap round and truncated to 8
            .collect();
        ins.sort_by(|a, b| crate::float::cmp_gain(b.0, a.0).then(a.1.cmp(&b.1)));
        ins.truncate(8); // the most promising insertions

        // Rank removals by leave-one-out loss (cheapest first).
        // lint: allow(alloc-in-hot-loop) — removal ranking, bounded by |current| = k entries per round
        let mut outs: Vec<(f64, usize)> = Vec::with_capacity(current.len());
        for i in 0..current.len() {
            // lint: allow(alloc-in-hot-loop) — each leave-one-out trial needs its own owned selection; bounded by k per round
            let mut without: Vec<ItemId> = current.clone();
            without.remove(i);
            let c = evaluate_selection::<M>(g, &without)?.cover;
            outs.push((current_cover - c, i));
        }
        outs.sort_by(|a, b| crate::float::cmp_gain(a.0, b.0).then(a.1.cmp(&b.1)));
        outs.truncate(8); // the cheapest removals

        let mut best_swap: Option<(f64, usize, ItemId)> = None;
        for &(_, out_idx) in &outs {
            for &(_, in_node) in &ins {
                // lint: allow(alloc-in-hot-loop) — each swap candidate needs its own owned selection; the neighborhood is truncated to 8×8 per round
                let mut candidate = current.clone();
                candidate[out_idx] = in_node;
                let c = evaluate_selection::<M>(g, &candidate)?.cover;
                if c > current_cover * (1.0 + opts.min_relative_gain)
                    && best_swap.is_none_or(|(bc, _, _)| c > bc)
                {
                    best_swap = Some((c, out_idx, in_node));
                }
            }
        }
        match best_swap {
            Some((c, out_idx, in_node)) => {
                current[out_idx] = in_node;
                current_cover = c;
                swaps += 1;
            }
            None => break 'outer,
        }
    }

    // Final exact report.
    let mut state = CoverState::new(n);
    let mut trajectory = Vec::with_capacity(k);
    for &v in &current {
        state.add_node::<M>(g, v);
        trajectory.push(state.cover());
    }
    let mut report = finish::<M>(
        Algorithm::LocalSearch,
        state,
        trajectory,
        started,
        gain_evaluations,
    );
    report.algorithm = Algorithm::LocalSearch;
    Ok(LocalSearchResult {
        report,
        initial_cover,
        swaps,
    })
}

/// Lazy greedy followed by swap refinement, as a registry [`Solver`] — the
/// composite the CLI has always exposed as `local-search`.
#[derive(Clone, Copy, Debug, Default)]
pub struct LazyThenLocalSearch {
    /// Swap-loop options.
    pub opts: LocalSearchOptions,
}

impl Solver for LazyThenLocalSearch {
    fn solve<M: CoverModel>(
        &self,
        g: &PreferenceGraph,
        k: usize,
        ctx: &mut SolveCtx<'_>,
    ) -> Result<SolveReport, SolveError> {
        let base = crate::lazy::solve::<M>(g, k)?;
        let refined = refine::<M>(g, &base.order, &self.opts)?;
        // Swaps can reorder/replace the constructive selection; replay the
        // final report so the observer stream matches what is returned.
        ctx.emit_report(&refined.report);
        Ok(refined.report)
    }
}

/// The registry entry for [`LazyThenLocalSearch`]; the swap budget comes
/// from [`SolverConfig::max_swaps`](crate::solver::SolverConfig::max_swaps).
pub fn spec() -> SolverSpec {
    SolverSpec::new(
        "local-search",
        Algorithm::LocalSearch,
        "Lazy greedy then best-improvement swaps: never worse than lazy, swap-local optimum",
        SolverCaps::default(),
        |v, g, k, ctx| {
            let opts = LocalSearchOptions {
                max_swaps: ctx.config.max_swaps,
                ..LocalSearchOptions::default()
            };
            LazyThenLocalSearch { opts }.dispatch(v, g, k, ctx)
        },
    )
}

#[cfg(test)]
mod tests {
    use pcover_graph::examples::figure1_ids;
    use pcover_graph::GraphBuilder;

    use crate::{baselines, greedy, Independent, Normalized};

    use super::*;

    #[test]
    fn improves_a_bad_start_to_the_optimum_on_figure1() {
        let (g, ids) = figure1_ids();
        // Start from the naive {A, B} (0.77); local search should find
        // {B, D} (0.873).
        let r = refine::<Normalized>(&g, &[ids.a, ids.b], &LocalSearchOptions::default()).unwrap();
        assert!((r.initial_cover - 0.77).abs() < 1e-9);
        assert!((r.report.cover - 0.873).abs() < 1e-9);
        assert!(r.swaps >= 1);
        let mut sorted = r.report.order.clone();
        sorted.sort();
        assert_eq!(sorted, vec![ids.b, ids.d]);
    }

    #[test]
    fn greedy_output_is_not_degraded() {
        let (g, _) = figure1_ids();
        for k in 1..=4 {
            let gr = greedy::solve::<Independent>(&g, k).unwrap();
            let r = refine::<Independent>(&g, &gr.order, &LocalSearchOptions::default()).unwrap();
            assert!(r.report.cover >= gr.cover - 1e-12, "k = {k}");
        }
    }

    #[test]
    fn refines_random_baseline_substantially() {
        let mut b = GraphBuilder::new().normalize_node_weights(true);
        let ids: Vec<_> = (0..40).map(|i| b.add_node(1.0 + (i % 7) as f64)).collect();
        for i in 0..40 {
            b.add_edge(ids[i], ids[(i + 1) % 40], 0.6).unwrap();
        }
        let g = b.build().unwrap();
        let rnd = baselines::random::<Independent>(&g, 8, 123).unwrap();
        let refined =
            refine::<Independent>(&g, &rnd.order, &LocalSearchOptions::default()).unwrap();
        assert!(refined.report.cover >= rnd.cover);
        let gr = greedy::solve::<Independent>(&g, 8).unwrap();
        // Local search from random should close most of the gap to greedy.
        assert!(
            refined.report.cover >= 0.9 * gr.cover,
            "refined {} vs greedy {}",
            refined.report.cover,
            gr.cover
        );
    }

    #[test]
    fn max_swaps_bounds_work() {
        let (g, ids) = figure1_ids();
        let opts = LocalSearchOptions {
            max_swaps: 0,
            ..LocalSearchOptions::default()
        };
        let r = refine::<Normalized>(&g, &[ids.a, ids.e], &opts).unwrap();
        assert_eq!(r.swaps, 0);
        assert!((r.report.cover - r.initial_cover).abs() < 1e-12);
    }

    #[test]
    fn empty_initial_is_a_noop() {
        let (g, _) = figure1_ids();
        let r = refine::<Normalized>(&g, &[], &LocalSearchOptions::default()).unwrap();
        assert_eq!(r.report.k(), 0);
        assert_eq!(r.swaps, 0);
    }

    #[test]
    fn invalid_initial_rejected() {
        let (g, ids) = figure1_ids();
        assert!(refine::<Normalized>(&g, &[ids.a, ids.a], &LocalSearchOptions::default()).is_err());
    }
}

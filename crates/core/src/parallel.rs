//! Rayon-parallel greedy — the paper's parallelization scheme.
//!
//! Each greedy iteration evaluates the marginal gain of every candidate
//! independently (Algorithm 1, line 3); those evaluations are distributed
//! over a thread pool in contiguous chunks, and the per-chunk maxima are
//! reduced sequentially. With `N` threads the per-iteration cost drops from
//! `O(nD)` to `O(nD / N)`, for a total of `O(k + nkD/N)` (Sections 3.2 and
//! 4.2).
//!
//! The result is **bit-identical** to [`greedy::solve`]: the reduction
//! applies the same `(gain desc, id asc)` tie-break, and each chunk's
//! arithmetic is the same sequential loop.
//!
//! Besides wall-clock time, the solver reports *work statistics*: how many
//! weighted gain-evaluation operations each chunk (thread slot) performed.
//! On a machine with fewer physical cores than requested threads the
//! wall-clock speedup saturates, but the work statistics still validate the
//! load balance that the paper's Figure 4e measures on a 32-core server.
//!
//! [`greedy::solve`]: crate::greedy::solve

// lint: allow-file(no-index) — per-item arrays (I-values, selection masks, gains) are sized to
// node_count and indexed by ItemId::index(); bounds-checked [] in the hot greedy
// loops is deliberate and in bounds by construction.
use std::time::Instant;

use rayon::prelude::*;

use pcover_graph::{ItemId, PreferenceGraph};

use crate::cover::CoverState;
use crate::greedy::finish;
use crate::report::{Algorithm, SolveReport};
use crate::solver::{RoundStats, SolveCtx, Solver, SolverCaps, SolverSpec};
use crate::variant::CoverModel;
use crate::SolveError;

/// Per-chunk scan result: the chunk's argmax candidate (if any item was
/// evaluable), plus its operation and gain-evaluation counts.
type ChunkResult = (Option<(f64, ItemId)>, u64, u64);

/// Work accounting for one parallel solve.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkStats {
    /// Number of thread slots (chunks) the candidate scan was split into.
    pub threads: usize,
    /// Weighted operations (1 + in-degree per gain evaluation) performed by
    /// each thread slot, summed over all iterations.
    pub per_thread_ops: Vec<u64>,
    /// Number of greedy iterations executed (= `k`).
    pub iterations: usize,
}

impl WorkStats {
    /// Total operations across all thread slots.
    pub fn total_ops(&self) -> u64 {
        self.per_thread_ops.iter().sum()
    }

    /// The work-span modeled speedup over one thread: `total / max-slot`.
    ///
    /// 1.0 means no parallelism; `threads` means perfectly balanced. This is
    /// the quantity Figure 4e measures as wall-clock on a 32-core server;
    /// reporting it from work counters lets the experiment run on any host.
    pub fn modeled_speedup(&self) -> f64 {
        let max = self.per_thread_ops.iter().copied().max().unwrap_or(0);
        if max == 0 {
            1.0
        } else {
            self.total_ops() as f64 / max as f64
        }
    }

    /// Load-balance ratio in `[0, 1]`: mean slot work over max slot work.
    pub fn balance(&self) -> f64 {
        let max = self.per_thread_ops.iter().copied().max().unwrap_or(0);
        if max == 0 || self.per_thread_ops.is_empty() {
            return 1.0;
        }
        let mean = self.total_ops() as f64 / self.per_thread_ops.len() as f64;
        mean / max as f64
    }
}

/// Runs parallel greedy for budget `k` on the process-wide shared pool of
/// `threads` rayon workers (see [`pool::shared_pool`](crate::pool::shared_pool)
/// — repeated solves at the same thread count reuse the same pool instead
/// of constructing one per call).
///
/// # Errors
///
/// [`SolveError::KTooLarge`] if `k > n`; [`SolveError::ZeroThreads`] if
/// `threads == 0`.
pub fn solve<M: CoverModel>(
    g: &PreferenceGraph,
    k: usize,
    threads: usize,
) -> Result<(SolveReport, WorkStats), SolveError> {
    solve_with::<M>(g, k, threads, &mut SolveCtx::default())
}

/// [`solve`] with an execution context: observers installed on `ctx` see
/// each selection live (emitted from the sequential reduce, never from
/// worker threads, so observers cannot perturb the bit-identical result).
///
/// # Errors
///
/// As [`solve`].
pub fn solve_with<M: CoverModel>(
    g: &PreferenceGraph,
    k: usize,
    threads: usize,
    ctx: &mut SolveCtx<'_>,
) -> Result<(SolveReport, WorkStats), SolveError> {
    let started = Instant::now();
    let n = g.node_count();
    if k > n {
        return Err(SolveError::KTooLarge { k, n });
    }
    if threads == 0 {
        return Err(SolveError::ZeroThreads);
    }

    let pool = crate::pool::shared_pool(threads)?;

    let mut state = CoverState::new(n);
    let mut trajectory = Vec::with_capacity(k);
    let mut per_thread_ops = vec![0u64; threads];
    let mut gain_evaluations = 0u64;

    // Contiguous chunk boundaries over the id space, fixed across
    // iterations so per-slot work is attributable.
    let chunk = n.div_ceil(threads);
    let ranges: Vec<(usize, usize)> = (0..threads)
        .map(|t| (t * chunk, ((t + 1) * chunk).min(n)))
        .collect();

    for iter in 0..k {
        ctx.check_cancelled()?;
        // Scan: each chunk yields (best (gain, id), ops, evals). The
        // in-chunk argmax goes through the audited tie-break so every
        // solver variant selects identically.
        let chunk_results: Vec<ChunkResult> = pool.install(|| {
            ranges
                .par_iter()
                .map(|&(lo, hi)| {
                    let mut best: Option<(f64, ItemId)> = None;
                    let mut ops = 0u64;
                    let mut evals = 0u64;
                    for raw in lo..hi {
                        let v = ItemId::from_index(raw);
                        if state.contains(v) {
                            continue;
                        }
                        let gain = state.gain::<M>(g, v);
                        evals += 1;
                        ops += 1 + g.in_degree(v) as u64;
                        if crate::float::improves_argmax(gain, v, best) {
                            best = Some((gain, v));
                        }
                    }
                    (best, ops, evals)
                })
                // lint: allow(alloc-in-hot-loop) — per-round gather of one winner per chunk: `threads` entries, not n
                .collect()
        });

        // Reduce: the same `(gain desc, id asc)` tie-break, which is
        // commutative over the per-chunk winners — chunk order cannot
        // change the selection.
        let mut best: Option<(f64, ItemId)> = None;
        let mut round_evals = 0u64;
        for (slot, (chunk_best, ops, evals)) in chunk_results.into_iter().enumerate() {
            per_thread_ops[slot] += ops;
            round_evals += evals;
            if let Some((gain, v)) = chunk_best {
                if crate::float::improves_argmax(gain, v, best) {
                    best = Some((gain, v));
                }
            }
        }
        gain_evaluations += round_evals;
        let Some((gain, chosen)) = best else {
            return Err(SolveError::internal(
                "greedy round found no candidate despite k <= n",
            ));
        };
        state.add_node::<M>(g, chosen);
        trajectory.push(state.cover());
        ctx.emit_select(iter, chosen, gain, state.cover());
        ctx.emit_round_stats(RoundStats {
            iter,
            gain_evaluations: round_evals,
        });
    }

    let report = finish::<M>(
        Algorithm::ParallelGreedy,
        state,
        trajectory,
        started,
        gain_evaluations,
    );
    let stats = WorkStats {
        threads,
        per_thread_ops,
        iterations: k,
    };
    Ok((report, stats))
}

/// Parallel greedy as a registry [`Solver`]. Work statistics are dropped
/// through this interface; callers that need [`WorkStats`] use
/// [`solve`]/[`solve_with`] directly.
#[derive(Clone, Copy, Debug)]
pub struct ParallelGreedy {
    /// Worker thread count (must be at least 1).
    pub threads: usize,
}

impl Solver for ParallelGreedy {
    fn solve<M: CoverModel>(
        &self,
        g: &PreferenceGraph,
        k: usize,
        ctx: &mut SolveCtx<'_>,
    ) -> Result<SolveReport, SolveError> {
        solve_with::<M>(g, k, self.threads, ctx).map(|(report, _)| report)
    }
}

/// The registry entry for [`ParallelGreedy`]; thread count comes from
/// [`SolverConfig::threads`](crate::solver::SolverConfig::threads).
pub fn spec() -> SolverSpec {
    SolverSpec::new(
        "parallel",
        Algorithm::ParallelGreedy,
        "Rayon-parallel greedy: chunked gain scans, bit-identical to greedy, O(k + nkD/N)",
        SolverCaps {
            supports_threads: true,
            ..SolverCaps::default()
        },
        |v, g, k, ctx| {
            ParallelGreedy {
                threads: ctx.config.threads,
            }
            .dispatch(v, g, k, ctx)
        },
    )
}

#[cfg(test)]
mod tests {
    use pcover_graph::examples::figure1_ids;
    use pcover_graph::GraphBuilder;
    use rand::{RngExt, SeedableRng};

    use crate::{greedy, Independent, Normalized};

    use super::*;

    fn random_graph(n: usize, seed: u64) -> PreferenceGraph {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new()
            .normalize_node_weights(true)
            .duplicate_edge_policy(pcover_graph::DuplicateEdgePolicy::Max);
        let ids: Vec<ItemId> = (0..n)
            .map(|_| b.add_node(rng.random_range(1.0..50.0)))
            .collect();
        for &v in &ids {
            for _ in 0..3 {
                let u = ids[rng.random_range(0..n)];
                if u != v {
                    b.add_edge(v, u, rng.random_range(0.05..0.95)).unwrap();
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn matches_sequential_greedy_exactly() {
        for seed in 0..3 {
            let g = random_graph(50, seed);
            let plain = greedy::solve::<Independent>(&g, 12).unwrap();
            for threads in [1, 2, 4, 7] {
                let (par, _) = solve::<Independent>(&g, 12, threads).unwrap();
                assert_eq!(par.order, plain.order, "seed {seed} threads {threads}");
                assert!((par.cover - plain.cover).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn figure1_parallel() {
        let (g, ids) = figure1_ids();
        let (r, stats) = solve::<Normalized>(&g, 2, 2).unwrap();
        assert_eq!(r.order, vec![ids.b, ids.d]);
        assert!((r.cover - 0.873).abs() < 1e-9);
        assert_eq!(stats.threads, 2);
        assert_eq!(stats.iterations, 2);
        assert!(stats.total_ops() > 0);
    }

    #[test]
    fn work_stats_are_balanced_on_uniform_graphs() {
        let g = random_graph(200, 11);
        let (_, stats) = solve::<Independent>(&g, 20, 4).unwrap();
        assert_eq!(stats.per_thread_ops.len(), 4);
        assert!(
            stats.balance() > 0.5,
            "uniform random graph should balance well, got {}",
            stats.balance()
        );
        assert!(stats.modeled_speedup() > 2.0);
        assert!(stats.modeled_speedup() <= 4.0 + 1e-9);
    }

    #[test]
    fn zero_threads_rejected() {
        let (g, _) = figure1_ids();
        assert!(matches!(
            solve::<Normalized>(&g, 1, 0),
            Err(SolveError::ZeroThreads)
        ));
    }

    #[test]
    fn sequential_solves_reuse_the_shared_pool() {
        let g = random_graph(60, 5);
        // Materialize the pool for this thread count, then prove two
        // back-to-back solves neither rebuild it nor grow the cache.
        let handle = crate::pool::shared_pool(6).unwrap();
        let pools_before = crate::pool::cached_pool_count();
        let (a, _) = solve::<Independent>(&g, 10, 6).unwrap();
        let (b, _) = solve::<Independent>(&g, 10, 6).unwrap();
        assert_eq!(a.order, b.order);
        assert_eq!(crate::pool::cached_pool_count(), pools_before);
        assert!(
            std::sync::Arc::ptr_eq(&handle, &crate::pool::shared_pool(6).unwrap()),
            "solves must run on the cached pool, not a fresh one"
        );
    }

    #[test]
    fn more_threads_than_nodes() {
        let (g, _) = figure1_ids();
        let (r, stats) = solve::<Normalized>(&g, 2, 16).unwrap();
        assert!((r.cover - 0.873).abs() < 1e-9);
        assert_eq!(stats.per_thread_ops.len(), 16);
    }
}

//! The cover function `C(·)` — from-scratch evaluation and the incremental
//! `I`-array state shared by all greedy solvers.

// lint: allow-file(no-index) — per-item arrays (I-values, selection masks, gains) are sized to
// node_count and indexed by ItemId::index(); bounds-checked [] in the hot greedy
// loops is deliberate and in bounds by construction.
use pcover_graph::{ItemId, PreferenceGraph};

use crate::variant::CoverModel;

/// Evaluates `C(S)` from scratch per Definitions 2.1 / 2.2.
///
/// `selected` is a mask indexed by `ItemId::index`. Runs in `O(n + m)` and is
/// the oracle the incremental state is tested against.
///
/// # Panics
///
/// Panics if `selected.len() != g.node_count()`.
pub fn cover_value<M: CoverModel>(g: &PreferenceGraph, selected: &[bool]) -> f64 {
    assert_eq!(
        selected.len(),
        g.node_count(),
        "selection mask has wrong length"
    );
    let mut c = 0.0;
    for v in g.node_ids() {
        if selected[v.index()] {
            c += g.node_weight(v);
        } else {
            let matched = M::combine(
                g.out_edges(v)
                    .filter(|&(u, _)| u != v && selected[u.index()])
                    .map(|(_, w)| w),
            );
            c += g.node_weight(v) * matched;
        }
    }
    c
}

/// The incremental solver state: the retained set `S`, the paper's array
/// `I` (`I[v]` = probability `v` is requested **and** matched by `S`) and
/// the running cover `C(S) = Σ_v I[v]`.
///
/// [`gain`](Self::gain) is Algorithm 2 / 4 and [`add_node`](Self::add_node)
/// is Algorithm 3 / 5, depending on the [`CoverModel`] the caller
/// instantiates them with. Both cost `O(in_degree(v))`.
#[derive(Clone, Debug)]
pub struct CoverState {
    i: Vec<f64>,
    in_set: Vec<bool>,
    order: Vec<ItemId>,
    cover: f64,
}

impl CoverState {
    /// Creates the empty state (`S = ∅`, `I ≡ 0`) for a graph of `n` nodes.
    pub fn new(n: usize) -> Self {
        CoverState {
            // lint: allow(alloc-in-hot-loop) — CoverState construction is the documented O(n) setup cost; local_search rebuilds state per evaluated candidate by design
            i: vec![0.0; n],
            // lint: allow(alloc-in-hot-loop) — same: construction cost, waived with the line above
            in_set: vec![false; n],
            order: Vec::new(),
            cover: 0.0,
        }
    }

    /// Current cover `C(S)`.
    #[inline]
    pub fn cover(&self) -> f64 {
        self.cover
    }

    /// Number of retained items.
    #[inline]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when no item has been retained yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Whether `v` is retained.
    #[inline]
    pub fn contains(&self, v: ItemId) -> bool {
        self.in_set[v.index()]
    }

    /// Retained items in insertion order.
    #[inline]
    pub fn order(&self) -> &[ItemId] {
        &self.order
    }

    /// The `I` array: per item, the probability it is requested and matched.
    #[inline]
    pub fn item_cover(&self) -> &[f64] {
        &self.i
    }

    /// `I[v]` for one item.
    #[inline]
    pub fn item_cover_of(&self, v: ItemId) -> f64 {
        self.i[v.index()]
    }

    /// Algorithm 2 / 4: the marginal gain to `C(S)` of retaining `v`,
    /// without mutating the state.
    ///
    /// Returns 0 for already-retained nodes.
    pub fn gain<M: CoverModel>(&self, g: &PreferenceGraph, v: ItemId) -> f64 {
        if self.in_set[v.index()] {
            return 0.0;
        }
        // Line 1: v itself becomes fully covered.
        let mut gain = g.node_weight(v) - self.i[v.index()];
        // Lines 2-3: every non-retained in-neighbor u gains coverage.
        for (u, w) in g.in_edges(v) {
            if u != v && !self.in_set[u.index()] {
                gain += M::marginal(w, g.node_weight(u), self.i[u.index()]);
            }
        }
        gain
    }

    /// Algorithm 3 / 5: retains `v`, updating `I` and the cover, and
    /// returns the realized gain.
    ///
    /// Adding an already-retained node is a no-op returning 0.
    pub fn add_node<M: CoverModel>(&mut self, g: &PreferenceGraph, v: ItemId) -> f64 {
        if self.in_set[v.index()] {
            return 0.0;
        }
        self.in_set[v.index()] = true;
        self.order.push(v);

        // Lines 2-3: v covers itself completely.
        let own = g.node_weight(v) - self.i[v.index()];
        self.cover += own;
        self.i[v.index()] = g.node_weight(v);
        let mut gain = own;

        // Lines 4-6: update non-retained in-neighbors.
        for (u, w) in g.in_edges(v) {
            if u != v && !self.in_set[u.index()] {
                let delta = M::marginal(w, g.node_weight(u), self.i[u.index()]);
                self.cover += delta;
                self.i[u.index()] += delta;
                gain += delta;
            }
        }
        gain
    }

    /// The retained-set mask, indexed by `ItemId::index`.
    pub fn selection_mask(&self) -> &[bool] {
        &self.in_set
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exactly-representable constants
mod tests {
    use pcover_graph::examples::{figure1_ids, figure3_ids};
    use pcover_graph::GraphBuilder;

    use crate::{Independent, Normalized};

    use super::*;

    #[test]
    fn empty_selection_covers_nothing() {
        let (g, _) = figure1_ids();
        let mask = vec![false; g.node_count()];
        assert_eq!(cover_value::<Normalized>(&g, &mask), 0.0);
        assert_eq!(cover_value::<Independent>(&g, &mask), 0.0);
    }

    #[test]
    fn full_selection_covers_everything() {
        let (g, _) = figure1_ids();
        let mask = vec![true; g.node_count()];
        assert!((cover_value::<Normalized>(&g, &mask) - 1.0).abs() < 1e-9);
        assert!((cover_value::<Independent>(&g, &mask) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn figure1_optimal_pair_covers_873() {
        // Example 1.1: retaining {B, D} covers 87.3% in both variants
        // (each non-retained node has exactly one retained alternative, so
        // the variants agree).
        let (g, ids) = figure1_ids();
        let mut mask = vec![false; g.node_count()];
        mask[ids.b.index()] = true;
        mask[ids.d.index()] = true;
        assert!((cover_value::<Normalized>(&g, &mask) - 0.873).abs() < 1e-9);
        assert!((cover_value::<Independent>(&g, &mask) - 0.873).abs() < 1e-9);
    }

    #[test]
    fn figure1_top_sellers_cover_77() {
        // Introduction: the naive top-seller choice {A, B} covers 77%.
        let (g, ids) = figure1_ids();
        let mut mask = vec![false; g.node_count()];
        mask[ids.a.index()] = true;
        mask[ids.b.index()] = true;
        assert!((cover_value::<Normalized>(&g, &mask) - 0.77).abs() < 1e-9);
        assert!((cover_value::<Independent>(&g, &mask) - 0.77).abs() < 1e-9);
    }

    #[test]
    fn variants_differ_with_multiple_alternatives() {
        // x has two retained alternatives at 0.5 each: Normalized matches
        // with probability 1.0, Independent with 0.75.
        let mut b = GraphBuilder::new();
        let x = b.add_node(0.5);
        let y = b.add_node(0.25);
        let z = b.add_node(0.25);
        b.add_edge(x, y, 0.5).unwrap();
        b.add_edge(x, z, 0.5).unwrap();
        let g = b.build().unwrap();
        let mask = vec![false, true, true];
        let norm = cover_value::<Normalized>(&g, &mask);
        let ind = cover_value::<Independent>(&g, &mask);
        assert!((norm - (0.5 + 0.5 * 1.0)).abs() < 1e-12);
        assert!((ind - (0.5 + 0.5 * 0.75)).abs() < 1e-12);
    }

    #[test]
    fn self_loops_are_inert() {
        let mut b = GraphBuilder::new().allow_self_loops(true);
        let x = b.add_node(0.6);
        let y = b.add_node(0.4);
        b.add_edge(x, x, 1.0).unwrap();
        b.add_edge(x, y, 0.5).unwrap();
        let g = b.build().unwrap();
        // x not selected: its self-loop must not cover it.
        let mask = vec![false, true];
        let c = cover_value::<Normalized>(&g, &mask);
        assert!((c - (0.4 + 0.6 * 0.5)).abs() < 1e-12);

        // Incremental state must agree.
        let mut st = CoverState::new(2);
        st.add_node::<Normalized>(&g, y);
        assert!((st.cover() - c).abs() < 1e-12);
    }

    #[test]
    fn incremental_state_matches_scratch_eval_figure1() {
        let (g, ids) = figure1_ids();
        for order in [
            vec![ids.b, ids.d],
            vec![ids.d, ids.b],
            vec![ids.a, ids.c, ids.e],
            vec![ids.a, ids.b, ids.c, ids.d, ids.e],
        ] {
            let mut st_n = CoverState::new(g.node_count());
            let mut st_i = CoverState::new(g.node_count());
            for &v in &order {
                st_n.add_node::<Normalized>(&g, v);
                st_i.add_node::<Independent>(&g, v);
            }
            let c_n = cover_value::<Normalized>(&g, st_n.selection_mask());
            let c_i = cover_value::<Independent>(&g, st_i.selection_mask());
            assert!((st_n.cover() - c_n).abs() < 1e-9, "order {order:?}");
            assert!((st_i.cover() - c_i).abs() < 1e-9, "order {order:?}");
            // C(S) equals the sum of the I array (paper invariant).
            let sum_n: f64 = st_n.item_cover().iter().sum();
            assert!((st_n.cover() - sum_n).abs() < 1e-9);
        }
    }

    #[test]
    fn gain_predicts_add_node_exactly() {
        let (g, ids) = figure1_ids();
        let mut st = CoverState::new(g.node_count());
        for v in [ids.b, ids.d, ids.a] {
            let predicted = st.gain::<Independent>(&g, v);
            let realized = st.add_node::<Independent>(&g, v);
            assert!((predicted - realized).abs() < 1e-12);
        }
    }

    #[test]
    fn example_3_2_first_gain_is_066() {
        // Greedy's first pick: B with gain 0.66 (covers W(B), W(C), 2/3 of
        // W(A)).
        let (g, ids) = figure1_ids();
        let st = CoverState::new(g.node_count());
        let gain_b = st.gain::<Normalized>(&g, ids.b);
        assert!((gain_b - 0.66).abs() < 1e-9);
        // And in the second iteration D gains 21.3%, A 11%, C 0%.
        let mut st = st;
        st.add_node::<Normalized>(&g, ids.b);
        assert!((st.gain::<Normalized>(&g, ids.d) - 0.213).abs() < 1e-9);
        assert!((st.gain::<Normalized>(&g, ids.a) - 0.11).abs() < 1e-9);
        assert!(st.gain::<Normalized>(&g, ids.c).abs() < 1e-9);
    }

    #[test]
    fn readding_is_noop() {
        let (g, ids) = figure3_ids();
        let mut st = CoverState::new(g.node_count());
        let first = st.add_node::<Independent>(&g, ids.silver);
        assert!(first > 0.0);
        let again = st.add_node::<Independent>(&g, ids.silver);
        assert_eq!(again, 0.0);
        assert_eq!(st.len(), 1);
        assert_eq!(st.gain::<Independent>(&g, ids.silver), 0.0);
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn cover_value_rejects_bad_mask() {
        let (g, _) = figure1_ids();
        cover_value::<Normalized>(&g, &[true]);
    }
}

//! Whole-solver benchmarks: the greedy family and the baselines on a
//! mid-size graph — the per-algorithm cost behind Figures 4b/4c.

#![allow(clippy::unwrap_used)] // bench harness: panicking on setup failure is the right behavior

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pcover_core::{baselines, greedy, lazy, minimize, parallel, Independent};
use pcover_datagen::graphgen::{generate_graph, GraphGenConfig};
use pcover_graph::PreferenceGraph;

fn test_graph(n: usize) -> PreferenceGraph {
    generate_graph(&GraphGenConfig {
        nodes: n,
        avg_out_degree: 5,
        seed: 2,
        ..GraphGenConfig::default()
    })
    .expect("valid config")
}

fn bench_solvers(c: &mut Criterion) {
    let g = test_graph(5_000);
    let k = 100;

    let mut group = c.benchmark_group("solve_n5000_k100");
    group.bench_function("greedy_plain", |b| {
        b.iter(|| black_box(greedy::solve::<Independent>(&g, k).unwrap().cover))
    });
    group.bench_function("greedy_lazy", |b| {
        b.iter(|| black_box(lazy::solve::<Independent>(&g, k).unwrap().cover))
    });
    group.bench_function("greedy_parallel_2", |b| {
        b.iter(|| black_box(parallel::solve::<Independent>(&g, k, 2).unwrap().0.cover))
    });
    group.bench_function("topk_weight", |b| {
        b.iter(|| black_box(baselines::top_k_weight::<Independent>(&g, k).unwrap().cover))
    });
    group.bench_function("topk_coverage", |b| {
        b.iter(|| {
            black_box(
                baselines::top_k_coverage::<Independent>(&g, k)
                    .unwrap()
                    .cover,
            )
        })
    });
    group.bench_function("random_best_of_10", |b| {
        b.iter(|| {
            black_box(
                baselines::random_best_of::<Independent>(&g, k, 3, 10)
                    .unwrap()
                    .cover,
            )
        })
    });
    group.finish();
}

fn bench_minimize(c: &mut Criterion) {
    let g = test_graph(5_000);
    let mut group = c.benchmark_group("minimize_n5000_t0.8");
    group.bench_function("greedy_direct", |b| {
        b.iter(|| {
            black_box(
                minimize::greedy_min_cover::<Independent>(&g, 0.8)
                    .unwrap()
                    .set_size(),
            )
        })
    });
    group.bench_function("topk_weight_binary_search", |b| {
        b.iter(|| {
            black_box(
                minimize::top_k_weight_min_cover::<Independent>(&g, 0.8)
                    .unwrap()
                    .set_size(),
            )
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_solvers, bench_minimize
}
criterion_main!(benches);

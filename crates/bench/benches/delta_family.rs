//! Greedy family shoot-out: plain greedy (Algorithm 1) vs lazy greedy vs
//! delta greedy on a seeded 10k-node graph.
//!
//! All three return bit-identical output (the determinism grid asserts it);
//! what differs is how much gain-evaluation work each does per round. Plain
//! greedy rescans all `n - |S|` candidates, lazy pops a priority queue until
//! the top is current, and delta recomputes only the dirty set — `{v} ∪
//! in(v)` plus the out-neighbors of nodes whose `I` changed. On a sparse
//! graph the dirty set is `O(D²)` per round, so delta's advantage grows
//! with `k` while its first full-scan round keeps the `k = 1` case honest.
//! This bench prints the measured evaluation counts once per group so the
//! wall-clock numbers can be read against the work they represent (see this
//! crate's README).

#![allow(clippy::unwrap_used)] // bench harness: panicking on setup failure is the right behavior

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pcover_core::{delta, greedy, lazy, Independent, Normalized};
use pcover_datagen::graphgen::{generate_graph, GraphGenConfig};
use pcover_graph::PreferenceGraph;

fn test_graph() -> PreferenceGraph {
    generate_graph(&GraphGenConfig {
        nodes: 10_000,
        avg_out_degree: 6,
        seed: 1,
        ..GraphGenConfig::default()
    })
    .expect("valid config")
}

fn bench_family(c: &mut Criterion) {
    let g = test_graph();
    for k in [50, 500] {
        // One eval-count report per (k, variant) so the timings below have
        // their work context attached.
        let seq = greedy::solve::<Independent>(&g, k).unwrap();
        let lz = lazy::solve::<Independent>(&g, k).unwrap();
        let dl = delta::solve::<Independent>(&g, k).unwrap();
        assert_eq!(seq.order, dl.order, "delta must match greedy bit-for-bit");
        println!(
            "k={k} independent gain evaluations: greedy {} / lazy {} / delta {}",
            seq.gain_evaluations, lz.gain_evaluations, dl.gain_evaluations
        );

        let mut group = c.benchmark_group(format!("greedy_family/k{k}"));
        group.bench_function("greedy_independent", |b| {
            b.iter(|| black_box(greedy::solve::<Independent>(&g, k).unwrap().cover))
        });
        group.bench_function("lazy_independent", |b| {
            b.iter(|| black_box(lazy::solve::<Independent>(&g, k).unwrap().cover))
        });
        group.bench_function("delta_independent", |b| {
            b.iter(|| black_box(delta::solve::<Independent>(&g, k).unwrap().cover))
        });
        group.bench_function("delta_normalized", |b| {
            b.iter(|| black_box(delta::solve::<Normalized>(&g, k).unwrap().cover))
        });
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_family
}
criterion_main!(benches);

//! Data-path benchmarks: session generation, graph adaptation (the
//! offline phase the paper excludes from solver timings) and graph IO.

#![allow(clippy::unwrap_used)] // bench harness: panicking on setup failure is the right behavior

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pcover_adapt::{adapt, AdaptOptions};
use pcover_core::Variant;
use pcover_datagen::profiles::{DatasetProfile, Scale};
use pcover_datagen::sessions::generate_clickstream;
use pcover_graph::io::{binary, json, LoadOptions};

fn bench_generate_and_adapt(c: &mut Criterion) {
    let (catalog_cfg, session_cfg) = DatasetProfile::YC.configs(Scale::Fraction(0.02), 4);
    let (_, sessions) = generate_clickstream(&catalog_cfg, &session_cfg);

    let mut group = c.benchmark_group("pipeline");
    group.bench_function("generate_yc_2pct", |b| {
        b.iter(|| black_box(generate_clickstream(&catalog_cfg, &session_cfg).1.len()))
    });
    group.bench_function("adapt_independent", |b| {
        b.iter(|| {
            black_box(
                adapt(
                    &sessions,
                    &AdaptOptions {
                        variant: Variant::Independent,
                        label_nodes: false,
                        min_edge_support: 1,
                    },
                )
                .unwrap()
                .graph
                .edge_count(),
            )
        })
    });
    group.bench_function("adapt_normalized", |b| {
        b.iter(|| {
            black_box(
                adapt(
                    &sessions,
                    &AdaptOptions {
                        variant: Variant::Normalized,
                        label_nodes: false,
                        min_edge_support: 1,
                    },
                )
                .unwrap()
                .graph
                .edge_count(),
            )
        })
    });
    group.finish();
}

fn bench_graph_io(c: &mut Criterion) {
    let adapted = {
        let (catalog_cfg, session_cfg) = DatasetProfile::YC.configs(Scale::Fraction(0.02), 4);
        let (_, sessions) = generate_clickstream(&catalog_cfg, &session_cfg);
        adapt(
            &sessions,
            &AdaptOptions {
                variant: Variant::Independent,
                label_nodes: false,
                min_edge_support: 1,
            },
        )
        .unwrap()
    };
    let g = adapted.graph;
    let dir = std::env::temp_dir().join("pcover-bench-io");
    std::fs::create_dir_all(&dir).unwrap();
    let json_path = dir.join("bench.json");
    let bin_path = dir.join("bench.pcg");
    json::write_json(&g, &json_path).unwrap();
    binary::write_binary(&g, &bin_path).unwrap();

    let mut group = c.benchmark_group("graph_io");
    group.bench_function("write_json", |b| {
        b.iter(|| json::write_json(&g, &json_path).unwrap())
    });
    group.bench_function("read_json", |b| {
        b.iter(|| {
            black_box(
                json::read_json(&json_path, &LoadOptions::default())
                    .unwrap()
                    .edge_count(),
            )
        })
    });
    group.bench_function("write_binary", |b| {
        b.iter(|| binary::write_binary(&g, &bin_path).unwrap())
    });
    group.bench_function("read_binary", |b| {
        b.iter(|| {
            black_box(
                binary::read_binary(&bin_path, &LoadOptions::default())
                    .unwrap()
                    .edge_count(),
            )
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_generate_and_adapt, bench_graph_io
}
criterion_main!(benches);

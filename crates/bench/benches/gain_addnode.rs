//! Micro-benchmarks of the solver's inner loop: `Gain` (Algorithms 2/4)
//! and `AddNode` (Algorithms 3/5), per variant.
//!
//! These are the `O(d(v))` primitives whose cost the paper's `O(nkD)`
//! analysis counts; the Independent variant does one extra multiply per
//! in-edge, which should be visible but small.

#![allow(clippy::unwrap_used)] // bench harness: panicking on setup failure is the right behavior

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pcover_core::{
    greedy, CoverState, Independent, NoopObserver, Normalized, SolveCtx, SolverConfig,
};
use pcover_datagen::graphgen::{generate_graph, GraphGenConfig};
use pcover_graph::{ItemId, PreferenceGraph};

fn test_graph() -> PreferenceGraph {
    generate_graph(&GraphGenConfig {
        nodes: 10_000,
        avg_out_degree: 6,
        seed: 1,
        ..GraphGenConfig::default()
    })
    .expect("valid config")
}

fn bench_gain(c: &mut Criterion) {
    let g = test_graph();
    // A state with some coverage so gains exercise the partial-cover path.
    let mut state = CoverState::new(g.node_count());
    for i in (0..g.node_count()).step_by(50) {
        state.add_node::<Independent>(&g, ItemId::from_index(i));
    }

    let mut group = c.benchmark_group("gain");
    group.bench_function("independent", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in (0..2000).map(|x| x * 3 + 1) {
                acc += state.gain::<Independent>(&g, ItemId::from_index(i));
            }
            black_box(acc)
        })
    });
    let mut state_n = CoverState::new(g.node_count());
    for i in (0..g.node_count()).step_by(50) {
        state_n.add_node::<Normalized>(&g, ItemId::from_index(i));
    }
    group.bench_function("normalized", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in (0..2000).map(|x| x * 3 + 1) {
                acc += state_n.gain::<Normalized>(&g, ItemId::from_index(i));
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_add_node(c: &mut Criterion) {
    let g = test_graph();
    let mut group = c.benchmark_group("add_node");
    group.bench_function("independent_full_run", |b| {
        b.iter(|| {
            let mut state = CoverState::new(g.node_count());
            for i in (0..1000).map(|x| x * 7 % g.node_count()) {
                state.add_node::<Independent>(&g, ItemId::from_index(i));
            }
            black_box(state.cover())
        })
    });
    group.bench_function("normalized_full_run", |b| {
        b.iter(|| {
            let mut state = CoverState::new(g.node_count());
            for i in (0..1000).map(|x| x * 7 % g.node_count()) {
                state.add_node::<Normalized>(&g, ItemId::from_index(i));
            }
            black_box(state.cover())
        })
    });
    group.finish();
}

/// Zero-cost-observer check for the solver-trait refactor: greedy through
/// the pre-refactor free function vs through the `Solver` path with no
/// observer and with an attached `NoopObserver`. The emit hooks are
/// `#[inline]` no-ops when no observer is attached, so all three must
/// measure the same within noise (see this crate's README).
fn bench_observer_overhead(c: &mut Criterion) {
    let g = test_graph();
    let k = 200;
    let mut group = c.benchmark_group("observer_overhead");
    group.bench_function("greedy_free_fn", |b| {
        b.iter(|| black_box(greedy::solve::<Independent>(&g, k).unwrap().cover))
    });
    group.bench_function("greedy_solver_no_observer", |b| {
        b.iter(|| {
            let mut ctx = SolveCtx::new(SolverConfig::default());
            black_box(
                greedy::solve_with::<Independent>(&g, k, &mut ctx)
                    .unwrap()
                    .cover,
            )
        })
    });
    group.bench_function("greedy_solver_noop_observer", |b| {
        b.iter(|| {
            let mut noop = NoopObserver;
            let mut ctx = SolveCtx::with_observer(SolverConfig::default(), &mut noop);
            black_box(
                greedy::solve_with::<Independent>(&g, k, &mut ctx)
                    .unwrap()
                    .cover,
            )
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_gain, bench_add_node, bench_observer_overhead
}
criterion_main!(benches);

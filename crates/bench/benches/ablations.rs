//! Ablation benchmarks for the design decisions called out in DESIGN.md:
//!
//! * **Lazy vs plain greedy across k** — how much of the scalability comes
//!   from lazy evaluation (the paper's plain scheme is `O(nkD)`; lazy does
//!   a heap-guided fraction of that work for identical results).
//! * **Incremental `I` array vs from-scratch gains** — the paper's §3.2
//!   space trade-off: dropping the `I` array saves `O(n)` memory but
//!   recomputes each node's current cover inside every gain call.
//! * **Dual-CSR vs on-the-fly in-edge scan** — the reason the graph stores
//!   both adjacency directions.

#![allow(clippy::unwrap_used)] // bench harness: panicking on setup failure is the right behavior

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pcover_core::{cover_value, greedy, lazy, CoverState, Independent};
use pcover_datagen::graphgen::{generate_graph, GraphGenConfig};
use pcover_graph::{ItemId, PreferenceGraph};

fn test_graph(n: usize) -> PreferenceGraph {
    generate_graph(&GraphGenConfig {
        nodes: n,
        avg_out_degree: 5,
        seed: 5,
        ..GraphGenConfig::default()
    })
    .expect("valid config")
}

fn bench_lazy_vs_plain(c: &mut Criterion) {
    let g = test_graph(4_000);
    let mut group = c.benchmark_group("lazy_vs_plain");
    for k in [20usize, 100, 400] {
        group.bench_function(&format!("plain_k{k}"), |b| {
            b.iter(|| black_box(greedy::solve::<Independent>(&g, k).unwrap().cover))
        });
        group.bench_function(&format!("lazy_k{k}"), |b| {
            b.iter(|| black_box(lazy::solve::<Independent>(&g, k).unwrap().cover))
        });
        group.bench_function(&format!("partitioned_k{k}"), |b| {
            b.iter(|| {
                black_box(
                    pcover_core::partitioned::solve::<Independent>(&g, k)
                        .unwrap()
                        .cover,
                )
            })
        });
    }
    group.finish();
}

/// The O(k)-space alternative of §3.2: no `I` array; each gain call
/// recomputes the candidate's own current cover from its out-edges and the
/// retained mask. (In-neighbor terms still need *their* covers, so this
/// variant is only exact for the Normalized formula; for the benchmarked
/// Independent marginal we emulate the recomputation cost with
/// `cover_value`-style scans.)
fn gain_without_i_array(g: &PreferenceGraph, selected: &[bool], v: ItemId) -> f64 {
    // Recompute I[v] from scratch.
    let own_cover = {
        let matched: f64 = 1.0
            - g.out_edges(v)
                .filter(|&(u, _)| u != v && selected[u.index()])
                .map(|(_, w)| 1.0 - w)
                .product::<f64>();
        g.node_weight(v) * matched
    };
    let mut gain = g.node_weight(v) - own_cover;
    for (u, w) in g.in_edges(v) {
        if u != v && !selected[u.index()] {
            let iu = {
                let matched: f64 = 1.0
                    - g.out_edges(u)
                        .filter(|&(x, _)| x != u && selected[x.index()])
                        .map(|(_, w)| 1.0 - w)
                        .product::<f64>();
                g.node_weight(u) * matched
            };
            gain += w * (g.node_weight(u) - iu);
        }
    }
    gain
}

fn bench_i_array_ablation(c: &mut Criterion) {
    let g = test_graph(4_000);
    // Mid-run state: 10% retained.
    let mut state = CoverState::new(g.node_count());
    for i in (0..g.node_count()).step_by(10) {
        state.add_node::<Independent>(&g, ItemId::from_index(i));
    }
    let mask: Vec<bool> = g.node_ids().map(|v| state.contains(v)).collect();

    let mut group = c.benchmark_group("i_array_ablation");
    group.bench_function("with_i_array", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in (1..2000).step_by(3) {
                acc += state.gain::<Independent>(&g, ItemId::from_index(i));
            }
            black_box(acc)
        })
    });
    group.bench_function("recompute_from_scratch", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in (1..2000).step_by(3) {
                acc += gain_without_i_array(&g, &mask, ItemId::from_index(i));
            }
            black_box(acc)
        })
    });
    group.finish();
}

/// Cover evaluation with only out-CSR (what gain computation would cost if
/// the graph stored a single direction and in-edges had to be found by
/// scanning all nodes' out-rows).
fn bench_dual_csr_ablation(c: &mut Criterion) {
    let g = test_graph(2_000);
    let selected: Vec<bool> = (0..g.node_count()).map(|i| i % 7 == 0).collect();

    let mut group = c.benchmark_group("dual_csr_ablation");
    group.bench_function("in_edges_via_in_csr", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for v in g.node_ids() {
                for (u, w) in g.in_edges(v) {
                    if !selected[u.index()] {
                        acc += w;
                    }
                }
            }
            black_box(acc)
        })
    });
    group.bench_function("in_edges_via_full_scan", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for v in g.node_ids() {
                for u in g.node_ids() {
                    if let Some(w) = g.edge_weight(u, v) {
                        if !selected[u.index()] {
                            acc += w;
                        }
                    }
                }
            }
            black_box(acc)
        })
    });
    group.finish();

    // Correctness guard for the ablation itself.
    let direct = cover_value::<Independent>(&g, &selected);
    assert!(direct.is_finite());
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_lazy_vs_plain, bench_i_array_ablation, bench_dual_csr_ablation
}
criterion_main!(benches);

//! The `experiments` binary: regenerate any table or figure of the paper.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::path::PathBuf;

use pcover_bench::{experiments, Opts};

const USAGE: &str = "\
experiments — regenerate the tables and figures of the EDBT 2020 paper

USAGE: experiments <id | all> [--full] [--seed N] [--out DIR]

ids: table1 table2 fig3 fig4a fig4b fig4c fig4d fig4e fig4f
  --full   paper-scale parameters (minutes instead of seconds)
  --seed   master RNG seed (default 42)
  --out    also write each report to DIR/<id>.md
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprint!("{USAGE}");
        std::process::exit(2);
    }
    let id = args[0].clone();
    let mut opts = Opts::default();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--full" => opts.full = true,
            "--seed" => {
                i += 1;
                opts.seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("error: --seed needs an integer");
                    std::process::exit(2);
                });
            }
            "--out" => {
                i += 1;
                opts.out_dir = Some(PathBuf::from(args.get(i).unwrap_or_else(|| {
                    eprintln!("error: --out needs a directory");
                    std::process::exit(2);
                })));
            }
            other => {
                eprintln!("error: unknown option {other:?}");
                eprint!("{USAGE}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let ids: Vec<&str> = if id == "all" {
        experiments::ALL.to_vec()
    } else {
        vec![id.as_str()]
    };
    for id in ids {
        match experiments::run(id, &opts) {
            Some(report) => {
                println!("{report}");
            }
            None => {
                eprintln!("error: unknown experiment {id:?}");
                eprint!("{USAGE}");
                std::process::exit(2);
            }
        }
    }
}

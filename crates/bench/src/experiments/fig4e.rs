//! Figure 4e — parallelizability: speedup over worker count.
//!
//! The paper runs parallel Greedy on a fixed PE graph with
//! 1/4/8/16/32 cores on a 32-core server and reports ~20x at 32 cores.
//! **This host has a single core** (see DESIGN.md §5.3), so wall-clock
//! cannot show speedup; the experiment therefore reports, for each pool
//! size:
//!
//! * measured wall time (expect ≈flat on one physical core — printed for
//!   honesty, not for the figure),
//! * the measured load balance of the actual rayon work partition,
//! * the Amdahl-modeled speedup `T1 / (T_serial + (T1 − T_serial)/N)`,
//!   where `T_serial` is the measured cost of the sequential `AddNode`
//!   phase — the quantity the paper's figure plots, instantiated with this
//!   host's measured constants.

use pcover_core::{parallel, CoverState, Independent};
use pcover_datagen::graphgen::{generate_graph, GraphGenConfig};

use crate::util::{fmt_duration, timed, Table};
use crate::Opts;

/// Runs the thread sweep.
pub fn run(opts: &Opts) -> String {
    let (n, k) = if opts.full {
        (200_000, 1000)
    } else {
        (50_000, 250)
    };
    let g = generate_graph(&GraphGenConfig {
        nodes: n,
        avg_out_degree: 5,
        seed: opts.seed,
        ..GraphGenConfig::default()
    })
    .expect("valid config");

    // Baseline: one thread.
    let ((one_thread, _), t1) =
        // lint: allow(solver-dispatch) — needs the WorkStats side channel the registry's uniform SolveReport omits
        timed(|| parallel::solve::<Independent>(&g, k, 1).expect("valid k"));

    // The serial fraction: replaying the chosen order through AddNode is
    // exactly the non-parallelizable part of each iteration.
    let (_, t_serial) = timed(|| {
        let mut state = CoverState::new(g.node_count());
        for &v in &one_thread.order {
            state.add_node::<Independent>(&g, v);
        }
        state.cover()
    });

    let model = |threads: usize| -> f64 {
        let t1s = t1.as_secs_f64();
        let ser = t_serial.as_secs_f64().min(t1s);
        t1s / (ser + (t1s - ser) / threads as f64)
    };

    let mut t = Table::new([
        "threads",
        "wall time (1-core host)",
        "load balance",
        "modeled speedup",
        "paper",
    ]);
    let paper_points = [(1, 1.0), (4, 3.7), (8, 7.0), (16, 12.5), (32, 20.0)];
    for &(threads, paper) in &paper_points {
        let ((report, stats), wall) =
            // lint: allow(solver-dispatch) — needs the WorkStats side channel the registry's uniform SolveReport omits
            timed(|| parallel::solve::<Independent>(&g, k, threads).expect("valid k"));
        assert_eq!(
            report.order, one_thread.order,
            "thread count changed the result"
        );
        t.row([
            threads.to_string(),
            fmt_duration(wall),
            format!("{:.3}", stats.balance()),
            format!("{:.1}x", model(threads)),
            format!("~{paper:.1}x"),
        ]);
    }

    let mut out = format!("## Figure 4e — parallelizability (n = {n}, k = {k}, Independent)\n\n");
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nT1 = {}, measured serial (AddNode) share = {:.1}%\n\
         HOST SUBSTITUTION: this machine has one physical core, so wall time cannot drop with\n\
         thread count; the modeled column instantiates the paper's speedup quantity via Amdahl's\n\
         law with the measured serial fraction, and the load-balance column certifies the actual\n\
         rayon partition is near-uniform (1.0 = perfect). The model is an upper bound — it\n\
         excludes the memory-bandwidth and synchronization costs behind the paper's measured\n\
         ~20x-of-32; the figure's qualitative claim (speedup keeps growing to 32 workers with\n\
         no saturation cliff) is what both reproduce. The parallel code path itself is real and\n\
         bit-identical to sequential greedy (asserted on every run above).\n",
        fmt_duration(t1),
        100.0 * t_serial.as_secs_f64() / t1.as_secs_f64().max(1e-12),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "takes tens of seconds in debug builds; run with --ignored or --release"]
    fn thread_sweep_runs() {
        let out = run(&Opts::default());
        assert!(out.contains("modeled speedup"));
        assert!(out.contains("HOST SUBSTITUTION"));
    }
}

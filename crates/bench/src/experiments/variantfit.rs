//! Variant fit — Section 5.3's dataset classification.
//!
//! The paper states: "the YC, PE and PF datasets fit the Independent
//! variant, as in all three datasets our proposed independence measure is
//! below 0.1. The PM dataset ... is better captured by the Normalized
//! variant ... the percentage of sessions implying no more than a single
//! alternative is above 90%." This experiment runs both diagnostic rules
//! on all four (synthetic) profiles and checks each lands on the paper's
//! classification.

use pcover_adapt::diagnostics::{diagnose, DiagnosticThresholds, Recommendation};
use pcover_datagen::profiles::{DatasetProfile, Scale};
use pcover_datagen::sessions::generate_clickstream;

use crate::util::Table;
use crate::Opts;

/// Runs the diagnostics on every profile.
pub fn run(opts: &Opts) -> String {
    let scale = if opts.full {
        Scale::Fraction(0.1)
    } else {
        Scale::Fraction(0.01)
    };

    let mut t = Table::new([
        "DS",
        "<=1-alt fraction",
        "mean pairwise NMI",
        "diagnosis",
        "paper",
        "match",
    ]);
    let mut all_match = true;
    for profile in DatasetProfile::all() {
        let (catalog_cfg, session_cfg) = profile.configs(scale, opts.seed);
        let (_, sessions) = generate_clickstream(&catalog_cfg, &session_cfg);
        let d = diagnose(&sessions, &DiagnosticThresholds::default());
        let paper = match profile {
            DatasetProfile::PM => Recommendation::Normalized,
            _ => Recommendation::Independent,
        };
        let matches = d.recommendation == paper;
        all_match &= matches;
        t.row([
            profile.name().to_string(),
            format!("{:.4}", d.single_alt_fraction),
            d.weighted_mean_nmi
                .map(|x| format!("{x:.4}"))
                .unwrap_or_else(|| "n/a".into()),
            format!("{:?}", d.recommendation),
            format!("{paper:?}"),
            if matches { "yes" } else { "NO" }.to_string(),
        ]);
    }

    let mut out = String::from(
        "## Variant fit — Section 5.3's dataset classification (diagnostic rules on synthetic profiles)\n\n",
    );
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nall profiles classified as in the paper: {all_match}\n\
         (rules: Normalized if <=1-alt fraction >= 0.90; else Independent if NMI < 0.10)\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_match_paper_classification() {
        let out = run(&Opts {
            seed: 42,
            ..Opts::default()
        });
        assert!(
            out.contains("all profiles classified as in the paper: true"),
            "{out}"
        );
    }
}

//! Table 2 — the datasets used in the experiments.
//!
//! The paper's table lists sessions, purchases, items and edges for
//! PE/PF/PM/YC. The private datasets are unavailable (see DESIGN.md §5),
//! so this experiment generates each profile synthetically — at 1% scale
//! by default, paper scale with `--full` — adapts it, and reports the
//! resulting counts next to the paper's, including the edges-per-item
//! ratio that the generator is calibrated to reproduce.

use pcover_core::Variant;
use pcover_datagen::profiles::{DatasetProfile, Scale};

use crate::util::{adapted_profile, fmt_duration, timed, Table};
use crate::Opts;

/// Generates all four dataset profiles and tabulates their statistics.
pub fn run(opts: &Opts) -> String {
    let scale = if opts.full {
        Scale::Full
    } else {
        Scale::Fraction(0.01)
    };
    let mut t = Table::new([
        "DS",
        "Sessions",
        "Items",
        "Edges",
        "Edges/Item",
        "Paper E/I",
        "Variant",
        "Gen+Adapt",
    ]);
    for profile in DatasetProfile::all() {
        let variant = match profile {
            DatasetProfile::PM => Variant::Normalized,
            _ => Variant::Independent,
        };
        let (adapted, elapsed) = timed(|| adapted_profile(profile, scale, variant, opts.seed));
        let r = &adapted.report;
        let paper_ratio = profile.full_edges() as f64 / profile.full_items() as f64;
        t.row([
            profile.name().to_string(),
            r.sessions.to_string(),
            r.items.to_string(),
            r.edges.to_string(),
            format!("{:.2}", r.edges as f64 / r.items.max(1) as f64),
            format!("{paper_ratio:.2}"),
            variant.name().to_string(),
            fmt_duration(elapsed),
        ]);
    }
    let mut out = String::from("## Table 2 — datasets (synthetic reproduction)\n\n");
    out.push_str(&format!(
        "scale: {}\n\n",
        if opts.full {
            "full (paper scale)".to_string()
        } else {
            "1% of paper scale".to_string()
        }
    ));
    out.push_str(&t.render());
    out.push_str(
        "\npaper values (full scale): PE 10,782,918 sessions / 1,921,701 items / 9,250,131 edges;\n\
         PF 8,630,541 / 1,681,625 / 7,182,318; PM 8,154,160 / 1,396,674 / 5,826,429;\n\
         YC 259,579 purchase sessions / 52,739 items / 249,008 edges.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scale_table_has_four_profiles() {
        let opts = Opts {
            seed: 7,
            ..Opts::default()
        };
        let out = run(&opts);
        for name in ["PE", "PF", "PM", "YC"] {
            assert!(out.contains(name), "{out}");
        }
        assert!(out.contains("normalized"));
        assert!(out.contains("independent"));
    }
}

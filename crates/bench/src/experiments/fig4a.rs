//! Figure 4a — coverage of Greedy vs the brute-force optimum on a small
//! YC subset.
//!
//! The paper reduces the YC dataset to 30 products and sweeps `k`; Greedy's
//! coverage is "very close to optimal". Default scale uses `n = 20`
//! (`--full` uses the paper's 30) on a synthetic YC-profile subset.

use pcover_core::{SolverConfig, Variant};

use crate::util::{small_yc_instance, solve_named, Table};
use crate::Opts;

/// Runs the coverage comparison.
pub fn run(opts: &Opts) -> String {
    let n = if opts.full { 30 } else { 20 };
    let g = small_yc_instance(n, opts.seed);
    let ks: Vec<usize> = if opts.full {
        vec![3, 6, 9, 12, 15]
    } else {
        vec![2, 4, 6, 8, 10]
    };
    let config = SolverConfig {
        max_subsets: 200_000_000,
        ..SolverConfig::default()
    };

    let mut t = Table::new(["k", "BF (optimal)", "Greedy", "ratio", "bound"]);
    let mut worst_ratio = 1.0f64;
    for &k in &ks {
        let bf = solve_named("bf", Variant::Normalized, &g, k, config);
        let gr = solve_named("greedy", Variant::Normalized, &g, k, config);
        let ratio = if bf.cover > 0.0 {
            gr.cover / bf.cover
        } else {
            1.0
        };
        worst_ratio = worst_ratio.min(ratio);
        let bound = pcover_core::bounds::greedy_ratio_npc(k as f64 / n as f64);
        assert!(
            ratio >= bound - 1e-9,
            "greedy ratio {ratio} fell below its guarantee {bound}"
        );
        t.row([
            k.to_string(),
            format!("{:.4}", bf.cover),
            format!("{:.4}", gr.cover),
            format!("{ratio:.4}"),
            format!("{bound:.4}"),
        ]);
    }

    let mut out = format!(
        "## Figure 4a — coverage: Greedy vs BF optimum (YC-profile subset, n = {n}, Normalized)\n\n"
    );
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nworst observed greedy/optimal ratio: {worst_ratio:.4} \
         (paper: \"very close to optimal\"; theoretical worst case per k in the bound column)\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_is_near_optimal_on_default_scale() {
        let out = run(&Opts::default());
        assert!(out.contains("worst observed greedy/optimal ratio"));
        // All sweep rows rendered.
        assert_eq!(out.lines().filter(|l| l.starts_with('|')).count(), 7);
    }
}

//! Figure 4f — the complementary minimization problem: smallest retained
//! set reaching each cover threshold, Greedy vs the binary-search
//! adaptations of TopK-W and TopK-C (YC, Independent).

use pcover_core::{minimize, Independent, Variant};
use pcover_datagen::profiles::{DatasetProfile, Scale};

use crate::util::{adapted_profile, Table};
use crate::Opts;

/// Runs the threshold sweep.
pub fn run(opts: &Opts) -> String {
    let scale = if opts.full {
        Scale::Full
    } else {
        Scale::Fraction(0.05)
    };
    let adapted = adapted_profile(DatasetProfile::YC, scale, Variant::Independent, opts.seed);
    let g = &adapted.graph;
    let n = g.node_count();

    let mut t = Table::new(["threshold", "Greedy", "TopK-C", "TopK-W", "Greedy saves"]);
    let mut always_smallest = true;
    for threshold in [0.5, 0.6, 0.7, 0.8, 0.9] {
        let gr = minimize::greedy_min_cover::<Independent>(g, threshold).expect("reachable");
        let tc =
            minimize::top_k_coverage_min_cover::<Independent>(g, threshold).expect("reachable");
        let tw = minimize::top_k_weight_min_cover::<Independent>(g, threshold).expect("reachable");
        always_smallest &= gr.set_size() <= tc.set_size() && gr.set_size() <= tw.set_size();
        let best_baseline = tc.set_size().min(tw.set_size());
        t.row([
            format!("{threshold:.1}"),
            gr.set_size().to_string(),
            tc.set_size().to_string(),
            tw.set_size().to_string(),
            format!(
                "{:.1}%",
                100.0 * (best_baseline.saturating_sub(gr.set_size())) as f64
                    / best_baseline.max(1) as f64
            ),
        ]);
    }

    let mut out = format!(
        "## Figure 4f — complementary problem: set size per threshold (YC-profile, n = {n}, Independent)\n\n"
    );
    out.push_str(&t.render());
    out.push_str(&format!(
        "\ngreedy smallest at every threshold: {always_smallest} (paper: greedy \"outperforms\n\
         other baselines, producing a much smaller set\")\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_always_needs_fewest_items() {
        let out = run(&Opts {
            seed: 5,
            ..Opts::default()
        });
        assert!(
            out.contains("greedy smallest at every threshold: true"),
            "{out}"
        );
    }
}

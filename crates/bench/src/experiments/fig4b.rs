//! Figure 4b — running time of Greedy vs BF (Normalized variant,
//! log scale in the paper).
//!
//! The point of the figure is the exponential wall: BF's time explodes
//! combinatorially in `k` while Greedy stays in the microsecond range on
//! the same instance.

use pcover_core::{brute_force, SolverConfig, Variant};

use crate::util::{fmt_duration, small_yc_instance, solve_named, timed, Table};
use crate::Opts;

/// Runs the timing comparison.
pub fn run(opts: &Opts) -> String {
    let n = if opts.full { 30 } else { 20 };
    let g = small_yc_instance(n, opts.seed);
    let ks: Vec<usize> = if opts.full {
        vec![3, 6, 9, 12, 15]
    } else {
        vec![2, 4, 6, 8, 10]
    };
    let config = SolverConfig {
        max_subsets: 200_000_000,
        ..SolverConfig::default()
    };

    let mut t = Table::new(["k", "subsets", "BF time", "Greedy time", "BF/Greedy"]);
    let mut last_speedup = 0.0f64;
    for &k in &ks {
        let (bf, bf_time) = timed(|| solve_named("bf", Variant::Normalized, &g, k, config));
        let (gr, gr_time) = timed(|| solve_named("greedy", Variant::Normalized, &g, k, config));
        // Both produce valid covers; keep the optimizer honest.
        assert!(gr.cover <= bf.cover + 1e-9);
        last_speedup = bf_time.as_secs_f64() / gr_time.as_secs_f64().max(1e-9);
        t.row([
            k.to_string(),
            brute_force::subset_count(n, k).to_string(),
            fmt_duration(bf_time),
            fmt_duration(gr_time),
            format!("{last_speedup:.0}x"),
        ]);
    }

    let mut out = format!(
        "## Figure 4b — running time: Greedy vs BF (YC-profile subset, n = {n}, Normalized)\n\n"
    );
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nBF time grows with C(n, k) — the paper's log-scale blow-up — while greedy stays\n\
         polynomial; at the largest k here BF is {last_speedup:.0}x slower.\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bf_slower_than_greedy_at_largest_k() {
        let out = run(&Opts::default());
        assert!(out.contains("Greedy time"));
        assert!(out.contains("x slower"));
    }
}

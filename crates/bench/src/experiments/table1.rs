//! Table 1 — approximation ratios of the greedy algorithm vs the best
//! known polynomial algorithms for `VC_k` (and hence `NPC_k`).
//!
//! The greedy column is *computed* from the paper's formula
//! `max{1 − 1/e, 1 − (1 − k/n)²}`; the best-known column reprints the
//! SDP/LP literature constants the paper cites (those algorithms are not
//! runnable at scale — the paper itself only cites them).

use pcover_core::bounds;

use crate::util::Table;
use crate::Opts;

/// Renders Table 1.
pub fn run(_opts: &Opts) -> String {
    let mut t = Table::new([
        "Range of k/n",
        "Greedy formula",
        "Greedy value",
        "Best known",
    ]);
    for row in bounds::table1() {
        t.row([
            row.range.to_string(),
            row.greedy_formula.to_string(),
            format!("{:.4}", row.greedy_value),
            row.best_known.to_string(),
        ]);
    }
    let mut out =
        String::from("## Table 1 — greedy vs best-known approximation ratios for VC_k / NPC_k\n\n");
    out.push_str(&t.render());
    out.push_str(&format!(
        "\ncrossover where the quadratic term overtakes 1 - 1/e: k/n = {:.4} (paper: ~0.39)\n\
         greedy guarantee at k/n = 0.74: {:.4} (paper: exceeds 0.93)\n",
        bounds::quadratic_crossover(),
        bounds::greedy_ratio_npc(0.74),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_five_rows() {
        let out = run(&Opts::default());
        let table_lines = out.lines().filter(|l| l.starts_with('|')).count();
        assert_eq!(table_lines, 7, "header + rule + 5 rows");
        assert!(out.contains("0.39"));
        assert!(out.contains("1 - 1/e"));
    }
}

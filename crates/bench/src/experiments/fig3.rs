//! Figure 3 — preference graph construction from clickstream data.
//!
//! Replays the paper's exact five iPhone sessions (Figure 3a) through the
//! Data Adaptation Engine and prints the resulting graph, which must match
//! Figure 3b: node weights 0.4/0.2/0.4 and edge weights 1/2, 1/2, 1/2, 1.

use pcover_adapt::{adapt, AdaptOptions};
use pcover_clickstream::{Clickstream, Session};
use pcover_core::Variant;

use crate::util::Table;
use crate::Opts;

const SILVER: u64 = 1;
const GOLD: u64 = 2;
const SPACE_GRAY: u64 = 3;

fn label(id: u64) -> &'static str {
    match id {
        SILVER => "iPhone 8 256GB Silver",
        GOLD => "iPhone 8 256GB Gold",
        SPACE_GRAY => "iPhone 8 256GB Space Gray",
        _ => "?",
    }
}

/// Reconstructs Figure 3b from the Figure 3a sessions.
pub fn run(_opts: &Opts) -> String {
    let sessions = Clickstream::new(vec![
        Session::new(1, vec![SPACE_GRAY], SPACE_GRAY),
        Session::new(2, vec![SPACE_GRAY, SILVER], SPACE_GRAY),
        Session::new(3, vec![SILVER, GOLD], SILVER),
        Session::new(4, vec![SILVER, SPACE_GRAY], SILVER),
        Session::new(5, vec![GOLD, SPACE_GRAY], GOLD),
    ]);
    let adapted = adapt(
        &sessions,
        &AdaptOptions {
            variant: Variant::Normalized,
            ..AdaptOptions::default()
        },
    )
    .expect("five sessions");
    let g = &adapted.graph;

    let mut out = String::from("## Figure 3 — graph construction from 5 iPhone sessions\n\n");
    let mut nodes = Table::new(["Item", "W(v)", "Paper"]);
    for (&ext, paper) in [(SILVER, 0.4), (GOLD, 0.2), (SPACE_GRAY, 0.4)]
        .iter()
        .map(|(e, p)| (e, p))
    {
        let v = adapted.node_of(ext).expect("node exists");
        nodes.row([
            label(ext).to_string(),
            format!("{:.2}", g.node_weight(v)),
            format!("{paper:.2}"),
        ]);
        assert!(
            (g.node_weight(v) - paper).abs() < 1e-12,
            "node weight mismatch"
        );
    }
    out.push_str(&nodes.render());

    let mut edges = Table::new(["Edge", "W(v,u)", "Paper"]);
    for (from, to, paper) in [
        (SILVER, GOLD, 0.5),
        (SILVER, SPACE_GRAY, 0.5),
        (SPACE_GRAY, SILVER, 0.5),
        (GOLD, SPACE_GRAY, 1.0),
    ] {
        let fv = adapted.node_of(from).expect("node exists");
        let tv = adapted.node_of(to).expect("node exists");
        let w = g.edge_weight(fv, tv).expect("edge exists");
        edges.row([
            format!("{} -> {}", label(from), label(to)),
            format!("{w:.2}"),
            format!("{paper:.2}"),
        ]);
        assert!((w - paper).abs() < 1e-12, "edge weight mismatch");
    }
    out.push('\n');
    out.push_str(&edges.render());
    out.push_str("\nall node and edge weights match Figure 3b exactly.\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reconstruction_matches_paper() {
        let out = run(&Opts::default());
        assert!(out.contains("match Figure 3b exactly"));
        assert!(out.contains("Silver"));
    }
}

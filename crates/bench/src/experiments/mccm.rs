//! MCCM comparison — validating the paper's transitive-closure shortcut.
//!
//! Not a figure from the paper. Section 2 justifies one-hop cover
//! semantics by assuming the preference graph is the transitive closure of
//! a browse process; Section 6 points to the Markov chain choice model
//! (MCCM) as the exact-but-unscalable alternative. This experiment builds a
//! browse graph, runs
//!
//! * the exact MCCM greedy (each gain evaluation solves an absorption
//!   system), and
//! * the paper's one-hop greedy on the transitive closure,
//!
//! then evaluates **both** retained sets under the exact Markov objective.
//! The interesting numbers are the value ratio (how much of the exact
//! model's value the paper's shortcut retains) and the cost ratio (why the
//! shortcut is the only option at millions of items).

use pcover_core::extensions::markov::{greedy_assortment, MarkovChoiceModel, MarkovOptions};
use pcover_core::{SolverConfig, Variant};
use pcover_datagen::graphgen::{generate_graph, GraphGenConfig};
use pcover_graph::transform::{transitive_closure, PathCombination};

use crate::util::{fmt_duration, solve_named, timed, Table};
use crate::Opts;

/// Runs the comparison.
pub fn run(opts: &Opts) -> String {
    let n = if opts.full { 400 } else { 150 };
    let browse = generate_graph(&GraphGenConfig {
        nodes: n,
        avg_out_degree: 3,
        locality: 5,
        normalized: true,
        seed: opts.seed,
        ..GraphGenConfig::default()
    })
    .expect("valid config");
    let (closed, closure_time) = timed(|| {
        transitive_closure(&browse, 4, 1e-6, PathCombination::NormalizedClamped)
            .expect("valid browse graph")
    });
    let model = MarkovChoiceModel::from_graph(&browse).expect("substochastic");
    let mc_opts = MarkovOptions::default();

    let mut t = Table::new([
        "k",
        "MC-greedy value",
        "paper greedy value (MC eval)",
        "ratio",
        "MC-greedy time",
        "paper greedy time",
    ]);
    let mut worst_ratio = 1.0f64;
    for k in [n / 20, n / 10, n / 4] {
        let (exact, exact_time) =
            timed(|| greedy_assortment(&model, k, &mc_opts).expect("valid k"));
        let (one_hop, one_hop_time) = timed(|| {
            solve_named(
                "greedy",
                Variant::Normalized,
                &closed,
                k,
                SolverConfig::default(),
            )
        });
        // Evaluate the one-hop solution under the exact objective.
        let one_hop_mc_value = model.assortment_value_of(&one_hop.order, &mc_opts);
        let ratio = one_hop_mc_value / exact.cover.max(1e-12);
        worst_ratio = worst_ratio.min(ratio);
        t.row([
            k.to_string(),
            format!("{:.4}", exact.cover),
            format!("{one_hop_mc_value:.4}"),
            format!("{ratio:.4}"),
            fmt_duration(exact_time),
            fmt_duration(one_hop_time),
        ]);
    }

    let mut out = format!(
        "## MCCM comparison — one-hop closure vs exact Markov chain (browse graph n = {n})\n\n"
    );
    out.push_str(&t.render());
    out.push_str(&format!(
        "\ntransitive closure cost (one-off): {}\n\
         worst value ratio: {worst_ratio:.4} — the paper's one-hop model on the closed graph\n\
         retains nearly all of the exact Markov-optimal value while each MC greedy iteration\n\
         must solve n absorption systems (the related work's scalability wall, Section 6).\n",
        fmt_duration(closure_time),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "seconds in release, slow in debug; run with --ignored"]
    fn one_hop_retains_most_value() {
        let out = run(&Opts::default());
        assert!(out.contains("worst value ratio"));
    }
}

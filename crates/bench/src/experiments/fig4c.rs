//! Figure 4c — coverage quality of all competitors on YC (Independent),
//! `k ∈ {0.1n, 0.3n, ..., 0.9n}`.
//!
//! Expected shape: Greedy on top; TopK-C and TopK-W lag (they ignore,
//! respectively, cover overlaps and alternatives); Random (best of 10)
//! far below.

use pcover_core::{SolverConfig, Variant};
use pcover_datagen::profiles::{DatasetProfile, Scale};

use crate::util::{adapted_profile, solve_named, Table};
use crate::Opts;

/// Runs the four-way coverage comparison.
pub fn run(opts: &Opts) -> String {
    let scale = if opts.full {
        Scale::Full
    } else {
        Scale::Fraction(0.05)
    };
    let adapted = adapted_profile(DatasetProfile::YC, scale, Variant::Independent, opts.seed);
    let g = &adapted.graph;
    let n = g.node_count();

    let mut t = Table::new([
        "k/n",
        "k",
        "Greedy",
        "TopK-C",
        "TopK-W",
        "Random(best of 10)",
    ]);
    let config = SolverConfig {
        seed: opts.seed,
        ..SolverConfig::default()
    };
    let mut greedy_always_on_top = true;
    for tenth in [1usize, 3, 5, 7, 9] {
        let k = (n * tenth / 10).max(1);
        let gr = solve_named("lazy", Variant::Independent, g, k, config);
        let tc = solve_named("topk-c", Variant::Independent, g, k, config);
        let tw = solve_named("topk-w", Variant::Independent, g, k, config);
        let rnd = solve_named("random", Variant::Independent, g, k, config);
        greedy_always_on_top &= gr.cover >= tc.cover - 1e-9
            && gr.cover >= tw.cover - 1e-9
            && gr.cover >= rnd.cover - 1e-9;
        t.row([
            format!("{}%", tenth * 10),
            k.to_string(),
            format!("{:.4}", gr.cover),
            format!("{:.4}", tc.cover),
            format!("{:.4}", tw.cover),
            format!("{:.4}", rnd.cover),
        ]);
    }

    let mut out = format!(
        "## Figure 4c — coverage quality of all competitors (YC-profile, n = {n}, Independent)\n\n"
    );
    out.push_str(&t.render());
    out.push_str(&format!(
        "\ngreedy on top at every k: {greedy_always_on_top} (paper: \"Greedy is the top \
         performing algorithm, while TopK-W and TopK-C lag behind\")\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_tops_every_row() {
        let opts = Opts {
            seed: 3,
            ..Opts::default()
        };
        let out = run(&opts);
        assert!(out.contains("greedy on top at every k: true"), "{out}");
    }
}

//! One module per table/figure of the paper.

pub mod ablation;
pub mod fig3;
pub mod fig4a;
pub mod fig4b;
pub mod fig4c;
pub mod fig4d;
pub mod fig4e;
pub mod fig4f;
pub mod mccm;
pub mod table1;
pub mod table2;
pub mod variantfit;

use crate::Opts;

/// All experiment ids, in paper order.
pub const ALL: &[&str] = &[
    "table1",
    "table2",
    "fig3",
    "fig4a",
    "fig4b",
    "fig4c",
    "fig4d",
    "fig4e",
    "fig4f",
    "ablation",
    "mccm",
    "variantfit",
];

/// Runs one experiment by id, returning its report text.
pub fn run(id: &str, opts: &Opts) -> Option<String> {
    let report = match id {
        "table1" => table1::run(opts),
        "table2" => table2::run(opts),
        "fig3" => fig3::run(opts),
        "fig4a" => fig4a::run(opts),
        "fig4b" => fig4b::run(opts),
        "fig4c" => fig4c::run(opts),
        "fig4d" => fig4d::run(opts),
        "fig4e" => fig4e::run(opts),
        "fig4f" => fig4f::run(opts),
        "ablation" => ablation::run(opts),
        "mccm" => mccm::run(opts),
        "variantfit" => variantfit::run(opts),
        _ => return None,
    };
    if let Some(dir) = &opts.out_dir {
        std::fs::create_dir_all(dir).expect("create out dir");
        std::fs::write(dir.join(format!("{id}.md")), &report).expect("write report");
    }
    Some(report)
}

//! Figure 4d — scalability: solver runtime vs graph size.
//!
//! The paper runs Greedy on PE subsets of `n ∈ {10K, 100K, 500K, 1M}`
//! with `k = 5000` and reports near-linear growth. On this harness's
//! single core we use the lazy greedy (identical output quality, the
//! production configuration at this scale) and additionally run the plain
//! `O(nkD)` scan at the smallest size to show the gap that motivates lazy
//! evaluation.
//!
//! Default sweep: `{10K, 50K, 100K, 200K}` with `k = n / 200` to keep the
//! laptop run in seconds; `--full` uses the paper's exact sizes and
//! `k = 5000`.

use pcover_core::{SolverConfig, Variant};
use pcover_datagen::graphgen::{generate_graph, GraphGenConfig};

use crate::util::{fmt_duration, solve_named, timed, Table};
use crate::Opts;

/// Runs the size sweep.
pub fn run(opts: &Opts) -> String {
    let sizes: Vec<usize> = if opts.full {
        vec![10_000, 100_000, 500_000, 1_000_000]
    } else {
        vec![10_000, 50_000, 100_000, 200_000]
    };

    let mut t = Table::new([
        "n",
        "k",
        "edges",
        "gen time",
        "lazy greedy",
        "gain evals",
        "plain greedy",
    ]);
    let mut times: Vec<f64> = Vec::new();
    for &n in &sizes {
        let k = if opts.full { 5000 } else { (n / 200).max(1) };
        let (g, gen_time) = timed(|| {
            generate_graph(&GraphGenConfig {
                nodes: n,
                avg_out_degree: 5,
                seed: opts.seed,
                ..GraphGenConfig::default()
            })
            .expect("valid config")
        });
        let config = SolverConfig::default();
        let (lz, lazy_time) = timed(|| solve_named("lazy", Variant::Independent, &g, k, config));
        times.push(lazy_time.as_secs_f64());
        // The plain O(nkD) scan is only affordable at the smallest size.
        let plain_cell = if n == sizes[0] {
            let (pl, plain_time) =
                timed(|| solve_named("greedy", Variant::Independent, &g, k, config));
            assert!((pl.cover - lz.cover).abs() < 1e-9, "lazy must match plain");
            fmt_duration(plain_time)
        } else {
            "-".to_string()
        };
        t.row([
            n.to_string(),
            k.to_string(),
            g.edge_count().to_string(),
            fmt_duration(gen_time),
            fmt_duration(lazy_time),
            lz.gain_evaluations.to_string(),
            plain_cell,
        ]);
    }

    // Growth factor per size step vs the size ratio itself: near-linear
    // scaling keeps these comparable.
    let growth: Vec<String> = times
        .windows(2)
        .zip(sizes.windows(2))
        .map(|(tw, sw)| {
            format!(
                "n x{:.0} -> time x{:.1}",
                sw[1] as f64 / sw[0] as f64,
                tw[1] / tw[0].max(1e-9)
            )
        })
        .collect();

    let mut out =
        String::from("## Figure 4d — scalability of Greedy over graph size (PE-style graphs)\n\n");
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nscaling steps: {}\n(paper: near-linear runtime growth in n at fixed k; lazy greedy is\n\
         the deployed configuration at this scale — see the ablations bench for lazy-vs-plain)\n",
        growth.join("; ")
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "takes ~20s in debug builds; run with --ignored or --release"]
    fn sweep_runs_at_default_scale() {
        let out = run(&Opts::default());
        assert!(out.contains("scaling steps"));
        assert_eq!(out.lines().filter(|l| l.starts_with('|')).count(), 6);
    }
}

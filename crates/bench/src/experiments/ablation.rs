//! Ablation — the solver family side by side.
//!
//! Not a figure from the paper: this quantifies the design choices
//! DESIGN.md calls out (lazy evaluation, sampling, streaming selection,
//! local-search refinement) on one mid-size instance, reporting cover,
//! work and wall time relative to the paper's plain greedy.
//!
//! The sweep iterates [`Registry::builtin`] rather than naming solvers, so
//! a newly registered solver shows up in this table automatically; entries
//! that cannot run at this scale or under this variant are listed as
//! skipped with the reason.

use pcover_core::{Registry, SolveCtx, SolverConfig, Variant};
use pcover_datagen::graphgen::{generate_graph, GraphGenConfig};

use crate::util::{fmt_duration, timed, Table};
use crate::Opts;

/// Runs the algorithm comparison.
pub fn run(opts: &Opts) -> String {
    let (n, k) = if opts.full {
        (100_000, 2000)
    } else {
        (20_000, 400)
    };
    let g = generate_graph(&GraphGenConfig {
        nodes: n,
        avg_out_degree: 5,
        seed: opts.seed,
        ..GraphGenConfig::default()
    })
    .expect("valid config");

    let variant = Variant::Independent;
    let config = SolverConfig {
        seed: opts.seed,
        max_swaps: 16,
        ..SolverConfig::default()
    };
    let registry = Registry::builtin();

    // Plain greedy is the paper's reference point for every row.
    let (plain, plain_time) = timed(|| {
        registry
            .get("greedy")
            .expect("greedy is built in")
            .solve(variant, &g, k, &mut SolveCtx::new(config))
            .expect("valid k")
    });

    let mut t = Table::new(["algorithm", "cover", "vs plain", "gain evals", "time"]);
    let mut skipped: Vec<String> = Vec::new();
    for spec in registry.specs() {
        if !spec.caps.variants.supports(variant) {
            skipped.push(format!(
                "{} (does not support {})",
                spec.name,
                variant.name()
            ));
            continue;
        }
        if spec.caps.exact {
            skipped.push(format!(
                "{} (exact search, infeasible at n = {n})",
                spec.name
            ));
            continue;
        }
        let (report, time) = if spec.name == "greedy" {
            (plain.clone(), plain_time)
        } else {
            timed(|| {
                spec.solve(variant, &g, k, &mut SolveCtx::new(config))
                    .expect("valid k")
            })
        };
        t.row([
            spec.name.to_string(),
            format!("{:.4}", report.cover),
            format!(
                "{:+.3}%",
                100.0 * (report.cover - plain.cover) / plain.cover
            ),
            report.gain_evaluations.to_string(),
            fmt_duration(time),
        ]);
    }

    let mut out = format!("## Ablation — solver family (n = {n}, k = {k}, Independent)\n\n");
    out.push_str(&t.render());
    if !skipped.is_empty() {
        out.push_str(&format!("\nskipped: {}\n", skipped.join("; ")));
    }
    out.push_str(
        "\nlazy/parallel/partitioned must match plain's cover exactly; stochastic trades a\n\
         bounded expected loss for k-independent work; sieve pays ~half the cover for a single\n\
         pass; local search refines lazy's output by best-improvement swaps (16 max here).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "seconds in release, minutes in debug; run with --ignored"]
    fn ablation_runs() {
        let out = run(&Opts::default());
        assert!(out.contains("lazy"));
        assert!(out.contains("skipped: "));
    }
}

//! Ablation — the solver family side by side.
//!
//! Not a figure from the paper: this quantifies the design choices
//! DESIGN.md calls out (lazy evaluation, sampling, streaming selection,
//! local-search refinement) on one mid-size instance, reporting cover,
//! work and wall time relative to the paper's plain greedy.

use pcover_core::{
    baselines, greedy, lazy, local_search, parallel, stochastic, streaming, Independent,
};
use pcover_datagen::graphgen::{generate_graph, GraphGenConfig};

use crate::util::{fmt_duration, timed, Table};
use crate::Opts;

/// Runs the algorithm comparison.
pub fn run(opts: &Opts) -> String {
    let (n, k) = if opts.full {
        (100_000, 2000)
    } else {
        (20_000, 400)
    };
    let g = generate_graph(&GraphGenConfig {
        nodes: n,
        avg_out_degree: 5,
        seed: opts.seed,
        ..GraphGenConfig::default()
    })
    .expect("valid config");

    let mut t = Table::new(["algorithm", "cover", "vs plain", "gain evals", "time"]);
    let (plain, plain_time) = timed(|| greedy::solve::<Independent>(&g, k).expect("valid k"));
    let mut push = |name: &str, cover: f64, evals: u64, time: std::time::Duration| {
        t.row([
            name.to_string(),
            format!("{cover:.4}"),
            format!("{:+.3}%", 100.0 * (cover - plain.cover) / plain.cover),
            evals.to_string(),
            fmt_duration(time),
        ]);
    };
    push(
        "Greedy (plain, paper)",
        plain.cover,
        plain.gain_evaluations,
        plain_time,
    );

    let (lz, time) = timed(|| lazy::solve::<Independent>(&g, k).expect("valid k"));
    push("Greedy (lazy)", lz.cover, lz.gain_evaluations, time);

    let ((par, _), time) = timed(|| parallel::solve::<Independent>(&g, k, 4).expect("valid k"));
    push(
        "Greedy (parallel x4)",
        par.cover,
        par.gain_evaluations,
        time,
    );

    let (part, time) =
        timed(|| pcover_core::partitioned::solve::<Independent>(&g, k).expect("valid k"));
    push(
        "Greedy (component-partitioned)",
        part.cover,
        part.gain_evaluations,
        time,
    );

    let (st, time) = timed(|| {
        stochastic::solve::<Independent>(
            &g,
            k,
            &stochastic::StochasticOptions {
                epsilon: 0.05,
                seed: opts.seed,
            },
        )
        .expect("valid k")
    });
    push(
        "Stochastic greedy (eps=0.05)",
        st.cover,
        st.gain_evaluations,
        time,
    );

    let (sv, time) = timed(|| {
        streaming::solve::<Independent>(&g, k, &streaming::SieveOptions { epsilon: 0.1 })
            .expect("valid k")
    });
    push(
        "Sieve-streaming (eps=0.1, one pass)",
        sv.cover,
        sv.gain_evaluations,
        time,
    );

    let (tw, time) = timed(|| baselines::top_k_weight::<Independent>(&g, k).expect("valid k"));
    push("TopK-W", tw.cover, tw.gain_evaluations, time);

    // Local search refining TopK-W (refining greedy rarely moves).
    let (ls, time) = timed(|| {
        local_search::refine::<Independent>(
            &g,
            &tw.order,
            &local_search::LocalSearchOptions {
                max_swaps: 16,
                ..Default::default()
            },
        )
        .expect("valid initial")
    });
    push(
        "TopK-W + local search (16 swaps)",
        ls.report.cover,
        ls.report.gain_evaluations,
        time,
    );

    let mut out = format!("## Ablation — solver family (n = {n}, k = {k}, Independent)\n\n");
    out.push_str(&t.render());
    out.push_str(
        "\nlazy/parallel/partitioned must match plain's cover exactly; stochastic trades a\n\
         bounded expected loss for k-independent work; sieve pays ~half the cover for a single\n\
         pass; local search recovers part of a weak baseline's gap at high evaluation cost.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "seconds in release, minutes in debug; run with --ignored"]
    fn ablation_runs() {
        let out = run(&Opts::default());
        assert!(out.contains("Greedy (lazy)"));
    }
}

//! # pcover-bench
//!
//! The experiment harness: one module per table/figure of the paper's
//! evaluation (Section 5.4), each regenerating the corresponding result on
//! synthetic data. The `experiments` binary dispatches them:
//!
//! ```text
//! cargo run --release -p pcover-bench --bin experiments -- all
//! cargo run --release -p pcover-bench --bin experiments -- fig4c --seed 7
//! cargo run --release -p pcover-bench --bin experiments -- fig4d --full
//! ```
//!
//! Each experiment prints a human-readable table and, when `--out DIR` is
//! given, writes the same content as a markdown fragment for inclusion in
//! EXPERIMENTS.md.
//!
//! Scale notes: defaults are sized for a laptop-class single-core machine
//! (seconds to a few minutes per experiment); `--full` switches to
//! paper-scale parameters where feasible (Figure 4d goes to 1M nodes;
//! Table 2 generates the full multi-million-session clickstreams, which
//! takes tens of minutes and several GB of RAM).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::path::PathBuf;

pub mod experiments;
pub mod util;

/// Options shared by all experiments.
#[derive(Clone, Debug)]
pub struct Opts {
    /// Run at paper scale instead of laptop scale.
    pub full: bool,
    /// Master seed; every experiment derives sub-seeds deterministically.
    pub seed: u64,
    /// If set, write each experiment's markdown fragment to
    /// `<out>/<id>.md`.
    pub out_dir: Option<PathBuf>,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            full: false,
            seed: 42,
            out_dir: None,
        }
    }
}

//! Shared helpers for the experiment modules.

use std::time::{Duration, Instant};

use pcover_adapt::{adapt, AdaptOptions, Adapted};
use pcover_core::{Registry, SolveCtx, SolveReport, SolverConfig, Variant};
use pcover_datagen::profiles::{DatasetProfile, Scale};
use pcover_datagen::sessions::generate_clickstream;
use pcover_graph::PreferenceGraph;

/// A simple fixed-width markdown-ish table builder.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders as a markdown table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            format!("| {} |\n", padded.join(" | "))
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let dashes: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
        out.push_str(&format!("|-{}-|\n", dashes.join("-|-")));
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        let _ = ncols;
        out
    }
}

/// Runs a built-in registry solver by CLI name. The experiment harness
/// routes through the registry so a solver rename or removal fails loudly
/// here instead of silently dropping out of the sweeps.
pub fn solve_named(
    name: &str,
    variant: Variant,
    g: &PreferenceGraph,
    k: usize,
    config: SolverConfig,
) -> SolveReport {
    let registry = Registry::builtin();
    let spec = registry
        .get(name)
        .unwrap_or_else(|| panic!("solver {name:?} not in the registry"));
    spec.solve(variant, g, k, &mut SolveCtx::new(config))
        .unwrap_or_else(|e| panic!("{name} failed: {e}"))
}

/// Times a closure, returning its result and the elapsed wall time.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed())
}

/// Formats a duration with sensible units.
pub fn fmt_duration(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs < 0.001 {
        format!("{:.1}us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2}ms", secs * 1e3)
    } else if secs < 120.0 {
        format!("{secs:.2}s")
    } else {
        format!("{:.1}min", secs / 60.0)
    }
}

/// Generates a profile's clickstream and adapts it in one step.
pub fn adapted_profile(
    profile: DatasetProfile,
    scale: Scale,
    variant: Variant,
    seed: u64,
) -> Adapted {
    let (catalog_cfg, session_cfg) = profile.configs(scale, seed);
    let (_, sessions) = generate_clickstream(&catalog_cfg, &session_cfg);
    adapt(
        &sessions,
        &AdaptOptions {
            variant,
            label_nodes: false,
            min_edge_support: 1,
        },
    )
    .expect("generated clickstreams are nonempty")
}

/// The small brute-force-solvable instance of Figures 4a/4b: a YC-profile
/// clickstream adapted to a graph, reduced to its `n` most-purchased items
/// (the paper reduces the YC dataset to 30 products).
pub fn small_yc_instance(n: usize, seed: u64) -> pcover_graph::PreferenceGraph {
    let adapted = adapted_profile(
        DatasetProfile::YC,
        Scale::Fraction(0.01),
        Variant::Normalized,
        seed,
    );
    pcover_graph::transform::top_n_by_weight(&adapted.graph, n)
        .expect("graph has more than n nodes")
        .graph
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_markdown() {
        let mut t = Table::new(["name", "value"]);
        t.row(["alpha", "1"]);
        t.row(["b", "10000"]);
        let r = t.render();
        assert!(r.contains("name") && r.contains("10000"));
        assert!(r.lines().count() == 4);
        // All lines equal width.
        let widths: Vec<usize> = r.lines().map(|l| l.len()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_micros(500)), "500.0us");
        assert_eq!(fmt_duration(Duration::from_millis(25)), "25.00ms");
        assert_eq!(fmt_duration(Duration::from_secs(3)), "3.00s");
        assert_eq!(fmt_duration(Duration::from_secs(600)), "10.0min");
    }

    #[test]
    fn adapted_profile_smoke() {
        let a = adapted_profile(
            DatasetProfile::YC,
            Scale::Fraction(0.002),
            Variant::Independent,
            1,
        );
        assert!(a.graph.node_count() > 10);
        assert!(a.graph.edge_count() > 0);
    }
}

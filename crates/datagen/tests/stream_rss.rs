//! Process-level peak-memory bound for the streaming container generator.
//!
//! This file holds exactly one test so the process's high-water mark
//! (`VmHWM`) reflects the streaming path alone: generating a million-node
//! container must stay within a budget far below what materializing the
//! graph plus its JSON text would need (~48 bytes/edge of CSR twice over,
//! plus hundreds of MB of serialized text).

#![cfg(target_os = "linux")]

use pcover_datagen::graphgen::{generate_graph_container, GraphGenConfig};

/// Reads the process peak resident set size in bytes from
/// `/proc/self/status` (`VmHWM` line, reported in kB).
fn peak_rss_bytes() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").expect("read /proc/self/status");
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .expect("parse VmHWM");
            return kb * 1024;
        }
    }
    panic!("VmHWM not found in /proc/self/status");
}

#[test]
fn million_node_generation_is_memory_bounded() {
    let dir = std::env::temp_dir().join(format!("pcover-stream-rss-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("million.pcov");

    let cfg = GraphGenConfig {
        nodes: 1_000_000,
        avg_out_degree: 4,
        seed: 9,
        ..GraphGenConfig::default()
    };
    let summary = generate_graph_container(&cfg, &path).expect("stream container");
    assert_eq!(summary.nodes, 1_000_000);
    assert!(summary.edges > 3_000_000, "edges {}", summary.edges);
    assert_eq!(
        summary.bytes,
        std::fs::metadata(&path).expect("metadata").len()
    );
    std::fs::remove_file(&path).ok();
    std::fs::remove_dir(&dir).ok();

    // Streaming state is ~16 bytes/node + ~12 bytes/edge (~65 MB here).
    // 256 MB leaves headroom for allocator slack and the test harness while
    // still ruling out any path that holds the owned graph (~130 MB) plus
    // its JSON text (~350 MB) in memory.
    let peak = peak_rss_bytes();
    assert!(
        peak < 256 * 1024 * 1024,
        "peak RSS {} MB exceeds the streaming budget",
        peak / (1024 * 1024)
    );
}

//! Direct preference-graph generation for scalability experiments.
//!
//! Figure 4d sweeps the solver over graphs of up to a million nodes;
//! materializing tens of millions of sessions just to adapt them back into
//! a graph would dominate the experiment (the paper likewise excludes graph
//! construction from its timings, treating it as an offline phase). This
//! generator produces preference graphs with the same structural profile
//! the adaptation pipeline yields — Zipf node weights, category-local edges
//! with distance-decaying weights — directly in `O(n · degree)`.

// lint: allow-file(no-index) — generators index catalogs/weight tables with values drawn in
// 0..len by the seeded RNG, in bounds by construction.
use std::path::Path;

use rand::{RngExt, SeedableRng};

use pcover_graph::{GraphBuilder, GraphError, ItemId, PreferenceGraph, WEIGHT_EPSILON};
use pcover_store::{StoreError, StreamingWriter, VariantHint, WriteOptions, WriteSummary};

use crate::sampling::zipf_weights;

/// Configuration for [`generate_graph`].
#[derive(Clone, Copy, Debug)]
pub struct GraphGenConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Target mean out-degree (actual degree varies per node in
    /// `0..=2 * avg_out_degree`).
    pub avg_out_degree: usize,
    /// Zipf exponent of node weights.
    pub popularity_exponent: f64,
    /// Neighborhood radius: edges connect ids within this catalog distance
    /// (category locality).
    pub locality: usize,
    /// Enforce the Normalized invariant by rescaling each node's out-weights
    /// to sum to at most 1.
    pub normalized: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GraphGenConfig {
    fn default() -> Self {
        GraphGenConfig {
            nodes: 10_000,
            avg_out_degree: 5,
            popularity_exponent: 1.0,
            locality: 8,
            normalized: false,
            seed: 0,
        }
    }
}

/// Generates a preference graph per the config.
///
/// Node weights are a Zipf distribution assigned through a pseudo-random
/// permutation (so heavy nodes spread across the id space). Each node draws
/// a degree uniform in `0..=2 · avg_out_degree` and connects to distinct
/// neighbors within `locality`, with edge weight `0.9 / (1 + distance)`
/// jittered by ±20%.
pub fn generate_graph(config: &GraphGenConfig) -> Result<PreferenceGraph, GraphError> {
    assert!(config.nodes > 0, "graph needs at least one node");
    assert!(config.locality >= 1, "locality must be at least 1");
    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
    let n = config.nodes;

    let ranked = zipf_weights(n, config.popularity_exponent);
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        perm.swap(i, j);
    }

    let mut b =
        GraphBuilder::with_capacity(n, n * config.avg_out_degree).normalize_node_weights(true);
    for i in 0..n {
        b.add_node(ranked[perm[i]]);
    }

    let mut targets: Vec<ItemId> = Vec::with_capacity(2 * config.avg_out_degree);
    let mut weights: Vec<f64> = Vec::with_capacity(2 * config.avg_out_degree);
    for v in 0..n {
        targets.clear();
        weights.clear();
        let degree = rng.random_range(0..=2 * config.avg_out_degree);
        let mut attempts = 0;
        while targets.len() < degree && attempts < 4 * degree + 8 {
            attempts += 1;
            let offset = rng.random_range(1..=config.locality) as i64;
            let sign = if rng.random::<bool>() { 1 } else { -1 };
            let u = v as i64 + sign * offset;
            if u < 0 || u >= n as i64 || u == v as i64 {
                continue;
            }
            let u = ItemId::from_index(u as usize);
            if targets.contains(&u) {
                continue;
            }
            let dist = offset as f64;
            let jitter = 0.8 + 0.4 * rng.random::<f64>();
            let w = (0.9 / (1.0 + dist) * jitter).clamp(0.01, 1.0);
            targets.push(u);
            weights.push(w);
        }
        if config.normalized {
            let sum: f64 = weights.iter().sum();
            if sum > 1.0 {
                for w in &mut weights {
                    *w /= sum;
                }
            }
        }
        let src = ItemId::from_index(v);
        for (u, w) in targets.iter().zip(&weights) {
            b.add_edge(src, *u, *w)?;
        }
    }

    if config.normalized {
        b.build_normalized()
    } else {
        b.build()
    }
}

/// Generates the same graph as [`generate_graph`] but streams it straight
/// into an on-disk `.pcov` container, never materializing the edge list
/// (peak memory is `O(n + m)` *bytes of CSR state*, not graph + JSON text).
///
/// The output is **bit-identical** to
/// `pcover_store::write_graph(&generate_graph(config)?, path, ..)`: this
/// function replays the exact RNG draw sequence and normalization order of
/// [`generate_graph`], and sorts each out-row by target just as
/// `GraphBuilder::build` does. The two functions must stay in lockstep —
/// `container_matches_in_memory_build` in this module's tests pins the
/// equivalence.
///
/// The container's variant hint is stamped `Normalized` or `Independent`
/// per `config.normalized`.
///
/// # Errors
///
/// IO failures and writer-contract violations as [`StoreError`]s.
pub fn generate_graph_container(
    config: &GraphGenConfig,
    path: &Path,
) -> Result<WriteSummary, StoreError> {
    assert!(config.nodes > 0, "graph needs at least one node");
    assert!(config.locality >= 1, "locality must be at least 1");
    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
    let n = config.nodes;

    // Node weights: identical draws and identical normalization order to
    // generate_graph + GraphBuilder (naive left-to-right sum, then divide).
    let ranked = zipf_weights(n, config.popularity_exponent);
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        perm.swap(i, j);
    }
    let mut node_weights: Vec<f64> = perm.iter().map(|&p| ranked[p]).collect();
    drop(perm);
    drop(ranked);
    let sum: f64 = node_weights.iter().sum();
    if sum > 0.0 {
        for w in &mut node_weights {
            *w /= sum;
        }
    }

    let options = WriteOptions {
        variant: if config.normalized {
            VariantHint::Normalized
        } else {
            VariantHint::Independent
        },
    };
    let mut writer = StreamingWriter::create(path, node_weights, options)?;

    let mut row: Vec<(u32, f64)> = Vec::with_capacity(2 * config.avg_out_degree);
    for v in 0..n {
        row.clear();
        let degree = rng.random_range(0..=2 * config.avg_out_degree);
        let mut attempts = 0;
        while row.len() < degree && attempts < 4 * degree + 8 {
            attempts += 1;
            let offset = rng.random_range(1..=config.locality) as i64;
            let sign = if rng.random::<bool>() { 1 } else { -1 };
            let u = v as i64 + sign * offset;
            if u < 0 || u >= n as i64 || u == v as i64 {
                continue;
            }
            let u = u as u32;
            if row.iter().any(|&(t, _)| t == u) {
                continue;
            }
            let dist = offset as f64;
            let jitter = 0.8 + 0.4 * rng.random::<f64>();
            let w = (0.9 / (1.0 + dist) * jitter).clamp(0.01, 1.0);
            row.push((u, w));
        }
        if config.normalized {
            // Sum in generation order, exactly like generate_graph.
            let sum: f64 = row.iter().map(|&(_, w)| w).sum();
            if sum > 1.0 {
                for (_, w) in &mut row {
                    *w /= sum;
                }
            }
            let rescaled: f64 = row.iter().map(|&(_, w)| w).sum();
            if rescaled > 1.0 + WEIGHT_EPSILON {
                return Err(StoreError::WriterContract {
                    message: format!("node {v} out-weights sum to {rescaled} > 1"),
                });
            }
        }
        // GraphBuilder sorts the edge list by (source, target); rows are
        // already emitted in source order, so sorting by target matches.
        row.sort_unstable_by_key(|&(t, _)| t);
        writer.append_row(&row)?;
    }
    writer.finish()
}

#[cfg(test)]
mod tests {
    use pcover_graph::GraphStats;

    use super::*;

    #[test]
    fn respects_node_count_and_degree_target() {
        let g = generate_graph(&GraphGenConfig {
            nodes: 5000,
            avg_out_degree: 5,
            ..GraphGenConfig::default()
        })
        .unwrap();
        assert_eq!(g.node_count(), 5000);
        let stats = GraphStats::compute(&g);
        assert!(
            (stats.avg_out_degree - 5.0).abs() < 1.0,
            "avg degree {}",
            stats.avg_out_degree
        );
        assert!((stats.node_weight_sum - 1.0).abs() < 1e-6);
    }

    #[test]
    fn normalized_mode_bounds_out_sums() {
        let g = generate_graph(&GraphGenConfig {
            nodes: 2000,
            normalized: true,
            ..GraphGenConfig::default()
        })
        .unwrap();
        for v in g.node_ids() {
            assert!(g.out_weight_sum(v) <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn edges_respect_locality() {
        let g = generate_graph(&GraphGenConfig {
            nodes: 1000,
            locality: 8,
            ..GraphGenConfig::default()
        })
        .unwrap();
        for e in g.edges() {
            assert!(e.source.raw().abs_diff(e.target.raw()) <= 8);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = GraphGenConfig {
            nodes: 500,
            seed: 9,
            ..GraphGenConfig::default()
        };
        assert_eq!(generate_graph(&cfg).unwrap(), generate_graph(&cfg).unwrap());
        let other = GraphGenConfig { seed: 10, ..cfg };
        assert_ne!(
            generate_graph(&cfg).unwrap(),
            generate_graph(&other).unwrap()
        );
    }

    #[test]
    fn zipf_head_is_heavy() {
        let g = generate_graph(&GraphGenConfig {
            nodes: 1000,
            ..GraphGenConfig::default()
        })
        .unwrap();
        let mut weights: Vec<f64> = g.node_weights().to_vec();
        weights.sort_by(|a, b| b.partial_cmp(a).unwrap());
        // Top 1% of items carry a large share of demand.
        let head: f64 = weights[..10].iter().sum();
        assert!(head > 0.2, "head share {head}");
    }

    #[test]
    fn container_matches_in_memory_build() {
        // The streaming generator must produce byte-identical containers to
        // the build-then-write path, for both variants.
        let dir = std::env::temp_dir().join(format!("pcover-graphgen-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for normalized in [false, true] {
            let cfg = GraphGenConfig {
                nodes: 3000,
                normalized,
                seed: 42,
                ..GraphGenConfig::default()
            };
            let streamed = dir.join(format!("streamed-{normalized}.pcov"));
            let summary = generate_graph_container(&cfg, &streamed).unwrap();

            let g = generate_graph(&cfg).unwrap();
            assert_eq!(summary.nodes as usize, g.node_count());
            assert_eq!(summary.edges as usize, g.edge_count());

            let whole = dir.join(format!("whole-{normalized}.pcov"));
            let options = WriteOptions {
                variant: if normalized {
                    VariantHint::Normalized
                } else {
                    VariantHint::Independent
                },
            };
            pcover_store::write_graph(&g, &whole, options).unwrap();
            assert_eq!(
                std::fs::read(&streamed).unwrap(),
                std::fs::read(&whole).unwrap(),
                "streamed container differs from in-memory build (normalized = {normalized})"
            );
            std::fs::remove_file(&streamed).ok();
            std::fs::remove_file(&whole).ok();
        }
    }

    #[test]
    fn single_node_graph_works() {
        let g = generate_graph(&GraphGenConfig {
            nodes: 1,
            ..GraphGenConfig::default()
        })
        .unwrap();
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }
}

//! # pcover-datagen
//!
//! Synthetic data generation for the Preference Cover system.
//!
//! The paper evaluates on three private eBay clickstreams (PE/PF/PM, 27M
//! sessions over 5M items) and the public YooChoose dataset (YC). The
//! private data is unavailable by construction and the public files cannot
//! be redistributed, so this crate generates synthetic datasets that
//! reproduce the *structural* properties every algorithm in the system
//! actually consumes:
//!
//! * **Skewed popularity** — item purchase frequencies follow a Zipf law,
//!   sampled in `O(1)` per draw via Walker's alias method ([`sampling`]).
//! * **Category-local substitution** — items live in categories
//!   ([`catalog`]); consumers consider same-category items as alternatives
//!   with affinity decaying in catalog distance.
//! * **Variant-specific click behavior** ([`behavior`]) — an
//!   `IndependentClicks` mode where each candidate alternative is clicked
//!   independently (fits `IPC_k`, like PE/PF/YC), and a `SingleAlternative`
//!   mode where at most one alternative is (almost always) clicked (fits
//!   `NPC_k`, like PM).
//! * **Paper-scale profiles** ([`profiles`]) — session/item counts matching
//!   Table 2, downscalable for laptop runs.
//!
//! For the scalability experiments that need graphs with millions of nodes
//! directly, [`graphgen`] generates preference graphs without materializing
//! sessions.
//!
//! Everything is deterministic under an explicit `u64` seed.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod behavior;
pub mod catalog;
pub mod graphgen;
pub mod profiles;
pub mod sampling;
pub mod sessions;

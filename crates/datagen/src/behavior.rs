//! Consumer click-behavior models.
//!
//! Section 5.2 of the paper identifies two dependency regimes in real
//! clickstreams, one per problem variant. These models synthesize sessions
//! in each regime so the adaptation diagnostics (the ≥90% single-alternative
//! rule and the <0.1 mutual-information rule) classify the generated data
//! the same way the paper classifies PE/PF/YC (Independent) and PM
//! (Normalized).

// lint: allow-file(no-index) — generators index catalogs/weight tables with values drawn in
// 0..len by the seeded RNG, in bounds by construction.
use rand::{Rng, RngExt};

use crate::sampling::AliasTable;

/// How a simulated consumer clicks alternatives before purchasing.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BehaviorModel {
    /// Each candidate substitute is clicked **independently** with
    /// probability `base_click_prob · affinity` — the regime of the PE, PF
    /// and YC datasets.
    IndependentClicks {
        /// Scales affinities into click probabilities; `0.0..=1.0`.
        base_click_prob: f64,
    },
    /// At most one alternative is (almost always) clicked: with probability
    /// `alt_prob` one substitute is drawn by affinity; independently, with
    /// probability `second_alt_prob` a second distinct one is added. Keeps
    /// the ≤1-alternative fraction at `1 − alt_prob · second_alt_prob`
    /// (≥ 90% for the defaults) — the regime of the PM dataset.
    SingleAlternative {
        /// Probability the session considers any alternative at all.
        alt_prob: f64,
        /// Probability a considered session clicks a second alternative.
        second_alt_prob: f64,
    },
}

impl BehaviorModel {
    /// The paper-like Independent default.
    pub fn independent_default() -> Self {
        BehaviorModel::IndependentClicks {
            base_click_prob: 0.6,
        }
    }

    /// The paper-like Normalized (PM) default: 85% of sessions consider one
    /// alternative, 8% of those add a second → ~93.2% of sessions have ≤1
    /// (above the paper's 90% rule), while keeping enough alternative
    /// clicks to approach Table 2's PM edge density.
    pub fn single_alternative_default() -> Self {
        BehaviorModel::SingleAlternative {
            alt_prob: 0.85,
            second_alt_prob: 0.08,
        }
    }

    /// Draws the set of clicked alternatives for one session, given the
    /// desired item's substitute candidates `(item, affinity)`.
    pub fn draw_alternatives<R: Rng + ?Sized>(
        &self,
        substitutes: &[(u64, f64)],
        rng: &mut R,
    ) -> Vec<u64> {
        if substitutes.is_empty() {
            return Vec::new();
        }
        match *self {
            BehaviorModel::IndependentClicks { base_click_prob } => substitutes
                .iter()
                .filter(|&&(_, aff)| rng.random::<f64>() < base_click_prob * aff)
                .map(|&(j, _)| j)
                .collect(),
            BehaviorModel::SingleAlternative {
                alt_prob,
                second_alt_prob,
            } => {
                let mut clicked = Vec::new();
                if rng.random::<f64>() < alt_prob {
                    let weights: Vec<f64> = substitutes.iter().map(|&(_, a)| a).collect();
                    let table = AliasTable::new(&weights);
                    let first = substitutes[table.sample(rng)].0;
                    clicked.push(first);
                    if substitutes.len() > 1 && rng.random::<f64>() < second_alt_prob {
                        // Rejection-sample a distinct second alternative.
                        loop {
                            let second = substitutes[table.sample(rng)].0;
                            if second != first {
                                clicked.push(second);
                                break;
                            }
                        }
                    }
                }
                clicked
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use rand::SeedableRng;

    use super::*;

    fn subs() -> Vec<(u64, f64)> {
        vec![(1, 1.0), (2, 0.5), (3, 0.33), (4, 0.25)]
    }

    #[test]
    fn independent_click_rates_scale_with_affinity() {
        let model = BehaviorModel::IndependentClicks {
            base_click_prob: 0.5,
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let trials = 100_000;
        let mut counts = [0usize; 5];
        for _ in 0..trials {
            for j in model.draw_alternatives(&subs(), &mut rng) {
                counts[j as usize] += 1;
            }
        }
        // Expected click rates: 0.5, 0.25, 0.165, 0.125.
        for (j, expected) in [(1usize, 0.5), (2, 0.25), (3, 0.165), (4, 0.125)] {
            let rate = counts[j] as f64 / trials as f64;
            assert!(
                (rate - expected).abs() < 0.01,
                "item {j}: rate {rate} vs expected {expected}"
            );
        }
    }

    #[test]
    fn single_alternative_rarely_clicks_two() {
        let model = BehaviorModel::single_alternative_default();
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let trials = 50_000;
        let mut at_most_one = 0usize;
        let mut more_than_two = 0usize;
        for _ in 0..trials {
            let alts = model.draw_alternatives(&subs(), &mut rng);
            if alts.len() <= 1 {
                at_most_one += 1;
            }
            if alts.len() > 2 {
                more_than_two += 1;
            }
        }
        let fraction = at_most_one as f64 / trials as f64;
        // The paper's rule for the Normalized variant: >= 90%.
        assert!(fraction >= 0.90, "only {fraction} of sessions had <= 1 alt");
        assert_eq!(more_than_two, 0);
    }

    #[test]
    fn no_substitutes_means_no_clicks() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for model in [
            BehaviorModel::independent_default(),
            BehaviorModel::single_alternative_default(),
        ] {
            assert!(model.draw_alternatives(&[], &mut rng).is_empty());
        }
    }

    #[test]
    fn single_substitute_never_duplicated() {
        let model = BehaviorModel::SingleAlternative {
            alt_prob: 1.0,
            second_alt_prob: 1.0,
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let alts = model.draw_alternatives(&[(7, 1.0)], &mut rng);
            assert_eq!(alts, vec![7]);
        }
    }
}

//! Discrete sampling primitives: Zipf weight vectors and Walker's alias
//! method for `O(1)` draws from arbitrary discrete distributions.

// lint: allow-file(no-index) — generators index catalogs/weight tables with values drawn in
// 0..len by the seeded RNG, in bounds by construction.
use rand::{Rng, RngExt};

/// Unnormalized-then-normalized Zipf weights: `w_i ∝ 1 / (i + 1)^s`.
///
/// `s = 0` is uniform; `s ≈ 1` matches typical e-commerce purchase
/// popularity.
///
/// # Panics
///
/// Panics if `n == 0` or `s` is negative or non-finite.
pub fn zipf_weights(n: usize, s: f64) -> Vec<f64> {
    assert!(n > 0, "need at least one item");
    assert!(s.is_finite() && s >= 0.0, "exponent must be nonnegative");
    let mut w: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect();
    let sum: f64 = w.iter().sum();
    for x in &mut w {
        *x /= sum;
    }
    w
}

/// Walker's alias table: after `O(n)` preprocessing, samples an index from
/// a fixed discrete distribution in `O(1)` per draw.
///
/// The construction is the classic two-worklist ("small"/"large") algorithm
/// and is numerically robust to weights that do not sum exactly to 1.
#[derive(Clone, Debug)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds the table from nonnegative weights (not necessarily
    /// normalized).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// value, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "need at least one weight");
        let n = weights.len();
        assert!(n <= u32::MAX as usize, "too many weights");
        let sum: f64 = weights
            .iter()
            .map(|&w| {
                assert!(w.is_finite() && w >= 0.0, "weights must be nonnegative");
                w
            })
            .sum();
        assert!(sum > 0.0, "weights must not all be zero");

        // Scale so the mean weight is 1.
        let scale = n as f64 / sum;
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut alias: Vec<u32> = (0..n as u32).collect();

        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s as usize] = l;
            // Large donor gives away (1 - prob[s]) of its mass.
            prob[l as usize] -= 1.0 - prob[s as usize];
            if prob[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Leftovers (numerical dust) saturate to probability 1.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
        }

        AliasTable { prob, alias }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when the table has no entries (never: construction requires
    /// nonempty weights).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one index.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.random_range(0..self.prob.len());
        if rng.random::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use rand::SeedableRng;

    use super::*;

    #[test]
    fn zipf_weights_normalized_and_decreasing() {
        let w = zipf_weights(100, 1.0);
        assert_eq!(w.len(), 100);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for pair in w.windows(2) {
            assert!(pair[0] >= pair[1]);
        }
        // Head heaviness: first item carries ~1/H(100) ≈ 0.192.
        assert!(w[0] > 0.15 && w[0] < 0.25);
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let w = zipf_weights(10, 0.0);
        for &x in &w {
            assert!((x - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn zipf_rejects_empty() {
        zipf_weights(0, 1.0);
    }

    #[test]
    fn alias_table_matches_distribution() {
        let weights = [0.5, 0.3, 0.15, 0.05];
        let table = AliasTable::new(&weights);
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut counts = [0usize; 4];
        let draws = 200_000;
        for _ in 0..draws {
            counts[table.sample(&mut rng)] += 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            let freq = counts[i] as f64 / draws as f64;
            assert!(
                (freq - w).abs() < 0.01,
                "index {i}: frequency {freq} vs weight {w}"
            );
        }
    }

    #[test]
    fn alias_table_handles_unnormalized_and_zero_weights() {
        let table = AliasTable::new(&[0.0, 10.0, 0.0]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(table.sample(&mut rng), 1);
        }
    }

    #[test]
    fn alias_table_single_element() {
        let table = AliasTable::new(&[3.0]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        assert_eq!(table.sample(&mut rng), 0);
        assert_eq!(table.len(), 1);
        assert!(!table.is_empty());
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn alias_rejects_negative() {
        AliasTable::new(&[1.0, -0.5]);
    }

    #[test]
    #[should_panic(expected = "not all be zero")]
    fn alias_rejects_all_zero() {
        AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    fn alias_deterministic_under_seed() {
        let table = AliasTable::new(&zipf_weights(50, 1.0));
        let draw = |seed| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            (0..20).map(|_| table.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(5), draw(5));
    }
}

//! Session simulation: catalog + behavior model → synthetic clickstream.

// lint: allow-file(no-index) — generators index catalogs/weight tables with values drawn in
// 0..len by the seeded RNG, in bounds by construction.
use rand::SeedableRng;

use pcover_clickstream::{Clickstream, Session};

use crate::behavior::BehaviorModel;
use crate::catalog::{Catalog, CatalogConfig};
use crate::sampling::AliasTable;

/// Configuration for [`generate_clickstream`].
#[derive(Clone, Copy, Debug)]
pub struct SessionConfig {
    /// Number of sessions to generate (each ends in one purchase).
    pub sessions: usize,
    /// The click-behavior model.
    pub behavior: BehaviorModel,
    /// RNG seed; same seed + config → identical clickstream.
    pub seed: u64,
}

/// Generates a synthetic clickstream over a fresh catalog.
///
/// Each session draws a desired item from the catalog's Zipf popularity,
/// clicks it, clicks behavior-model-driven alternatives from its category,
/// and purchases the desired item. This is exactly the process the paper's
/// graph construction inverts (Section 5.2): popular items get heavy nodes,
/// frequently co-clicked substitutes get heavy edges.
///
/// Returns the catalog too, so tests can compare recovered edge weights
/// against the generating affinities.
pub fn generate_clickstream(
    catalog_config: &CatalogConfig,
    session_config: &SessionConfig,
) -> (Catalog, Clickstream) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(session_config.seed);
    let catalog = Catalog::generate(catalog_config, &mut rng);

    // Precompute substitute lists once per item (sessions reuse them).
    let substitutes: Vec<Vec<(u64, f64)>> = (0..catalog.len())
        .map(|i| catalog.substitutes(i as u64))
        .collect();
    let popularity_table = AliasTable::new(&catalog.popularity);

    let mut sessions = Vec::with_capacity(session_config.sessions);
    for sid in 0..session_config.sessions {
        let desired = popularity_table.sample(&mut rng) as u64;
        let alternatives = session_config
            .behavior
            .draw_alternatives(&substitutes[desired as usize], &mut rng);
        // Clicks: the desired item first (consumers view what they buy),
        // then the considered alternatives.
        let mut clicks = Vec::with_capacity(1 + alternatives.len());
        clicks.push(desired);
        clicks.extend(alternatives);
        sessions.push(Session::new(sid as u64 + 1, clicks, desired));
    }
    (catalog, Clickstream::new(sessions))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(sessions: usize, behavior: BehaviorModel, seed: u64) -> (Catalog, Clickstream) {
        generate_clickstream(
            &CatalogConfig {
                items: 200,
                ..CatalogConfig::default()
            },
            &SessionConfig {
                sessions,
                behavior,
                seed,
            },
        )
    }

    #[test]
    fn sessions_have_requested_count_and_single_purchase() {
        let (_, cs) = quick(500, BehaviorModel::independent_default(), 1);
        assert_eq!(cs.len(), 500);
        for s in &cs.sessions {
            assert_eq!(s.clicks[0], s.purchase);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let (_, a) = quick(200, BehaviorModel::independent_default(), 5);
        let (_, b) = quick(200, BehaviorModel::independent_default(), 5);
        assert_eq!(a, b);
        let (_, c) = quick(200, BehaviorModel::independent_default(), 6);
        assert_ne!(a, c);
    }

    #[test]
    fn popular_items_purchased_more() {
        let (catalog, cs) = quick(20_000, BehaviorModel::independent_default(), 2);
        let counts = cs.item_purchase_counts();
        // The most popular catalog item should be bought far more often
        // than a median one.
        let best = catalog
            .popularity
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0 as u64;
        let best_count = counts.get(&best).copied().unwrap_or(0);
        assert!(
            best_count > 20_000 / 200,
            "top item bought only {best_count} times"
        );
    }

    #[test]
    fn normalized_behavior_satisfies_the_90_percent_rule() {
        let (_, cs) = quick(10_000, BehaviorModel::single_alternative_default(), 3);
        let stats = cs.stats();
        assert!(
            stats.at_most_one_alternative_fraction >= 0.90,
            "fraction {}",
            stats.at_most_one_alternative_fraction
        );
    }

    #[test]
    fn independent_behavior_clicks_more_alternatives() {
        let (_, ind) = quick(10_000, BehaviorModel::independent_default(), 4);
        let (_, nrm) = quick(10_000, BehaviorModel::single_alternative_default(), 4);
        assert!(ind.stats().mean_alternatives() > nrm.stats().mean_alternatives());
    }

    #[test]
    fn alternatives_come_from_the_desired_items_category() {
        let (catalog, cs) = quick(2_000, BehaviorModel::independent_default(), 7);
        for s in &cs.sessions {
            let c = catalog.category_of[s.purchase as usize];
            for alt in s.alternatives() {
                assert_eq!(catalog.category_of[alt as usize], c);
            }
        }
    }
}

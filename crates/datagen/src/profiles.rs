//! Dataset profiles matching Table 2 of the paper.
//!
//! | DS | Sessions   | Purchases  | Items     | Edges     | Variant |
//! |----|-----------:|-----------:|----------:|----------:|---------|
//! | PE | 10,782,918 | 10,782,918 | 1,921,701 | 9,250,131 | Independent |
//! | PF |  8,630,541 |  8,630,541 | 1,681,625 | 7,182,318 | Independent |
//! | PM |  8,154,160 |  8,154,160 | 1,396,674 | 5,826,429 | Normalized |
//! | YC |  9,249,729 |    259,579 |    52,739 |   249,008 | Independent |
//!
//! (For YC the paper counts all 9.2M raw sessions; 259,579 end in a single
//! purchase and feed the model — our generator produces purchase sessions
//! directly, so its `sessions` knob matches the *purchases* column.)
//!
//! Profiles are downscaled by default ([`Scale`]), keeping the
//! items-per-session and edges-per-item ratios; `Scale::Full` reproduces
//! the paper-scale counts.

use crate::behavior::BehaviorModel;
use crate::catalog::CatalogConfig;
use crate::sessions::SessionConfig;

/// How much of the paper-scale dataset to generate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Scale {
    /// Paper-scale (millions of sessions; minutes of generation time).
    Full,
    /// A fraction of the paper scale, e.g. `Fraction(0.01)` for 1%.
    Fraction(f64),
}

impl Scale {
    fn factor(self) -> f64 {
        match self {
            Scale::Full => 1.0,
            Scale::Fraction(f) => {
                assert!(f > 0.0 && f <= 1.0, "scale fraction must be in (0, 1]");
                f
            }
        }
    }
}

/// A named dataset profile.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DatasetProfile {
    /// Private Electronics — Independent variant.
    PE,
    /// Private Fashion — Independent variant.
    PF,
    /// Private Motors (parts & accessories) — Normalized variant.
    PM,
    /// YooChoose (RecSys'15) — Independent variant.
    YC,
}

impl DatasetProfile {
    /// All four profiles, in Table 2 order.
    pub fn all() -> [DatasetProfile; 4] {
        [
            DatasetProfile::PE,
            DatasetProfile::PF,
            DatasetProfile::PM,
            DatasetProfile::YC,
        ]
    }

    /// The Table 2 name.
    pub fn name(self) -> &'static str {
        match self {
            DatasetProfile::PE => "PE",
            DatasetProfile::PF => "PF",
            DatasetProfile::PM => "PM",
            DatasetProfile::YC => "YC",
        }
    }

    /// Parses a profile name (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_uppercase().as_str() {
            "PE" => Some(DatasetProfile::PE),
            "PF" => Some(DatasetProfile::PF),
            "PM" => Some(DatasetProfile::PM),
            "YC" => Some(DatasetProfile::YC),
            _ => None,
        }
    }

    /// Paper-scale purchase-session count (Table 2 purchases column).
    pub fn full_sessions(self) -> usize {
        match self {
            DatasetProfile::PE => 10_782_918,
            DatasetProfile::PF => 8_630_541,
            DatasetProfile::PM => 8_154_160,
            DatasetProfile::YC => 259_579,
        }
    }

    /// Paper-scale item count (Table 2).
    pub fn full_items(self) -> usize {
        match self {
            DatasetProfile::PE => 1_921_701,
            DatasetProfile::PF => 1_681_625,
            DatasetProfile::PM => 1_396_674,
            DatasetProfile::YC => 52_739,
        }
    }

    /// Paper-scale edge count (Table 2) — the target our generated graphs
    /// should approximate after adaptation.
    pub fn full_edges(self) -> usize {
        match self {
            DatasetProfile::PE => 9_250_131,
            DatasetProfile::PF => 7_182_318,
            DatasetProfile::PM => 5_826_429,
            DatasetProfile::YC => 249_008,
        }
    }

    /// The behavior model this dataset exhibits (Section 5.3: PE/PF/YC fit
    /// the Independent variant, PM the Normalized).
    pub fn behavior(self) -> BehaviorModel {
        match self {
            DatasetProfile::PM => BehaviorModel::single_alternative_default(),
            _ => BehaviorModel::independent_default(),
        }
    }

    /// The generation configs at the given scale.
    ///
    /// Items and sessions shrink by the same factor, preserving the
    /// sessions-per-item ratio (which controls edge-weight fidelity);
    /// category sizes stay fixed, preserving out-degrees (the edges/items
    /// ratio of Table 2 is 4.2–4.8, matching category size ~8 minus
    /// sampling losses).
    pub fn configs(self, scale: Scale, seed: u64) -> (CatalogConfig, SessionConfig) {
        let f = scale.factor();
        let items = ((self.full_items() as f64 * f) as usize).max(10);
        let sessions = ((self.full_sessions() as f64 * f) as usize).max(100);
        (
            CatalogConfig {
                items,
                min_category_size: 5,
                max_category_size: 18,
                popularity_exponent: 1.0,
            },
            SessionConfig {
                sessions,
                behavior: self.behavior(),
                seed,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::sessions::generate_clickstream;

    use super::*;

    #[test]
    fn names_roundtrip() {
        for p in DatasetProfile::all() {
            assert_eq!(DatasetProfile::parse(p.name()), Some(p));
        }
        assert_eq!(DatasetProfile::parse("yc"), Some(DatasetProfile::YC));
        assert_eq!(DatasetProfile::parse("XX"), None);
    }

    #[test]
    fn full_counts_match_table2() {
        assert_eq!(DatasetProfile::PE.full_items(), 1_921_701);
        assert_eq!(DatasetProfile::PM.full_edges(), 5_826_429);
        assert_eq!(DatasetProfile::YC.full_sessions(), 259_579);
    }

    #[test]
    fn scaling_preserves_ratio() {
        let (cat_full, ses_full) = DatasetProfile::PE.configs(Scale::Full, 0);
        let (cat_small, ses_small) = DatasetProfile::PE.configs(Scale::Fraction(0.01), 0);
        let ratio_full = ses_full.sessions as f64 / cat_full.items as f64;
        let ratio_small = ses_small.sessions as f64 / cat_small.items as f64;
        assert!((ratio_full - ratio_small).abs() / ratio_full < 0.01);
    }

    #[test]
    #[should_panic(expected = "scale fraction")]
    fn invalid_fraction_panics() {
        DatasetProfile::PE.configs(Scale::Fraction(0.0), 0);
    }

    #[test]
    fn pm_profile_generates_normalized_style_data() {
        let (cat, ses) = DatasetProfile::PM.configs(Scale::Fraction(0.001), 42);
        let (_, cs) = generate_clickstream(&cat, &ses);
        assert!(cs.stats().at_most_one_alternative_fraction >= 0.90);
    }

    #[test]
    fn yc_profile_generates_independent_style_data() {
        let (cat, ses) = DatasetProfile::YC.configs(Scale::Fraction(0.02), 42);
        let (_, cs) = generate_clickstream(&cat, &ses);
        // Independent clicking considers several alternatives per session
        // on average; well below the 90% single-alt threshold.
        assert!(cs.stats().at_most_one_alternative_fraction < 0.90);
    }
}

//! Synthetic item catalogs: items, categories and substitute affinities.

// lint: allow-file(no-index) — generators index catalogs/weight tables with values drawn in
// 0..len by the seeded RNG, in bounds by construction.
use rand::{Rng, RngExt};

use crate::sampling::zipf_weights;

/// Configuration for [`Catalog::generate`].
#[derive(Clone, Copy, Debug)]
pub struct CatalogConfig {
    /// Number of items.
    pub items: usize,
    /// Minimum category size (inclusive).
    pub min_category_size: usize,
    /// Maximum category size (inclusive). Categories partition the catalog
    /// into contiguous id blocks with sizes uniform in
    /// `[min_category_size, max_category_size]`.
    pub max_category_size: usize,
    /// Zipf exponent of item purchase popularity (`≈ 1` for e-commerce).
    pub popularity_exponent: f64,
}

impl Default for CatalogConfig {
    fn default() -> Self {
        CatalogConfig {
            items: 1000,
            min_category_size: 4,
            max_category_size: 16,
            popularity_exponent: 1.0,
        }
    }
}

/// A synthetic catalog: per-item popularity and a partition into categories
/// of substitutable items.
///
/// Item ids are `0..items`. Popularity rank is deliberately decoupled from
/// category position by a deterministic permutation, so the heavy items
/// spread across categories (as in real catalogs) instead of clustering in
/// the first block.
#[derive(Clone, Debug)]
pub struct Catalog {
    /// `popularity[i]` — probability item `i` is the one a random session
    /// wants to purchase; sums to 1.
    pub popularity: Vec<f64>,
    /// `category_of[i]` — category index of item `i`.
    pub category_of: Vec<u32>,
    /// `categories[c]` — the (contiguous, ascending) item ids of category
    /// `c`.
    pub categories: Vec<Vec<u64>>,
}

impl Catalog {
    /// Generates a catalog.
    ///
    /// # Panics
    ///
    /// Panics on zero items or inverted/zero category size bounds.
    pub fn generate<R: Rng + ?Sized>(config: &CatalogConfig, rng: &mut R) -> Self {
        assert!(config.items > 0, "catalog needs at least one item");
        assert!(
            config.min_category_size >= 1 && config.min_category_size <= config.max_category_size,
            "invalid category size bounds"
        );

        // Contiguous category blocks.
        let mut categories: Vec<Vec<u64>> = Vec::new();
        let mut category_of = vec![0u32; config.items];
        let mut next = 0usize;
        while next < config.items {
            let size = rng
                .random_range(config.min_category_size..=config.max_category_size)
                .min(config.items - next);
            let c = categories.len() as u32;
            let members: Vec<u64> = (next..next + size).map(|i| i as u64).collect();
            for &m in &members {
                category_of[m as usize] = c;
            }
            categories.push(members);
            next += size;
        }

        // Popularity is category-correlated, as in real catalogs: demand is
        // Zipf over *categories* (assigned through a pseudo-random
        // permutation so category id order is not popularity order), and a
        // category's demand splits among its members with a gentle decay.
        // This is what makes naive top-seller selection wasteful — the best
        // sellers cluster inside categories where they substitute for each
        // other (e.g. all colors of a hot phone).
        let cat_ranked = zipf_weights(categories.len(), config.popularity_exponent);
        let mut perm: Vec<usize> = (0..categories.len()).collect();
        // Deterministic Fisher-Yates driven by the same rng.
        for i in (1..perm.len()).rev() {
            let j = rng.random_range(0..=i);
            perm.swap(i, j);
        }
        let mut popularity = vec![0.0; config.items];
        for (rank, &cat) in perm.iter().enumerate() {
            let members = &categories[cat];
            let shares = zipf_weights(members.len(), 0.7);
            for (pos, &item) in members.iter().enumerate() {
                popularity[item as usize] = cat_ranked[rank] * shares[pos];
            }
        }

        Catalog {
            popularity,
            category_of,
            categories,
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.popularity.len()
    }

    /// True when the catalog has no items (never after `generate`).
    pub fn is_empty(&self) -> bool {
        self.popularity.is_empty()
    }

    /// The substitute candidates for `item`: its category peers (excluding
    /// itself) with affinities decaying gently in catalog distance,
    /// `affinity = 1 / sqrt(1 + |i - j|)`.
    ///
    /// Affinities are relative preference weights among substitutes; the
    /// behavior models turn them into click probabilities. The square-root
    /// decay keeps a wide substitute fan per item, which calibrates the
    /// adapted graphs to Table 2's 4.2–4.8 edges-per-item ratios.
    pub fn substitutes(&self, item: u64) -> Vec<(u64, f64)> {
        let c = self.category_of[item as usize] as usize;
        self.categories[c]
            .iter()
            .filter(|&&j| j != item)
            .map(|&j| {
                let dist = item.abs_diff(j) as f64;
                (j, 1.0 / (1.0 + dist).sqrt())
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use rand::SeedableRng;

    use super::*;

    fn catalog(items: usize, seed: u64) -> Catalog {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Catalog::generate(
            &CatalogConfig {
                items,
                ..CatalogConfig::default()
            },
            &mut rng,
        )
    }

    #[test]
    fn categories_partition_the_catalog() {
        let c = catalog(500, 1);
        let mut seen = vec![false; 500];
        for (ci, members) in c.categories.iter().enumerate() {
            for &m in members {
                assert!(!seen[m as usize], "item {m} in two categories");
                seen[m as usize] = true;
                assert_eq!(c.category_of[m as usize] as usize, ci);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn category_sizes_in_bounds() {
        let c = catalog(500, 2);
        for members in &c.categories[..c.categories.len() - 1] {
            assert!(members.len() >= 4 && members.len() <= 16);
        }
        // Last category may be a remainder, but never empty.
        assert!(!c.categories.last().unwrap().is_empty());
    }

    #[test]
    fn popularity_is_a_distribution() {
        let c = catalog(300, 3);
        assert!((c.popularity.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(c.popularity.iter().all(|&p| p > 0.0));
    }

    #[test]
    fn popularity_is_permuted_not_sorted() {
        let c = catalog(300, 4);
        let sorted = c.popularity.windows(2).all(|w| w[0] >= w[1]);
        assert!(!sorted, "popularity should not be in rank order");
    }

    #[test]
    fn substitutes_stay_in_category_and_decay() {
        let c = catalog(500, 5);
        let item = 42u64;
        let subs = c.substitutes(item);
        assert!(!subs.is_empty());
        for &(j, aff) in &subs {
            assert_ne!(j, item);
            assert_eq!(c.category_of[j as usize], c.category_of[item as usize]);
            assert!(aff > 0.0 && aff <= 1.0 / 2.0f64.sqrt()); // distance >= 1
        }
        // Immediate neighbor has the highest affinity.
        let max = subs
            .iter()
            .cloned()
            .fold((0u64, 0.0f64), |acc, x| if x.1 > acc.1 { x } else { acc });
        assert_eq!(max.0.abs_diff(item), 1);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = catalog(200, 9);
        let b = catalog(200, 9);
        assert_eq!(a.popularity, b.popularity);
        assert_eq!(a.categories, b.categories);
    }

    #[test]
    fn single_item_catalog() {
        let c = catalog(1, 0);
        assert_eq!(c.len(), 1);
        assert!(c.substitutes(0).is_empty());
    }
}

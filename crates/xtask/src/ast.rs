//! A lightweight item parser on top of [`crate::lexer`].
//!
//! The audit rules need *items* — which functions exist, what is `pub`,
//! which impl block a method lives in, where a body starts and ends — not a
//! full expression tree. This module recovers exactly that from the token
//! stream: a scope-stack parse that records function items (with body token
//! ranges for the call-graph scan) and the public surface (for the API
//! snapshot). The environment vendors no `syn`, so the parser is
//! self-contained; it is deliberately conservative, and the audit rules
//! that consume it are written to tolerate its over-approximations.
//!
//! What it understands: `mod` nesting (inline only), `impl` blocks (self
//! type, including `impl Trait for Type`), `trait` blocks, `fn` items with
//! modifiers (`pub`, `const`, `async`, `unsafe`, `extern "C"`), and the
//! item kinds that constitute a crate's public surface (`struct`, `enum`,
//! `union`, `trait`, `const`, `static`, `type`, `use`, `mod`, `fn`).
//! What it deliberately ignores: struct field lists, trait-impl method
//! signatures (not independently `pub`), macro definitions' bodies, and
//! const-generic braces in signatures (absent from this workspace).

use crate::lexer::{Tok, TokKind};
use crate::rules::test_region_mask;

/// One parsed `fn` item.
#[derive(Clone, Debug)]
pub struct FnInfo {
    /// The function's name.
    pub name: String,
    /// The `impl`/`trait` self type the function is a method of, if any.
    pub qual: Option<String>,
    /// Inline `mod` path from the file root down to the item.
    pub module_path: Vec<String>,
    /// True when declared with a plain `pub` (not `pub(crate)`/`pub(super)`).
    pub is_pub: bool,
    /// True when every enclosing inline `mod` is itself plain `pub`.
    pub mods_pub: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token range `[start, end)` of the signature (from `fn` to the body
    /// brace or the trailing `;`, exclusive).
    pub sig: (usize, usize),
    /// Token range `[open, close]` of the body braces, if the fn has one.
    pub body: Option<(usize, usize)>,
    /// True when the item sits inside `#[cfg(test)]` / `#[test]` code.
    pub in_test: bool,
}

impl FnInfo {
    /// The 1-based line span covered by the body (empty range when there is
    /// no body).
    pub fn body_lines(&self, tokens: &[Tok]) -> (u32, u32) {
        match self.body {
            Some((open, close)) => {
                let lo = tokens.get(open).map_or(self.line, |t| t.line);
                let hi = tokens.get(close).map_or(self.line, |t| t.line);
                (lo, hi)
            }
            None => (self.line, self.line),
        }
    }
}

/// One public item for the API snapshot.
#[derive(Clone, Debug)]
pub struct PubItem {
    /// Item kind keyword (`fn`, `struct`, `use`, ...).
    pub kind: &'static str,
    /// Module-qualified path within the file (inline `mod`s and the impl
    /// self type for methods), `::`-joined; empty at the file root.
    pub path: String,
    /// Normalized declaration head: signature tokens joined by single
    /// spaces (no bodies, no struct fields).
    pub decl: String,
    /// 1-based line of the declaring keyword.
    pub line: u32,
}

/// The parsed shape of one file.
#[derive(Debug, Default)]
pub struct FileAst {
    /// Every `fn` item, in source order.
    pub fns: Vec<FnInfo>,
    /// Every `pub` item visible from outside the crate, in source order.
    pub pub_items: Vec<PubItem>,
}

#[derive(Clone, Debug)]
enum Scope {
    Mod { name: String, is_pub: bool },
    Impl { self_ty: String },
    Trait { name: String },
    Block,
}

/// Fn modifiers that may sit between `pub` and `fn`.
const FN_MODIFIERS: [&str; 4] = ["const", "async", "unsafe", "extern"];

/// One `loop`/`while`/`for` body inside a function, for attributing
/// allocations to their innermost enclosing loop (the heatpath rules).
#[derive(Clone, Copy, Debug)]
pub struct LoopScope {
    /// Token index of the `loop`/`while`/`for` keyword.
    pub header: usize,
    /// Token index of the body `{`.
    pub open: usize,
    /// Token index of the matching `}`.
    pub close: usize,
    /// 1-based line of the loop keyword.
    pub line: u32,
}

/// Every loop scope in a body token range `[open, close]`, in source
/// order; nested loops appear as their own entries. The loop *header* (the
/// tokens between the keyword and the body `{`, e.g. the iterator
/// expression of a `for`) is not part of the scope — it runs once, not per
/// iteration. Balanced groups inside headers (`while let Some(v) = q.pop()
/// {`) are skipped when locating the body brace.
pub fn loop_scopes(tokens: &[Tok], body: (usize, usize)) -> Vec<LoopScope> {
    let (body_open, body_close) = body;
    let mut out = Vec::new();
    let mut i = body_open + 1;
    while i < body_close.min(tokens.len()) {
        let t = &tokens[i];
        if t.kind == TokKind::Ident && matches!(t.text.as_str(), "loop" | "while" | "for") {
            // `break 'label loop { .. }` and `for` in doc text never reach
            // here (lexer strips comments); scan the header for its `{`,
            // skipping balanced groups so closure/tuple parens don't count.
            let mut j = i + 1;
            let mut found = None;
            while j < body_close.min(tokens.len()) {
                match tokens[j].kind {
                    TokKind::Open if tokens[j].text == "{" => {
                        found = Some(j);
                        break;
                    }
                    TokKind::Open => j = skip_balanced(tokens, j),
                    TokKind::Op if tokens[j].text == ";" => break,
                    _ => j += 1,
                }
            }
            if let Some(open) = found {
                out.push(LoopScope {
                    header: i,
                    open,
                    close: match_close(tokens, open),
                    line: t.line,
                });
            }
        }
        i += 1;
    }
    out
}

/// The innermost loop in `scopes` whose body contains token `i`
/// (innermost = latest-opening scope that still contains it).
pub fn innermost_loop(scopes: &[LoopScope], i: usize) -> Option<LoopScope> {
    scopes
        .iter()
        .filter(|s| i > s.open && i < s.close)
        .max_by_key(|s| s.open)
        .copied()
}

/// Parses one file's token stream into its item index.
pub fn parse(tokens: &[Tok]) -> FileAst {
    let in_test = test_region_mask(tokens);
    let mut out = FileAst::default();
    let mut scopes: Vec<Scope> = Vec::new();
    let mut i = 0usize;

    while i < tokens.len() {
        let t = &tokens[i];
        if t.kind == TokKind::Open && t.text == "{" {
            scopes.push(Scope::Block);
            i += 1;
            continue;
        }
        if t.kind == TokKind::Close && t.text == "}" {
            scopes.pop();
            i += 1;
            continue;
        }
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "mod" if next_is_ident(tokens, i) => {
                let name = tokens[i + 1].text.clone();
                let is_pub = plain_pub_before(tokens, i);
                match tokens.get(i + 2).map(|t| t.text.as_str()) {
                    Some("{") => {
                        record_pub(
                            &mut out,
                            tokens,
                            &scopes,
                            &in_test,
                            i,
                            "mod",
                            &name,
                            i,
                            i + 2,
                        );
                        scopes.push(Scope::Mod { name, is_pub });
                        i += 3;
                    }
                    _ => {
                        // `mod name;` — out-of-line module, declaration only.
                        record_pub(
                            &mut out,
                            tokens,
                            &scopes,
                            &in_test,
                            i,
                            "mod",
                            &name,
                            i,
                            i + 2,
                        );
                        i += 2;
                    }
                }
            }
            "impl" => {
                let (self_ty, open) = impl_self_type(tokens, i);
                match open {
                    Some(open) => {
                        scopes.push(Scope::Impl { self_ty });
                        i = open + 1;
                    }
                    None => i += 1,
                }
            }
            "trait" if next_is_ident(tokens, i) => {
                let name = tokens[i + 1].text.clone();
                // Scan to the trait body `{` (or `;` for `trait X = ..;`).
                let mut j = i + 2;
                let mut depth = 0i64;
                while j < tokens.len() {
                    match tokens[j].kind {
                        TokKind::Open if tokens[j].text == "{" && depth == 0 => break,
                        TokKind::Open => depth += 1,
                        TokKind::Close => depth -= 1,
                        TokKind::Op if tokens[j].text == ";" && depth == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                record_pub(&mut out, tokens, &scopes, &in_test, i, "trait", &name, i, j);
                if tokens.get(j).is_some_and(|t| t.text == "{") {
                    scopes.push(Scope::Trait { name });
                    i = j + 1;
                } else {
                    i = j.saturating_add(1);
                }
            }
            "fn" if next_is_ident(tokens, i) => {
                let name = tokens[i + 1].text.clone();
                let (body, end) = fn_body_range(tokens, i);
                let sig_end = body.map_or(end, |(open, _)| open);
                let qual = scopes.iter().rev().find_map(|s| match s {
                    Scope::Impl { self_ty } => Some(self_ty.clone()),
                    Scope::Trait { name } => Some(name.clone()),
                    _ => None,
                });
                let module_path: Vec<String> = scopes
                    .iter()
                    .filter_map(|s| match s {
                        Scope::Mod { name, .. } => Some(name.clone()),
                        _ => None,
                    })
                    .collect();
                let is_pub = plain_pub_before(tokens, i);
                let info = FnInfo {
                    name: name.clone(),
                    qual,
                    module_path,
                    is_pub,
                    mods_pub: mods_all_pub(&scopes),
                    line: t.line,
                    sig: (i, sig_end),
                    body,
                    in_test: in_test.get(i).copied().unwrap_or(false),
                };
                record_pub(
                    &mut out, tokens, &scopes, &in_test, i, "fn", &name, i, sig_end,
                );
                out.fns.push(info);
                match body {
                    Some((open, _)) => {
                        // Walk into the body so nested items are found.
                        scopes.push(Scope::Block);
                        i = open + 1;
                    }
                    None => i = end.saturating_add(1),
                }
            }
            "struct" | "enum" | "union" if next_is_ident(tokens, i) => {
                let kind: &'static str = match t.text.as_str() {
                    "struct" => "struct",
                    "enum" => "enum",
                    _ => "union",
                };
                let name = tokens[i + 1].text.clone();
                // Head ends at the first `{` or `;` outside nesting; the
                // field/variant body is skipped wholesale (fields are not
                // items, and the snapshot records declarations only).
                let mut j = i + 2;
                let mut depth = 0i64;
                while j < tokens.len() {
                    match tokens[j].kind {
                        TokKind::Open if tokens[j].text == "{" && depth == 0 => break,
                        TokKind::Open => depth += 1,
                        TokKind::Close => depth -= 1,
                        TokKind::Op if tokens[j].text == ";" && depth == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                record_pub(&mut out, tokens, &scopes, &in_test, i, kind, &name, i, j);
                if tokens.get(j).is_some_and(|t| t.text == "{") {
                    i = skip_balanced(tokens, j);
                } else {
                    i = j.saturating_add(1);
                }
            }
            "const" | "static" | "type"
                if next_is_ident(tokens, i) && tokens[i + 1].text != "fn" =>
            {
                let kind: &'static str = match t.text.as_str() {
                    "const" => "const",
                    "static" => "static",
                    _ => "type",
                };
                let name = tokens[i + 1].text.clone();
                let j = scan_to_semi(tokens, i + 2);
                record_pub(&mut out, tokens, &scopes, &in_test, i, kind, &name, i, j);
                i = j.saturating_add(1);
            }
            "use" => {
                let j = scan_to_semi(tokens, i + 1);
                if plain_pub_before(tokens, i) {
                    record_pub(&mut out, tokens, &scopes, &in_test, i, "use", "", i, j);
                }
                i = j.saturating_add(1);
            }
            "macro_rules" => {
                // `macro_rules! name { .. }` — skip the whole definition so
                // its token soup never reads as items.
                let mut j = i + 1;
                while j < tokens.len() && tokens[j].text != "{" {
                    j += 1;
                }
                i = skip_balanced(tokens, j);
            }
            _ => i += 1,
        }
    }
    out
}

fn next_is_ident(tokens: &[Tok], i: usize) -> bool {
    tokens.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident)
}

fn mods_all_pub(scopes: &[Scope]) -> bool {
    scopes.iter().all(|s| match s {
        Scope::Mod { is_pub, .. } => *is_pub,
        _ => true,
    })
}

/// True when the item keyword at `i` is preceded by a plain `pub`
/// (skipping fn modifiers and an `extern "C"` ABI string, but rejecting
/// restricted `pub(crate)` / `pub(super)` / `pub(in ..)`).
fn plain_pub_before(tokens: &[Tok], i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        let p = &tokens[j - 1];
        let is_modifier = p.kind == TokKind::Ident && FN_MODIFIERS.contains(&p.text.as_str());
        let is_abi = p.kind == TokKind::Lit; // the "C" in `extern "C"`
        if is_modifier || is_abi {
            j -= 1;
            continue;
        }
        if p.kind == TokKind::Ident && p.text == "pub" {
            return true;
        }
        // `pub ( crate )` — the `)` sits right before the keyword chain.
        if p.kind == TokKind::Close && p.text == ")" {
            return false; // restricted visibility is never plain pub
        }
        return false;
    }
    false
}

/// From the `fn` keyword at `i`, finds the body brace range (or the
/// terminating `;` for body-less trait declarations). Returns
/// `(body_range, end_index)` where `end_index` is the `;` when there is no
/// body.
fn fn_body_range(tokens: &[Tok], i: usize) -> (Option<(usize, usize)>, usize) {
    let mut j = i + 1;
    let mut depth = 0i64;
    while j < tokens.len() {
        match tokens[j].kind {
            TokKind::Open if tokens[j].text == "{" && depth == 0 => {
                let close = match_close(tokens, j);
                return (Some((j, close)), close);
            }
            TokKind::Open => depth += 1,
            TokKind::Close => depth -= 1,
            TokKind::Op if tokens[j].text == ";" && depth == 0 => return (None, j),
            _ => {}
        }
        j += 1;
    }
    (None, tokens.len().saturating_sub(1))
}

/// Index of the bracket that closes the opener at `open` (any of `(`/`[`/
/// `{`); the last token when unbalanced.
fn match_close(tokens: &[Tok], open: usize) -> usize {
    let mut depth = 0i64;
    let mut j = open;
    while j < tokens.len() {
        match tokens[j].kind {
            TokKind::Open => depth += 1,
            TokKind::Close => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    tokens.len().saturating_sub(1)
}

/// Index just past the balanced group opening at `open`.
fn skip_balanced(tokens: &[Tok], open: usize) -> usize {
    if open >= tokens.len() {
        return tokens.len();
    }
    match_close(tokens, open) + 1
}

fn scan_to_semi(tokens: &[Tok], from: usize) -> usize {
    let mut j = from;
    let mut depth = 0i64;
    while j < tokens.len() {
        match tokens[j].kind {
            TokKind::Open => depth += 1,
            TokKind::Close => depth -= 1,
            TokKind::Op if tokens[j].text == ";" && depth <= 0 => return j,
            _ => {}
        }
        j += 1;
    }
    tokens.len().saturating_sub(1)
}

/// Extracts the self type of an `impl` block starting at `i` and the index
/// of its opening `{`. Handles `impl<G> Type`, `impl Trait for Type`, and
/// references/paths; generic argument lists are skipped so `impl Foo<Bar>`
/// names `Foo`, not `Bar`.
fn impl_self_type(tokens: &[Tok], i: usize) -> (String, Option<usize>) {
    let mut j = i + 1;
    let mut last_ident: Option<String> = None;
    while j < tokens.len() {
        let t = &tokens[j];
        match t.text.as_str() {
            "<" => {
                // Skip a balanced angle section (`->` is its own token, so
                // it cannot close this).
                let mut angle = 1i64;
                j += 1;
                while j < tokens.len() && angle > 0 {
                    match tokens[j].text.as_str() {
                        "<" => angle += 1,
                        ">" => angle -= 1,
                        _ => {}
                    }
                    j += 1;
                }
                continue;
            }
            "for" => {
                last_ident = None;
                j += 1;
                continue;
            }
            "where" | "{" => break,
            _ => {
                if t.kind == TokKind::Ident && t.text != "dyn" && t.text != "mut" {
                    last_ident = Some(t.text.clone());
                }
                j += 1;
            }
        }
    }
    // Find the `{` (j is at it, or at `where` — scan on).
    while j < tokens.len() && tokens[j].text != "{" {
        j += 1;
    }
    let open = (j < tokens.len()).then_some(j);
    (last_ident.unwrap_or_default(), open)
}

/// Records a pub item when the declaring keyword is plain-`pub`, every
/// enclosing inline mod is pub, and the item is not test-only code.
#[allow(clippy::too_many_arguments)] // internal helper: one call shape, tightly scoped
fn record_pub(
    out: &mut FileAst,
    tokens: &[Tok],
    scopes: &[Scope],
    in_test: &[bool],
    kw: usize,
    kind: &'static str,
    name: &str,
    decl_from: usize,
    decl_to: usize,
) {
    if !plain_pub_before(tokens, kw) || !mods_all_pub(scopes) {
        return;
    }
    if in_test.get(kw).copied().unwrap_or(false) {
        return;
    }
    let mut path: Vec<String> = scopes
        .iter()
        .filter_map(|s| match s {
            Scope::Mod { name, .. } => Some(name.clone()),
            Scope::Impl { self_ty } => Some(self_ty.clone()),
            Scope::Trait { name } => Some(name.clone()),
            Scope::Block => None,
        })
        .collect();
    if !name.is_empty() {
        path.push(name.to_string());
    }
    let decl = tokens[decl_from..decl_to.min(tokens.len())]
        .iter()
        .map(|t| t.text.as_str())
        .collect::<Vec<_>>()
        .join(" ");
    out.pub_items.push(PubItem {
        kind,
        path: path.join("::"),
        decl,
        line: tokens.get(kw).map_or(1, |t| t.line),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> FileAst {
        parse(&lex(src).tokens)
    }

    #[test]
    fn finds_fns_with_bodies_and_visibility() {
        let ast = parse_src(
            "pub fn a() { b(); }\nfn b() {}\npub(crate) fn c() {}\npub const fn d() -> u32 { 4 }",
        );
        let names: Vec<(&str, bool)> = ast
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.is_pub))
            .collect();
        assert_eq!(
            names,
            [("a", true), ("b", false), ("c", false), ("d", true)]
        );
        assert!(ast.fns.iter().all(|f| f.body.is_some()));
    }

    #[test]
    fn impl_methods_get_their_self_type() {
        let ast = parse_src(
            "struct S;\nimpl S { pub fn m(&self) {} }\n\
             impl<T: Clone> Wrapper<T> { fn n() {} }\n\
             impl Display for S { fn fmt(&self) {} }",
        );
        let quals: Vec<(String, Option<String>)> = ast
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.qual.clone()))
            .collect();
        assert_eq!(quals[0], ("m".into(), Some("S".into())));
        assert_eq!(quals[1], ("n".into(), Some("Wrapper".into())));
        assert_eq!(quals[2], ("fmt".into(), Some("S".into())));
    }

    #[test]
    fn module_nesting_and_test_regions() {
        let ast = parse_src(
            "pub mod outer { mod inner { pub fn hidden() {} } pub fn shown() {} }\n\
             #[cfg(test)] mod tests { pub fn t() {} }",
        );
        let shown = ast.fns.iter().find(|f| f.name == "shown").expect("shown");
        assert_eq!(shown.module_path, ["outer"]);
        assert!(shown.mods_pub);
        let hidden = ast.fns.iter().find(|f| f.name == "hidden").expect("hidden");
        assert!(!hidden.mods_pub);
        let t = ast.fns.iter().find(|f| f.name == "t").expect("t");
        assert!(t.in_test);
        // Pub surface: shown only (hidden is in a private mod, t is test).
        let paths: Vec<&str> = ast.pub_items.iter().map(|p| p.path.as_str()).collect();
        assert!(paths.contains(&"outer::shown"));
        assert!(!paths.iter().any(|p| p.contains("hidden")));
        assert!(!paths.iter().any(|p| p.contains("::t")));
    }

    #[test]
    fn pub_surface_covers_item_kinds() {
        let ast = parse_src(
            "pub struct S { x: u32 }\npub enum E { A }\npub trait T { fn m(&self); }\n\
             pub const C: u32 = 1;\npub static ST: u32 = 2;\npub type Alias = u32;\n\
             pub use inner::{a, b};\npub mod m {}\nstruct Private;",
        );
        let kinds: Vec<&str> = ast.pub_items.iter().map(|p| p.kind).collect();
        assert_eq!(
            kinds,
            ["struct", "enum", "trait", "const", "static", "type", "use", "mod"]
        );
        assert!(!ast.pub_items.iter().any(|p| p.path.contains("Private")));
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let ast = parse_src("pub type F = fn(u32) -> u32;\npub fn real(f: fn() -> u32) {}");
        assert_eq!(ast.fns.len(), 1);
        assert_eq!(ast.fns[0].name, "real");
    }

    #[test]
    fn trait_decl_without_body_recorded() {
        let ast = parse_src("trait T { fn decl(&self); fn with_default(&self) {} }");
        let decl = ast.fns.iter().find(|f| f.name == "decl").expect("decl");
        assert!(decl.body.is_none());
        assert_eq!(decl.qual.as_deref(), Some("T"));
        let with = ast
            .fns
            .iter()
            .find(|f| f.name == "with_default")
            .expect("with_default");
        assert!(with.body.is_some());
    }

    #[test]
    fn nested_fns_are_found() {
        let ast = parse_src("fn outer() { fn inner() {} inner(); }");
        let names: Vec<&str> = ast.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["outer", "inner"]);
    }

    #[test]
    fn signatures_are_normalized_token_joins() {
        let ast = parse_src("pub fn solve<M: Model>(g: &Graph, k: usize) -> Result<R, E> { x }");
        let item = &ast.pub_items[0];
        assert_eq!(
            item.decl,
            "fn solve < M : Model > ( g : & Graph , k : usize ) -> Result < R , E >"
        );
    }

    #[test]
    fn body_line_spans() {
        let src = "fn a() {\n  x();\n  y();\n}\n";
        let ast = parse_src(src);
        let toks = lex(src).tokens;
        assert_eq!(ast.fns[0].body_lines(&toks), (1, 4));
    }

    #[test]
    fn loop_scopes_cover_all_three_loop_forms() {
        let src = "fn f(xs: &[u32]) {\n\
                   for x in xs { a(x); }\n\
                   while let Some(v) = q.pop() { b(v); }\n\
                   loop { break; }\n\
                   }\n";
        let toks = lex(src).tokens;
        let ast = parse_src(src);
        let scopes = loop_scopes(&toks, ast.fns[0].body.expect("body"));
        let lines: Vec<u32> = scopes.iter().map(|s| s.line).collect();
        assert_eq!(lines, [2, 3, 4]);
        for s in &scopes {
            assert_eq!(toks[s.open].text, "{");
            assert_eq!(toks[s.close].text, "}");
        }
    }

    #[test]
    fn nested_loops_attribute_to_the_innermost() {
        let src = "fn f() {\n\
                   for i in 0..k {\n\
                   for j in 0..n { inner(j); }\n\
                   outer(i);\n\
                   }\n\
                   }\n";
        let toks = lex(src).tokens;
        let ast = parse_src(src);
        let scopes = loop_scopes(&toks, ast.fns[0].body.expect("body"));
        assert_eq!(scopes.len(), 2);
        let inner_call = toks.iter().position(|t| t.text == "inner").expect("inner");
        let outer_call = toks.iter().position(|t| t.text == "outer").expect("outer");
        assert_eq!(innermost_loop(&scopes, inner_call).map(|s| s.line), Some(3));
        assert_eq!(innermost_loop(&scopes, outer_call).map(|s| s.line), Some(2));
        let before = toks.iter().position(|t| t.text == "f").expect("f");
        assert!(innermost_loop(&scopes, before).is_none());
    }

    #[test]
    fn loop_headers_are_outside_the_scope() {
        // The iterator expression runs once; only the body is per-iteration.
        let src = "fn f(xs: &[u32]) { for x in xs.iter().map(cheap) { body(x); } }\n";
        let toks = lex(src).tokens;
        let ast = parse_src(src);
        let scopes = loop_scopes(&toks, ast.fns[0].body.expect("body"));
        assert_eq!(scopes.len(), 1);
        let map_call = toks.iter().position(|t| t.text == "map").expect("map");
        assert!(innermost_loop(&scopes, map_call).is_none());
        let body_call = toks.iter().position(|t| t.text == "body").expect("body");
        assert!(innermost_loop(&scopes, body_call).is_some());
    }
}

//! Hot-path allocation analysis: heap discipline on the solver and serve
//! hot regions.
//!
//! Built on the same token stream, [`crate::ast`] item index, and
//! conservative [`crate::callgraph`] as the panic and concurrency passes.
//! The paper's greedy family spends its entire budget inside a per-round
//! gain loop, and the serve layer answers every request from a worker
//! thread — a stray `collect()` or `format!` in either place turns into
//! megabytes of allocator traffic per solve. This pass computes **hot
//! regions** by forward reachability from a declared set of entry points
//! and derives four audit rules inside them:
//!
//! * `alloc-in-hot-loop` — a heap allocation or copy (`Vec`/`String`/
//!   `Box`/`Arc` construction, `collect`, `to_vec`, `clone`, `format!`,
//!   `vec!`) inside a loop body of a hot solver function, or anywhere in a
//!   function that is *called from* such a loop (it then allocates on
//!   every iteration). Buffers must be hoisted out of the loop and reused.
//! * `alloc-per-request` — a fresh `Vec`/`String` construction (or
//!   `format!`/`vec!`) on the serve request path, i.e. in a serve-crate
//!   function reachable from the per-request `worker_loop`. Response and
//!   parse buffers must come from per-worker scratch that lives across
//!   requests.
//! * `copy-in-kernel` — `to_vec`/`clone` inside the gain/cover kernel
//!   files ([`KERNEL_FILES`]); the kernels are written to operate on
//!   borrowed slices and must never copy.
//! * `growable-unreserved` — a loop-fed `Vec::push`/`String::push_str`
//!   whose binding is built with `Vec::new()`/`String::new()` and never
//!   `reserve`d before the loop; growth doubling inside a hot loop is
//!   hidden repeated allocation.
//!
//! ## Hot entry points
//!
//! The hot set is seeded from three places and closed over the call graph
//! with the same crate-tightened resolution as [`crate::lockgraph`] (the
//! raw whole-workspace method aliasing would make half the workspace
//! "hot" and drown the rules):
//!
//! 1. every solver module's solve-family functions (the registry's
//!    dispatch surface plus their `_with`/`_impl` internals) — each
//!    contains or drives the per-round selection loop;
//! 2. the serve crate's `worker_loop` — everything it reaches runs once
//!    per request;
//! 3. every function in the kernel files — `CoverState::gain`/`add_node`
//!    and the float helpers are the innermost loops of the whole system.
//!
//! Diagnostics carry shortest-chain provenance in the established style:
//! the chain from the entry point to the offending function, and for the
//! interprocedural loop rule also the loop's own `file:line`.
//!
//! All four rules are waivable (`// lint: allow(<rule>) — reason`) at the
//! reported allocation/copy/push line. The serve request path deliberately
//! does **not** flag `.to_string()`/`.collect()` or `json!` bodies:
//! endpoint JSON is built once per response by design, and the rule's
//! target is the buffers that *can* be reused (heads, parse scratch),
//! not the payload itself.

use std::collections::HashMap;

use crate::ast::{self, FnInfo, LoopScope};
use crate::callgraph::{CallGraph, FileInput};
use crate::lexer::{Tok, TokKind};
use crate::rules::{Violation, KEYWORDS};

/// Files whose every function is a hot kernel (`copy-in-kernel` scope).
pub const KERNEL_FILES: [&str; 3] = [
    "crates/core/src/cover.rs",
    "crates/core/src/float.rs",
    "crates/graph/src/float.rs",
];

/// Solve-family function names that seed the hot set when they live in a
/// solver module: the registry dispatch surface ([`DISPATCH_FNS`]'s names)
/// plus the `_with`/`_impl` internals the specs delegate to.
const HOT_SOLVER_FNS: [&str; 12] = [
    "solve",
    "solve_with",
    "solve_impl",
    "parallel_solve",
    "parallel_solve_with",
    "refine",
    "top_k_weight",
    "top_k_coverage",
    "random",
    "random_best_of",
    "solve_low_memory_normalized",
    "solve_until",
];

/// The serve-crate function whose reachability set is the request path.
const REQUEST_ENTRY: &str = "worker_loop";

/// Types whose `::new`/`::with_capacity`/`::from` paths construct heap
/// storage.
const ALLOC_TYPES: [&str; 4] = ["Vec", "String", "Box", "Arc"];

/// Whether `ty::ctor` heap-allocates at the call. `Vec::new()` and
/// `String::new()` are deliberately absent: they are zero-capacity and
/// allocation happens at the first push — which is `growable-unreserved`'s
/// finding, with the loop that feeds it as the anchor. `Box`/`Arc` always
/// allocate.
fn is_alloc_ctor(ty: &str, ctor: &str) -> bool {
    match ty {
        "Vec" | "String" => matches!(ctor, "with_capacity" | "from"),
        "Box" | "Arc" => matches!(ctor, "new" | "from"),
        _ => false,
    }
}

/// Method calls that allocate a fresh buffer or copy one.
const ALLOC_METHODS: [&str; 3] = ["collect", "to_vec", "clone"];

/// Macros that allocate.
const ALLOC_MACROS: [&str; 2] = ["format", "vec"];

/// Names never fed to call resolution: allocation/copy methods are
/// matched structurally, and resolving them by bare name would alias
/// every workspace `clone`/`push` into the hot set.
fn skip_resolution(name: &str) -> bool {
    ALLOC_METHODS.contains(&name)
        || matches!(
            name,
            "push" | "push_str" | "insert" | "reserve" | "drop" | "clear" | "len" | "extend"
        )
}

/// One allocation/copy event found in a function body.
struct AllocEvent {
    /// Token index of the triggering ident.
    tok: usize,
    /// 1-based line (violations anchor here).
    line: u32,
    /// Display form for the message: `Vec::with_capacity`, `collect`,
    /// `format!`.
    what: String,
    /// `to_vec`/`clone` copies (the `copy-in-kernel` subset).
    is_copy: bool,
    /// `Vec`/`String` construction or an alloc macro (the
    /// `alloc-per-request` subset).
    is_fresh_buffer: bool,
}

/// Shortest-path provenance toward a hot entry (for the hot set) or
/// toward the in-loop call site (for the loop-hot set).
#[derive(Clone)]
struct Reach {
    depth: u32,
    /// Predecessor node toward the seed; `None` at the seed itself.
    via: Option<usize>,
}

/// Provenance of a loop-hot seed: which hot function's loop calls it.
#[derive(Clone)]
struct LoopSeed {
    /// The hot function whose loop makes the callee loop-hot.
    caller: usize,
    /// `file:line` of the loop header in that caller.
    loop_file: String,
    loop_line: u32,
}

/// Runs the hot-path allocation pass and returns unwaived-rule findings
/// for the four heatpath rules.
pub fn analyze(files: &[FileInput<'_>], graph: &CallGraph) -> Vec<Violation> {
    let mut node_of: HashMap<(&str, u32, &str), usize> = HashMap::new();
    for (ni, n) in graph.nodes.iter().enumerate() {
        node_of.insert((n.file.as_str(), n.line, n.name.as_str()), ni);
    }
    let mut by_crate_name: HashMap<(&str, &str), Vec<usize>> = HashMap::new();
    let mut methods_by_name: HashMap<&str, Vec<usize>> = HashMap::new();
    for (ni, n) in graph.nodes.iter().enumerate() {
        by_crate_name
            .entry((n.crate_key.as_str(), n.name.as_str()))
            .or_default()
            .push(ni);
        if n.qual.is_some() {
            methods_by_name.entry(n.name.as_str()).or_default().push(ni);
        }
    }

    // Function contexts: every non-test fn with a body in a crate src tree.
    let mut fn_ctxs: Vec<FnCtx<'_>> = Vec::new();
    for f in files {
        let Some(ck) = crate::callgraph::crate_key(f.rel) else {
            continue;
        };
        for (ai, func) in f.ast.fns.iter().enumerate() {
            if func.in_test || func.body.is_none() {
                continue;
            }
            let excluded = nested_ranges(f.ast.fns.as_slice(), ai);
            let loops = func
                .body
                .map(|b| ast::loop_scopes(f.tokens, b))
                .unwrap_or_default();
            fn_ctxs.push(FnCtx {
                file: f,
                func,
                crate_key: ck.clone(),
                excluded,
                loops,
                node: node_of
                    .get(&(f.rel, func.line, func.name.as_str()))
                    .copied(),
            });
        }
    }

    // Call edges with their token position (loop membership matters),
    // resolved with the crate-tightened rules.
    let n = graph.nodes.len();
    let mut calls: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n]; // (callee, tok)
    let mut ctx_of_node: Vec<Option<usize>> = vec![None; n];
    for (ci, ctx) in fn_ctxs.iter().enumerate() {
        let Some(ni) = ctx.node else { continue };
        ctx_of_node[ni] = Some(ci);
        let Some((open, close)) = ctx.func.body else {
            continue;
        };
        let tokens = ctx.file.tokens;
        for j in open + 1..close.min(tokens.len()) {
            if ctx.excluded.iter().any(|&(a, b)| j >= a && j <= b) {
                continue;
            }
            let t = &tokens[j];
            if t.kind != TokKind::Ident
                || !is_call_shape(tokens, j)
                || skip_resolution(&t.text)
                || KEYWORDS.contains(&t.text.as_str())
            {
                continue;
            }
            for m in resolve_call(ctx, j, graph, &by_crate_name, &methods_by_name) {
                calls[ni].push((m, j));
            }
        }
    }

    // Hot set: forward BFS from the entries with predecessor provenance.
    let mut hot: Vec<Option<Reach>> = vec![None; n];
    let mut queue: Vec<usize> = Vec::new();
    for (ni, node) in graph.nodes.iter().enumerate() {
        if is_hot_entry(node) {
            hot[ni] = Some(Reach {
                depth: 0,
                via: None,
            });
            queue.push(ni);
        }
    }
    let mut qi = 0;
    while qi < queue.len() {
        let u = queue[qi];
        qi += 1;
        let d = hot[u].as_ref().map_or(0, |r| r.depth);
        for &(v, _) in &calls[u] {
            if hot[v].is_none() {
                hot[v] = Some(Reach {
                    depth: d + 1,
                    via: Some(u),
                });
                queue.push(v);
            }
        }
    }

    // Request path: forward BFS from `worker_loop` (serve crate only —
    // cross-crate reachability re-enters the solver hot set, which the
    // loop rule already owns).
    let mut request: Vec<Option<Reach>> = vec![None; n];
    let mut queue: Vec<usize> = Vec::new();
    for (ni, node) in graph.nodes.iter().enumerate() {
        if node.crate_key == "serve" && node.name == REQUEST_ENTRY {
            request[ni] = Some(Reach {
                depth: 0,
                via: None,
            });
            queue.push(ni);
        }
    }
    let mut qi = 0;
    while qi < queue.len() {
        let u = queue[qi];
        qi += 1;
        let d = request[u].as_ref().map_or(0, |r| r.depth);
        for &(v, _) in &calls[u] {
            if request[v].is_none() && graph.nodes[v].crate_key == "serve" {
                request[v] = Some(Reach {
                    depth: d + 1,
                    via: Some(u),
                });
                queue.push(v);
            }
        }
    }

    // Loop-hot set: functions called (transitively) from inside a loop of
    // a hot non-serve function — everything they allocate happens once
    // per iteration. Seeds carry the loop's location for the diagnostic.
    let mut loop_hot: Vec<Option<(Reach, usize)>> = vec![None; n]; // (reach, seed idx)
    let mut seeds: Vec<LoopSeed> = Vec::new();
    let mut queue: Vec<usize> = Vec::new();
    for ctx in &fn_ctxs {
        let Some(ni) = ctx.node else { continue };
        if hot[ni].is_none() || ctx.crate_key == "serve" || ctx.loops.is_empty() {
            continue;
        }
        for &(v, tok) in &calls[ni] {
            let Some(scope) = ast::innermost_loop(&ctx.loops, tok) else {
                continue;
            };
            if loop_hot[v].is_none() {
                seeds.push(LoopSeed {
                    caller: ni,
                    loop_file: ctx.file.rel.to_string(),
                    loop_line: scope.line,
                });
                loop_hot[v] = Some((
                    Reach {
                        depth: 0,
                        via: None,
                    },
                    seeds.len() - 1,
                ));
                queue.push(v);
            }
        }
    }
    let mut qi = 0;
    while qi < queue.len() {
        let u = queue[qi];
        qi += 1;
        let (d, seed) = loop_hot[u].as_ref().map_or((0, 0), |(r, s)| (r.depth, *s));
        for &(v, _) in &calls[u] {
            if loop_hot[v].is_none() && graph.nodes[v].crate_key != "serve" {
                loop_hot[v] = Some((
                    Reach {
                        depth: d + 1,
                        via: Some(u),
                    },
                    seed,
                ));
                queue.push(v);
            }
        }
    }

    // Body scans: map allocation events to rules.
    let mut out: Vec<Violation> = Vec::new();
    for ctx in &fn_ctxs {
        let Some(ni) = ctx.node else { continue };
        let is_kernel = KERNEL_FILES.contains(&ctx.file.rel);
        let is_serve = ctx.crate_key == "serve";
        let holder = graph.nodes[ni].display();
        let events = alloc_events(ctx);

        for ev in &events {
            // Kernel copies are the kernel rule's finding, never the
            // generic loop rule's — one diagnostic per site.
            if is_kernel && ev.is_copy {
                out.push(Violation {
                    rule: "copy-in-kernel",
                    file: ctx.file.rel.to_string(),
                    line: ev.line,
                    message: format!(
                        "`{}` copies inside kernel fn `{holder}` ({} is a gain/cover kernel); kernels operate on borrowed slices and must never copy",
                        ev.what, ctx.file.rel
                    ),
                });
                continue;
            }
            if is_serve {
                if ev.is_fresh_buffer && request[ni].is_some() {
                    out.push(Violation {
                        rule: "alloc-per-request",
                        file: ctx.file.rel.to_string(),
                        line: ev.line,
                        message: format!(
                            "`{}` allocates per request in `{holder}` (request path: {}); serve from a per-worker scratch buffer that lives across requests",
                            ev.what,
                            chain_to(graph, &request, ni),
                        ),
                    });
                }
                continue;
            }
            if hot[ni].is_some() {
                if let Some(scope) = ast::innermost_loop(&ctx.loops, ev.tok) {
                    out.push(Violation {
                        rule: "alloc-in-hot-loop",
                        file: ctx.file.rel.to_string(),
                        line: ev.line,
                        message: format!(
                            "`{}` allocates inside the hot loop at line {} in `{holder}` (hot via {}); hoist the buffer out of the loop and reuse it",
                            ev.what,
                            scope.line,
                            chain_to(graph, &hot, ni),
                        ),
                    });
                    continue;
                }
            }
            if let Some((_, seed_idx)) = &loop_hot[ni] {
                let seed = &seeds[*seed_idx];
                out.push(Violation {
                    rule: "alloc-in-hot-loop",
                    file: ctx.file.rel.to_string(),
                    line: ev.line,
                    message: format!(
                        "`{}` in `{holder}` allocates on every iteration of the hot loop at {}:{} ({}); hoist the buffer to the caller or reuse scratch",
                        ev.what,
                        seed.loop_file,
                        seed.loop_line,
                        loop_chain(graph, &hot, &loop_hot, seed, ni),
                    ),
                });
            }
        }

        // Loop-fed growable buffers with no capacity reservation, in any
        // hot-region function (solver hot set or serve request path).
        if hot[ni].is_some() || request[ni].is_some() {
            growable_findings(ctx, &holder, &mut out);
        }
    }

    out.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    out.dedup_by(|a, b| a.rule == b.rule && a.file == b.file && a.line == b.line);
    out
}

/// Everything needed to scan one function body.
struct FnCtx<'a> {
    file: &'a FileInput<'a>,
    func: &'a FnInfo,
    crate_key: String,
    /// Token ranges of nested fns (excluded from this fn's scans).
    excluded: Vec<(usize, usize)>,
    loops: Vec<LoopScope>,
    node: Option<usize>,
}

/// Whether a call-graph node is a declared hot entry point.
fn is_hot_entry(node: &crate::callgraph::FnNode) -> bool {
    if KERNEL_FILES.contains(&node.file.as_str()) {
        return true;
    }
    node.crate_key == "core"
        && HOT_SOLVER_FNS.contains(&node.name.as_str())
        && node
            .module
            .iter()
            .any(|m| crate::audit_rules::DISPATCH_MODULES.contains(&m.as_str()))
}

/// Token ranges (inclusive) of fns nested inside `fns[ai]`'s body.
fn nested_ranges(fns: &[FnInfo], ai: usize) -> Vec<(usize, usize)> {
    let Some((open, close)) = fns[ai].body else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for (bi, other) in fns.iter().enumerate() {
        if bi == ai {
            continue;
        }
        if let Some((o, c)) = other.body {
            if o > open && c < close {
                out.push((other.sig.0, c));
            }
        }
    }
    out
}

/// True when ident `j` heads a call: `name(`, `name::<T>(`.
fn is_call_shape(tokens: &[Tok], j: usize) -> bool {
    match tokens.get(j + 1).map(|t| t.text.as_str()) {
        Some("(") => true,
        Some("::") if tokens.get(j + 2).is_some_and(|t| t.text == "<") => {
            let mut angle = 1i64;
            let mut k = j + 3;
            while k < tokens.len() && angle > 0 {
                match tokens[k].text.as_str() {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    _ => {}
                }
                k += 1;
            }
            tokens.get(k).is_some_and(|t| t.text == "(")
        }
        _ => false,
    }
}

/// Resolves the call at ident `j` to workspace nodes — the call graph's
/// conservative rules tightened for hot-set tracking: method aliasing
/// stays within the caller's crate (whole-workspace `.len()` smearing
/// would make half the workspace hot), and the caller itself is excluded.
fn resolve_call(
    ctx: &FnCtx<'_>,
    j: usize,
    graph: &CallGraph,
    by_crate_name: &HashMap<(&str, &str), Vec<usize>>,
    methods_by_name: &HashMap<&str, Vec<usize>>,
) -> Vec<usize> {
    let tokens = ctx.file.tokens;
    let name = tokens[j].text.as_str();
    let is_method = j > 0 && tokens[j - 1].text == ".";
    let mut targets: Vec<usize> = Vec::new();
    if is_method {
        if let Some(cands) = methods_by_name.get(name) {
            targets.extend(
                cands
                    .iter()
                    .copied()
                    .filter(|&i| graph.nodes[i].crate_key == ctx.crate_key),
            );
        }
    } else {
        let mut quals: Vec<&str> = Vec::new();
        let mut k = j;
        while k >= 2 && tokens[k - 1].text == "::" && tokens[k - 2].kind == TokKind::Ident {
            quals.push(tokens[k - 2].text.as_str());
            k -= 2;
        }
        let target_crate = quals
            .iter()
            .find_map(|q| q.strip_prefix("pcover_"))
            .unwrap_or(ctx.crate_key.as_str());
        let Some(cands) = by_crate_name.get(&(target_crate, name)) else {
            return targets;
        };
        let hint = quals
            .iter()
            .find(|q| !matches!(**q, "crate" | "self" | "super") && !q.starts_with("pcover_"));
        if let Some(hint) = hint {
            // A qualifier that matches no workspace type or module names a
            // foreign type (`Vec::new`, `HashMap::from`): resolving its
            // common-named method to every same-named workspace fn would
            // manufacture hot paths, so an unmatched hint resolves to
            // nothing. (The lock pass falls back to all candidates there —
            // over-approximation is conservative for lock ordering but
            // anti-conservative for hotness.)
            targets.extend(cands.iter().copied().filter(|&i| {
                graph.nodes[i].qual.as_deref() == Some(*hint)
                    || graph.nodes[i].module.iter().any(|m| m == hint)
            }));
        } else {
            targets.extend(cands.iter().copied());
        }
    }
    if let Some(own) = ctx.node {
        targets.retain(|&t| t != own);
    }
    targets.sort_unstable();
    targets.dedup();
    targets
}

/// All allocation/copy events in a fn body, outside nested-fn ranges.
fn alloc_events(ctx: &FnCtx<'_>) -> Vec<AllocEvent> {
    let Some((open, close)) = ctx.func.body else {
        return Vec::new();
    };
    let tokens = ctx.file.tokens;
    let mut out = Vec::new();
    for j in open + 1..close.min(tokens.len()) {
        if ctx.excluded.iter().any(|&(a, b)| j >= a && j <= b) {
            continue;
        }
        let t = &tokens[j];
        if t.kind != TokKind::Ident {
            continue;
        }
        let name = t.text.as_str();
        // `Vec::with_capacity(..)` — an ALLOC_TYPES path to a ctor.
        if ALLOC_TYPES.contains(&name) && tokens.get(j + 1).is_some_and(|n| n.text == "::") {
            // Skip an optional turbofish: `Vec::<u8>::with_capacity`.
            let mut k = j + 2;
            if tokens.get(k).is_some_and(|n| n.text == "<") {
                let mut angle = 1i64;
                k += 1;
                while k < tokens.len() && angle > 0 {
                    match tokens[k].text.as_str() {
                        "<" => angle += 1,
                        ">" => angle -= 1,
                        _ => {}
                    }
                    k += 1;
                }
                if tokens.get(k).is_none_or(|n| n.text != "::") {
                    continue;
                }
                k += 1;
            }
            let is_ctor = tokens.get(k).is_some_and(|n| is_alloc_ctor(name, &n.text))
                && tokens.get(k + 1).is_some_and(|n| n.text == "(");
            if is_ctor {
                out.push(AllocEvent {
                    tok: j,
                    line: t.line,
                    what: format!("{name}::{}", tokens[k].text),
                    is_copy: false,
                    is_fresh_buffer: matches!(name, "Vec" | "String"),
                });
            }
            continue;
        }
        // `.collect(..)` / `.to_vec()` / `.clone()` method calls.
        if ALLOC_METHODS.contains(&name)
            && j > 0
            && tokens[j - 1].text == "."
            && is_call_shape(tokens, j)
        {
            out.push(AllocEvent {
                tok: j,
                line: t.line,
                what: name.to_string(),
                is_copy: matches!(name, "to_vec" | "clone"),
                is_fresh_buffer: false,
            });
            continue;
        }
        // `format!(..)` / `vec![..]` macros. A `format!` inside an error
        // constructor (`return Err(.. format!(..))`, `.map_err(|_| ..)`,
        // `.ok_or_else(|| ..)`) never runs on the happy path — flagging
        // cold diagnostics would drown the rules, so those are skipped.
        if ALLOC_MACROS.contains(&name) && tokens.get(j + 1).is_some_and(|n| n.text == "!") {
            if name == "format" {
                let back = j.saturating_sub(12);
                let cold = tokens[back..j].iter().any(|t| {
                    t.kind == TokKind::Ident
                        && matches!(
                            t.text.as_str(),
                            "Err" | "map_err" | "ok_or" | "ok_or_else" | "unwrap_or_else"
                        )
                });
                if cold {
                    continue;
                }
            }
            out.push(AllocEvent {
                tok: j,
                line: t.line,
                what: format!("{name}!"),
                is_copy: false,
                is_fresh_buffer: true,
            });
        }
    }
    out
}

/// Loop-fed `push`/`push_str` on a binding built with `Vec::new()`/
/// `String::new()` and never `reserve`d before the loop.
fn growable_findings(ctx: &FnCtx<'_>, holder: &str, out: &mut Vec<Violation>) {
    let Some((body_open, _)) = ctx.func.body else {
        return;
    };
    let tokens = ctx.file.tokens;
    for scope in &ctx.loops {
        for j in scope.open + 1..scope.close.min(tokens.len()) {
            if ctx.excluded.iter().any(|&(a, b)| j >= a && j <= b) {
                continue;
            }
            let t = &tokens[j];
            if t.kind != TokKind::Ident
                || !matches!(t.text.as_str(), "push" | "push_str")
                || j < 2
                || tokens[j - 1].text != "."
                || tokens.get(j + 1).is_none_or(|n| n.text != "(")
            {
                continue;
            }
            // Plain single-ident receiver only: `out.push(..)`. Field and
            // chained receivers (`self.buf.push`) have lifetimes the local
            // scan cannot see.
            let recv = &tokens[j - 2];
            if recv.kind != TokKind::Ident
                || recv.text == "self"
                || (j >= 3 && tokens[j - 3].text == ".")
            {
                continue;
            }
            let Some((ty, init_line)) =
                growable_unreserved_init(tokens, body_open, scope.header, &recv.text)
            else {
                continue;
            };
            out.push(Violation {
                rule: "growable-unreserved",
                file: ctx.file.rel.to_string(),
                line: t.line,
                message: format!(
                    "loop-fed `{}.{}(..)` in `{holder}` grows from `{ty}::new()` (line {init_line}) with no `with_capacity`/`reserve`; pre-size the buffer before the loop",
                    recv.text, t.text
                ),
            });
        }
    }
}

/// When `name` is `let`-bound to a bare `Vec::new()`/`String::new()`
/// before token `before` and never `reserve`d in between, returns the
/// type name and the init line. `with_capacity` inits, re-assignments the
/// scan cannot prove, and any `name.reserve*(..)` call clear the finding.
fn growable_unreserved_init(
    tokens: &[Tok],
    body_open: usize,
    before: usize,
    name: &str,
) -> Option<(String, u32)> {
    let mut init: Option<(String, u32)> = None;
    let mut i = body_open + 1;
    while i < before {
        let t = &tokens[i];
        if t.kind == TokKind::Ident && t.text == name {
            // `name . reserve (` / `reserve_exact` — capacity is managed.
            if tokens.get(i + 1).is_some_and(|n| n.text == ".")
                && tokens
                    .get(i + 2)
                    .is_some_and(|n| n.text.starts_with("reserve"))
            {
                return None;
            }
            // `let [mut] name = <init>` — classify the initializer.
            let is_let = (i >= 1 && tokens[i - 1].text == "let")
                || (i >= 2 && tokens[i - 1].text == "mut" && tokens[i - 2].text == "let");
            if is_let && tokens.get(i + 1).is_some_and(|n| n.text == "=") {
                let ty = &tokens[i + 2];
                let bare_new = ty.kind == TokKind::Ident
                    && matches!(ty.text.as_str(), "Vec" | "String")
                    && tokens.get(i + 3).is_some_and(|n| n.text == "::")
                    && tokens.get(i + 4).is_some_and(|n| n.text == "new")
                    && tokens.get(i + 5).is_some_and(|n| n.text == "(")
                    && tokens.get(i + 6).is_some_and(|n| n.text == ")");
                init = bare_new.then(|| (ty.text.clone(), t.line));
            }
        }
        i += 1;
    }
    init
}

/// `entry -> mid -> fn` chain from the nearest seed of `reach` to `ni`.
fn chain_to(graph: &CallGraph, reach: &[Option<Reach>], ni: usize) -> String {
    let mut names = vec![format!("`{}`", graph.nodes[ni].display())];
    let mut cur = ni;
    while let Some(r) = &reach[cur] {
        match r.via {
            Some(v) => {
                names.push(format!("`{}`", graph.nodes[v].display()));
                cur = v;
            }
            None => break,
        }
    }
    names.reverse();
    names.join(" -> ")
}

/// Full chain for a loop-hot finding: the hot chain of the looping
/// caller, then the call chain from its loop down to `ni`.
fn loop_chain(
    graph: &CallGraph,
    hot: &[Option<Reach>],
    loop_hot: &[Option<(Reach, usize)>],
    seed: &LoopSeed,
    ni: usize,
) -> String {
    let mut tail = vec![format!("`{}`", graph.nodes[ni].display())];
    let mut cur = ni;
    while let Some((r, _)) = &loop_hot[cur] {
        match r.via {
            Some(v) => {
                tail.push(format!("`{}`", graph.nodes[v].display()));
                cur = v;
            }
            None => break,
        }
    }
    tail.reverse();
    format!(
        "called via {} -> {}",
        chain_to(graph, hot, seed.caller),
        tail.join(" -> ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast;
    use crate::lexer::lex;

    /// Runs the pass over a set of (path, src) files.
    fn analyze_files(files: &[(&str, &str)]) -> Vec<Violation> {
        let lexed: Vec<_> = files.iter().map(|(_, src)| lex(src)).collect();
        let asts: Vec<_> = lexed.iter().map(|l| ast::parse(&l.tokens)).collect();
        let inputs: Vec<FileInput<'_>> = files
            .iter()
            .zip(lexed.iter())
            .zip(asts.iter())
            .map(|(((rel, _), l), a)| FileInput {
                rel,
                tokens: &l.tokens,
                ast: a,
                panic_sites: Vec::new(),
            })
            .collect();
        let graph = crate::callgraph::build(&inputs);
        analyze(&inputs, &graph)
    }

    fn analyze_src(rel: &str, src: &str) -> Vec<Violation> {
        analyze_files(&[(rel, src)])
    }

    #[test]
    fn collect_in_solver_round_loop_fires() {
        let src = "pub fn solve_with(g: &G, k: usize) -> R {\n\
                   let mut order = Vec::with_capacity(k);\n\
                   for _ in 0..k {\n\
                   let slices: Vec<u32> = g.items().collect();\n\
                   order.push(pick(&slices));\n\
                   }\n\
                   order\n\
                   }\n";
        let out = analyze_src("crates/core/src/greedy.rs", src);
        let rules: Vec<_> = out.iter().map(|v| v.rule).collect();
        assert_eq!(rules, ["alloc-in-hot-loop"], "{out:?}");
        assert_eq!(out[0].line, 4);
        assert!(out[0].message.contains("hot loop at line 3"));
        assert!(out[0].message.contains("greedy::solve_with"));
        // with_capacity outside the loop, and the reserved push, are fine.
    }

    #[test]
    fn callee_allocating_inside_a_hot_loop_fires_with_chain() {
        let src = "pub fn solve_with(g: &G, k: usize) {\n\
                   for _ in 0..k { helper(g); }\n\
                   }\n\
                   fn helper(g: &G) -> String { format!(\"{g:?}\") }\n";
        let out = analyze_src("crates/core/src/lazy.rs", src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "alloc-in-hot-loop");
        assert_eq!(out[0].line, 4, "anchored at the format! in the callee");
        assert!(
            out[0]
                .message
                .contains("every iteration of the hot loop at crates/core/src/lazy.rs:2"),
            "{}",
            out[0].message
        );
        assert!(
            out[0]
                .message
                .contains("via `lazy::solve_with` -> `lazy::helper`"),
            "{}",
            out[0].message
        );
    }

    #[test]
    fn cold_fns_and_cold_crates_stay_silent() {
        // Same body, but neither a solver module nor reachable from one.
        let src = "pub fn render(g: &G, k: usize) {\n\
                   for _ in 0..k { let _ = g.items().collect::<Vec<u32>>(); }\n\
                   }\n";
        assert!(analyze_src("crates/cli/src/commands.rs", src).is_empty());
        assert!(analyze_src("crates/core/src/report.rs", src).is_empty());
    }

    #[test]
    fn copy_in_kernel_fires_on_to_vec_and_clone() {
        let src = "pub fn gain(xs: &[f64]) -> Vec<f64> {\n\
                   let ys = xs.to_vec();\n\
                   ys.clone()\n\
                   }\n";
        let out = analyze_src("crates/core/src/cover.rs", src);
        let rules: Vec<_> = out.iter().map(|v| (v.rule, v.line)).collect();
        assert_eq!(
            rules,
            [("copy-in-kernel", 2), ("copy-in-kernel", 3)],
            "{out:?}"
        );
        assert!(out[0].message.contains("`to_vec`"));
        assert!(out[0].message.contains("cover::gain"));
    }

    #[test]
    fn alloc_per_request_fires_on_the_worker_path_with_chain() {
        let src = "fn worker_loop(state: &S) {\n\
                   while let Some(mut c) = state.queue.pop() { handle(&mut c); }\n\
                   }\n\
                   fn handle(c: &mut C) { let head = format!(\"HTTP/1.1 200 OK\"); send(c, &head); }\n\
                   fn send(c: &mut C, s: &str) {}\n";
        let out = analyze_src("crates/serve/src/server.rs", src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "alloc-per-request");
        assert_eq!(out[0].line, 4);
        assert!(
            out[0]
                .message
                .contains("request path: `server::worker_loop` -> `server::handle`"),
            "{}",
            out[0].message
        );
    }

    #[test]
    fn serve_fns_off_the_request_path_stay_silent() {
        // Startup code allocates freely; only worker_loop's cone is hot.
        let src = "pub fn start(cfg: &C) { let banner = format!(\"up\"); log(&banner); }\n\
                   fn log(s: &str) {}\n";
        assert!(analyze_src("crates/serve/src/server.rs", src).is_empty());
    }

    #[test]
    fn keep_alive_connection_loop_fires_on_per_request_alloc_but_not_reuse() {
        // The keep-alive shape: worker_loop hands the stream to a
        // per-connection loop that answers many requests. A fresh buffer
        // per iteration fires; the reused-buffer idiom stays silent.
        let fresh = "fn worker_loop(state: &S) {\n\
                     while let Some(mut c) = state.queue.pop() { handle_connection(state, &mut c); }\n\
                     }\n\
                     fn handle_connection(state: &S, c: &mut C) {\n\
                     loop { let head = String::with_capacity(256); answer(c, &head); }\n\
                     }\n\
                     fn answer(c: &mut C, s: &str) {}\n";
        let out = analyze_src("crates/serve/src/server.rs", fresh);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "alloc-per-request");
        assert!(
            out[0]
                .message
                .contains("`server::worker_loop` -> `server::handle_connection`"),
            "{}",
            out[0].message
        );

        let reused = "fn worker_loop(state: &S) {\n\
                      let mut head = String::new();\n\
                      while let Some(mut c) = state.queue.pop() { handle_connection(&mut c, &mut head); }\n\
                      }\n\
                      fn handle_connection(c: &mut C, head: &mut String) {\n\
                      loop { head.clear(); answer(c, head); }\n\
                      }\n\
                      fn answer(c: &mut C, s: &mut String) {}\n";
        assert!(analyze_src("crates/serve/src/server.rs", reused).is_empty());
    }

    #[test]
    fn coalescing_path_in_a_sibling_module_is_covered_cross_file() {
        // Single-flight lives in its own module; allocations there are
        // still on the request path once a server fn calls into it.
        let server = "fn worker_loop(state: &S) {\n\
                      while let Some(mut c) = state.queue.pop() { cached_solve(state, &mut c); }\n\
                      }\n\
                      fn cached_solve(state: &S, c: &mut C) { begin(state); }\n";
        let flight = "pub fn begin(state: &S) -> String { format!(\"leader\") }\n";
        let out = analyze_files(&[
            ("crates/serve/src/server.rs", server),
            ("crates/serve/src/flight.rs", flight),
        ]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "alloc-per-request");
        assert!(
            out[0].message.contains("`flight::begin`"),
            "{}",
            out[0].message
        );
    }

    #[test]
    fn growable_unreserved_fires_only_without_capacity() {
        let src = "pub fn solve_with(g: &G, k: usize) -> Vec<u32> {\n\
                   let mut order = Vec::new();\n\
                   let mut sized = Vec::with_capacity(k);\n\
                   for i in 0..k {\n\
                   order.push(i);\n\
                   sized.push(i);\n\
                   }\n\
                   order\n\
                   }\n";
        let out = analyze_src("crates/core/src/greedy.rs", src);
        let rules: Vec<_> = out.iter().map(|v| (v.rule, v.line)).collect();
        assert_eq!(rules, [("growable-unreserved", 5)], "{out:?}");
        assert!(out[0].message.contains("`order.push(..)`"));
        assert!(out[0].message.contains("`Vec::new()` (line 2)"));
    }

    #[test]
    fn reserve_before_the_loop_clears_growable() {
        let src = "pub fn solve_with(g: &G, k: usize) -> Vec<u32> {\n\
                   let mut order = Vec::new();\n\
                   order.reserve(k);\n\
                   for i in 0..k { order.push(i); }\n\
                   order\n\
                   }\n";
        assert!(analyze_src("crates/core/src/greedy.rs", src).is_empty());
    }

    #[test]
    fn field_receivers_are_skipped_by_growable() {
        let src = "pub fn solve_with(s: &mut S, k: usize) {\n\
                   for i in 0..k { s.order.push(i); }\n\
                   }\n";
        assert!(analyze_src("crates/core/src/greedy.rs", src).is_empty());
    }

    #[test]
    fn kernel_fns_seed_the_hot_set() {
        // A loop inside a kernel file is a hot loop even with no solver
        // in sight.
        let src = "pub fn add_node(xs: &[f64]) {\n\
                   for x in xs { let _ = vec![*x]; }\n\
                   }\n";
        let out = analyze_src("crates/graph/src/float.rs", src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "alloc-in-hot-loop");
        assert!(out[0].message.contains("`vec!`"));
    }

    #[test]
    fn method_resolution_stays_within_the_callers_crate() {
        // core's hot loop calls `.emit()`; the same-named serve method
        // allocates, but cross-crate method smearing must not drag it in.
        let core = "pub fn solve_with(o: &O, k: usize) {\n\
                    for _ in 0..k { o.emit(); }\n\
                    }\n";
        let serve = "pub struct M;\n\
                     impl M { pub fn emit(&self) -> String { format!(\"x\") } }\n";
        let out = analyze_files(&[
            ("crates/core/src/greedy.rs", core),
            ("crates/serve/src/metrics.rs", serve),
        ]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn turbofish_collect_is_detected() {
        let src = "pub fn solve_with(g: &G, k: usize) {\n\
                   for _ in 0..k { let v = g.items().collect::<Vec<u32>>(); use_it(&v); }\n\
                   }\n\
                   fn use_it(v: &[u32]) {}\n";
        let out = analyze_src("crates/core/src/delta.rs", src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "alloc-in-hot-loop");
        assert!(out[0].message.contains("`collect`"));
    }
}

//! The semantic audit pass (`cargo run -p xtask -- audit`).
//!
//! Seven rule families layered on the item index ([`crate::ast`]) and call
//! graph ([`crate::callgraph`]) that the lexical lint pass cannot express:
//!
//! - **`panic-path`** — no public function of `pcover_core` may
//!   transitively reach an unwaived panicking construct; violations carry
//!   the shortest call chain to the site.
//! - **`par-argmax`** / **`par-float-accum`** / **`par-shared-state`** —
//!   inside rayon combinator call chains, raw float argmax comparisons and
//!   float accumulation must route through the audited helpers in
//!   `pcover_core::float` (`improves_argmax`, `cmp_gain`, `sum_stable`),
//!   and interior-mutability types (`Mutex`/`RefCell`/atomics) must not be
//!   used for aggregation. These are the static side of the paper's
//!   "parallel output is identical to sequential" claim.
//! - **`solver-dispatch`** — downstream layers (CLI, bench experiments,
//!   adapt, examples, the facade) must route solver invocations through
//!   the `pcover_core::Registry` / `SolverSpec::solve` harness rather than
//!   calling `greedy::solve`-style free functions directly, so every entry
//!   point gets the shared config/observer plumbing and every solver added
//!   to the registry is reachable everywhere with no downstream edits.
//!   `pcover-core` itself and the criterion benches (which measure the raw
//!   free functions against the harness) are out of scope.
//! - **`unsafe-scope`** — `unsafe` tokens are pinned to the one audited
//!   module allowed to contain them (`crates/store/src/mmap.rs`, the mmap
//!   wrapper behind the zero-copy container path). The store crate root
//!   carries `#![deny(unsafe_code)]` instead of the workspace-wide
//!   `forbid` precisely so that module can `allow` it; this rule is what
//!   keeps the relaxation from leaking anywhere else.
//! - **`lock-order-cycle`** / **`lock-across-blocking`** /
//!   **`condvar-misuse`** / **`guard-across-callback`** — the concurrency
//!   pass ([`crate::lockgraph`]): guard scopes are tracked lexically, lock
//!   acquisition order is propagated over the call graph into a workspace
//!   order graph, and guards must not be held across indefinitely-blocking
//!   operations or user callbacks; condvar waits need predicate loops and
//!   notifies need the associated lock. Diagnostics carry the same
//!   shortest-call-chain provenance as `panic-path`.
//! - **`alloc-in-hot-loop`** / **`alloc-per-request`** /
//!   **`copy-in-kernel`** / **`growable-unreserved`** — the hot-path
//!   allocation pass ([`crate::heatpath`]): hot regions are computed by
//!   call-graph reachability from the solver solve-family entry points,
//!   the serve `worker_loop`, and the gain/cover kernels; heap
//!   allocations and copies inside them (attributed to the innermost
//!   enclosing loop) must be hoisted into reusable scratch. Diagnostics
//!   carry the same shortest-call-chain provenance as `panic-path`.
//! - **`stale-waiver`** / **`shadowed-waiver`** — every waiver must still
//!   suppress at least one raw finding, and a line waiver fully covered by
//!   an enclosing `allow-file` must be removed.
//! - **`api-drift`** — the per-crate public surface must match the
//!   committed snapshots in `crates/xtask/api/` (see
//!   [`crate::api_snapshot`]).
//!
//! Findings for the panic, parallel, dispatch, and concurrency rules are
//! waivable with the normal `// lint: allow(<rule>) — <reason>` grammar;
//! the hygiene and drift rules are not (see
//! [`crate::rules::WAIVABLE_AUDIT_RULES`]).

use std::collections::BTreeMap;
use std::path::Path;

use crate::api_snapshot::{self, SnapshotInput};
use crate::ast::{self, FileAst};
use crate::callgraph::{self, FileInput};
use crate::lexer::{lex, Lexed, Tok, TokKind};
use crate::rules::{
    classify, names_cover_value, parse_waivers, raw_violations, Violation, Waiver,
    WAIVABLE_AUDIT_RULES,
};

/// One workspace file handed to the audit: relative path plus contents.
pub struct AuditFile {
    /// Workspace-relative path, forward slashes.
    pub rel: String,
    /// File contents.
    pub src: String,
}

/// Result of a whole-workspace audit.
#[derive(Debug, Default)]
pub struct AuditOutcome {
    /// Findings that survived waiver matching, sorted by (file, line).
    pub violations: Vec<Violation>,
    /// Audit findings suppressed by waivers.
    pub waivers_used: usize,
    /// Snapshot files (re)written when blessing; empty otherwise.
    pub blessed: Vec<String>,
}

/// The panic-family lint rules whose unwaived findings seed reachability.
const PANIC_RULES: [&str; 4] = ["no-unwrap", "no-expect", "no-panic", "no-index"];

/// The crate whose public surface must be panic-free.
const PANIC_FREE_CRATE: &str = "core";

/// Rayon combinator entry points that start a parallel call chain.
const PAR_ENTRIES: [&str; 7] = [
    "par_iter",
    "par_iter_mut",
    "into_par_iter",
    "par_chunks",
    "par_chunks_mut",
    "par_bridge",
    "par_extend",
];

/// Interior-mutability types that must not aggregate parallel results.
const SHARED_STATE_TYPES: [&str; 4] = ["Mutex", "RwLock", "RefCell", "Cell"];

/// Method names that betray shared-state aggregation even when the type
/// was declared outside the rayon region (`m.lock()`, `a.fetch_add(..)`).
/// `swap`/`get_mut` are deliberately absent: they are common on plain
/// collections and would drown the rule in false positives.
const SHARED_STATE_METHODS: [&str; 11] = [
    "lock",
    "borrow_mut",
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
];

/// Solver modules whose free functions must not be called directly from
/// the dispatch-scoped layers (rule `solver-dispatch`). Shared with the
/// hot-path pass ([`crate::heatpath`]), whose solve-family entry points
/// live in these modules.
pub(crate) const DISPATCH_MODULES: [&str; 11] = [
    "greedy",
    "lazy",
    "delta",
    "parallel",
    "partitioned",
    "streaming",
    "stochastic",
    "brute_force",
    "local_search",
    "baselines",
    "maxvc",
];

/// The solver entry points covered by `solver-dispatch`. Other functions in
/// the same modules (`brute_force::subset_count`, `evaluate_selection`, the
/// extension solvers) are utilities the registry deliberately does not
/// wrap, and stay callable.
const DISPATCH_FNS: [&str; 9] = [
    "solve",
    "parallel_solve",
    "refine",
    "top_k_weight",
    "top_k_coverage",
    "random",
    "random_best_of",
    "solve_low_memory_normalized",
    "resolve_warm",
];

/// Path prefixes where `solver-dispatch` applies: every layer downstream
/// of `pcover-core`. `crates/bench/src/` covers the experiment binaries but
/// not `crates/bench/benches/`, whose criterion benches compare the raw
/// free functions against the registry harness by design.
const DISPATCH_SCOPES: [&str; 6] = [
    "crates/cli/src/",
    "crates/bench/src/",
    "crates/adapt/src/",
    "crates/serve/src/",
    "examples/",
    "src/",
];

/// Runs the full audit. `bless` rewrites the API snapshots instead of
/// diffing against them.
pub fn run(root: &Path, files: &[AuditFile], bless: bool) -> AuditOutcome {
    let mut out = AuditOutcome::default();

    // Lex/parse each file once; everything downstream shares the results.
    let lexed: Vec<Lexed> = files.iter().map(|f| lex(&f.src)).collect();
    let asts: Vec<FileAst> = lexed.iter().map(|l| ast::parse(&l.tokens)).collect();
    let waivers: Vec<Vec<Waiver>> = files
        .iter()
        .zip(&lexed)
        .map(|(f, l)| {
            // Malformed waivers are the lint pass's finding (waiver-form);
            // the audit only needs the well-formed ones.
            let mut scratch = Vec::new();
            parse_waivers(&f.rel, &l.comments, &mut scratch)
        })
        .collect();
    let lint_raw: Vec<Vec<Violation>> = files
        .iter()
        .zip(&lexed)
        .map(|(f, l)| raw_violations(&f.rel, l))
        .collect();

    // --- Rule family 1: panic reachability -------------------------------
    let inputs: Vec<FileInput<'_>> = files
        .iter()
        .enumerate()
        .map(|(i, f)| FileInput {
            rel: &f.rel,
            tokens: &lexed[i].tokens,
            ast: &asts[i],
            panic_sites: lint_raw[i]
                .iter()
                .filter(|v| {
                    PANIC_RULES.contains(&v.rule)
                        && !waivers[i].iter().any(|w| w.covers(v.rule, v.line))
                })
                .map(|v| (v.line, v.rule))
                .collect(),
        })
        .collect();
    let graph = callgraph::build(&inputs);
    let mut raw_audit: Vec<Vec<Violation>> = vec![Vec::new(); files.len()];
    for p in graph.panic_reachable_pubs(PANIC_FREE_CRATE) {
        let Some(fi) = files.iter().position(|f| f.rel == p.file) else {
            continue;
        };
        raw_audit[fi].push(Violation {
            rule: "panic-path",
            file: p.file.clone(),
            line: p.line,
            message: format!(
                "public fn `{}` can panic: {} — site at {}:{} ({}); return SolveError or waive the site",
                p.chain.first().map(String::as_str).unwrap_or("?"),
                p.chain.join(" -> "),
                p.site.file,
                p.site.line,
                p.site.rule,
            ),
        });
    }

    // --- Rule family 2: determinism inside rayon regions -----------------
    for (i, f) in files.iter().enumerate() {
        determinism_findings(&f.rel, &lexed[i].tokens, &mut raw_audit[i]);
    }

    // --- Rule family 3: registry dispatch in downstream layers -----------
    for (i, f) in files.iter().enumerate() {
        solver_dispatch_findings(&f.rel, &lexed[i].tokens, &mut raw_audit[i]);
    }

    // --- Rule family 3b: unsafe confined to the audited mmap module ------
    for (i, f) in files.iter().enumerate() {
        unsafe_scope_findings(&f.rel, &lexed[i].tokens, &mut raw_audit[i]);
    }

    // --- Rule family 4: concurrency safety (lockgraph) -------------------
    // Guard scopes, the workspace lock-order graph, and condvar/callback
    // discipline, over the same call graph as panic reachability. Routed
    // through `raw_audit` so waivers on these findings count as live.
    for v in crate::lockgraph::analyze(&inputs, &graph) {
        if let Some(fi) = files.iter().position(|f| f.rel == v.file) {
            raw_audit[fi].push(v);
        }
    }

    // --- Rule family 5: hot-path allocation discipline (heatpath) --------
    // Reachability from the solver/serve/kernel hot entry points, with
    // allocations attributed to their innermost enclosing loop. Routed
    // through `raw_audit` so waivers on these findings count as live.
    for v in crate::heatpath::analyze(&inputs, &graph) {
        if let Some(fi) = files.iter().position(|f| f.rel == v.file) {
            raw_audit[fi].push(v);
        }
    }

    // --- Rule family 6: pub-surface snapshots ----------------------------
    let snap_inputs: Vec<SnapshotInput<'_>> = files
        .iter()
        .zip(&asts)
        .map(|(f, a)| SnapshotInput {
            rel: &f.rel,
            ast: a,
        })
        .collect();
    let rendered: BTreeMap<String, String> = api_snapshot::render(&snap_inputs);
    if bless {
        match api_snapshot::bless(root, &rendered) {
            Ok(written) => out.blessed = written,
            Err(e) => out.violations.push(Violation {
                rule: "api-drift",
                file: api_snapshot::SNAPSHOT_DIR.to_string(),
                line: 1,
                message: format!("failed to write API snapshots: {e}"),
            }),
        }
    } else {
        for d in api_snapshot::check(root, &rendered) {
            out.violations.push(Violation {
                rule: "api-drift",
                file: d.snapshot,
                line: 1,
                message: d.detail,
            });
        }
    }

    // --- Rule family 7: waiver hygiene -----------------------------------
    // A waiver is live when some raw finding (lint or audit, pre-waiver)
    // sits under it; otherwise it is stale. This runs after the audit raw
    // findings exist so `allow(par-argmax)` etc. count as live.
    for (i, f) in files.iter().enumerate() {
        let file_level_rules: Vec<&str> = waivers[i]
            .iter()
            .filter(|w| w.file_level)
            .flat_map(|w| w.rules.iter().map(String::as_str))
            .collect();
        for w in &waivers[i] {
            let live = lint_raw[i]
                .iter()
                .chain(raw_audit[i].iter())
                .any(|v| w.covers(v.rule, v.line));
            if !live {
                raw_audit[i].push(Violation {
                    rule: "stale-waiver",
                    file: f.rel.clone(),
                    line: w.line,
                    message: format!(
                        "waiver for {:?} suppresses nothing — the waived construct is gone; delete the waiver",
                        w.rules
                    ),
                });
                continue;
            }
            if !w.file_level
                && w.rules
                    .iter()
                    .all(|r| file_level_rules.contains(&r.as_str()))
            {
                raw_audit[i].push(Violation {
                    rule: "shadowed-waiver",
                    file: f.rel.clone(),
                    line: w.line,
                    message: format!(
                        "line waiver for {:?} is fully covered by an `allow-file` in this file; delete the line waiver",
                        w.rules
                    ),
                });
            }
        }
    }

    // --- Waiver matching for the waivable audit rules --------------------
    for (i, found) in raw_audit.into_iter().enumerate() {
        for v in found {
            let waivable = WAIVABLE_AUDIT_RULES.contains(&v.rule);
            if waivable && waivers[i].iter().any(|w| w.covers(v.rule, v.line)) {
                out.waivers_used += 1;
            } else {
                out.violations.push(v);
            }
        }
    }
    out.violations
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    out
}

/// Scans one file for determinism findings inside rayon regions.
fn determinism_findings(rel: &str, tokens: &[Tok], out: &mut Vec<Violation>) {
    // float.rs hosts the audited helpers themselves.
    if classify(rel).float_approved {
        return;
    }
    let in_test = crate::rules::test_region_mask(tokens);
    for (lo, hi) in rayon_regions(tokens) {
        let mut i = lo;
        while i <= hi && i < tokens.len() {
            let t = &tokens[i];
            if in_test.get(i).copied().unwrap_or(false) {
                i += 1;
                continue;
            }
            // Skip turbofish generic argument lists wholesale so `<`/`>`
            // inside `collect::<Vec<_>>()` or `gain::<M>(..)` never read as
            // comparisons.
            if t.text == "::" && tokens.get(i + 1).is_some_and(|n| n.text == "<") {
                let mut angle = 1i64;
                let mut j = i + 2;
                while j < tokens.len() && j <= hi && angle > 0 {
                    match tokens[j].text.as_str() {
                        "<" => angle += 1,
                        ">" => angle -= 1,
                        _ => {}
                    }
                    j += 1;
                }
                i = j;
                continue;
            }
            match t.text.as_str() {
                "<" | ">" | "<=" | ">=" if t.kind == TokKind::Op => {
                    if let Some(name) = nearby_cover_ident(tokens, i, 6) {
                        out.push(Violation {
                            rule: "par-argmax",
                            file: rel.to_string(),
                            line: t.line,
                            message: format!(
                                "raw `{}` on `{name}` inside a rayon region; route the argmax \
                                 through pcover_core::float::improves_argmax/cmp_gain so ties \
                                 break identically to the sequential solver",
                                t.text
                            ),
                        });
                    }
                }
                "+=" => {
                    let lhs = tokens[..i]
                        .iter()
                        .rev()
                        .find(|p| p.kind == TokKind::Ident)
                        .map(|p| p.text.as_str())
                        .unwrap_or("");
                    if names_cover_value(lhs) {
                        out.push(Violation {
                            rule: "par-float-accum",
                            file: rel.to_string(),
                            line: t.line,
                            message: format!(
                                "float accumulation `{lhs} +=` inside a rayon region; \
                                 order-dependent rounding breaks bit-identical output — use \
                                 pcover_core::float::sum_stable on a deterministic order"
                            ),
                        });
                    }
                }
                "sum" if t.kind == TokKind::Ident => {
                    let is_call = i > 0
                        && tokens[i - 1].text == "."
                        && tokens.get(i + 1).is_some_and(|n| n.text == "(");
                    // The summed expression sits in a preceding `.map(..)`
                    // closure, so look farther back than the comparison rule.
                    if is_call && nearby_cover_ident(tokens, i, 14).is_some() {
                        out.push(Violation {
                            rule: "par-float-accum",
                            file: rel.to_string(),
                            line: t.line,
                            message: "`.sum()` over cover/gain values inside a rayon region; \
                                      reduction order is nondeterministic — collect in a fixed \
                                      order and use pcover_core::float::sum_stable"
                                .to_string(),
                        });
                    }
                }
                _ if t.kind == TokKind::Ident
                    && (SHARED_STATE_TYPES.contains(&t.text.as_str())
                        || t.text.starts_with("Atomic")
                        || (SHARED_STATE_METHODS.contains(&t.text.as_str())
                            && i > 0
                            && tokens[i - 1].text == "."
                            && tokens.get(i + 1).is_some_and(|n| n.text == "("))) =>
                {
                    out.push(Violation {
                        rule: "par-shared-state",
                        file: rel.to_string(),
                        line: t.line,
                        message: format!(
                            "`{}` inside a rayon region; aggregate via map/reduce return values \
                             (deterministic combine), not shared mutable state",
                            t.text
                        ),
                    });
                }
                _ => {}
            }
            i += 1;
        }
    }
}

/// Scans one file for direct solver free-function calls that bypass the
/// registry (`solver-dispatch`): the token sequence
/// `<solver module> :: <entry fn>` in a dispatch-scoped, non-test region.
/// Method calls (`spec.solve(..)`) are preceded by `.`, not `::`, and never
/// match; paths through other modules (`minimize::`, `revenue::`,
/// `pinned::`) are not in [`DISPATCH_MODULES`].
fn solver_dispatch_findings(rel: &str, tokens: &[Tok], out: &mut Vec<Violation>) {
    if !DISPATCH_SCOPES.iter().any(|s| rel.starts_with(s)) {
        return;
    }
    let in_test = crate::rules::test_region_mask(tokens);
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokKind::Ident
            || !DISPATCH_MODULES.contains(&t.text.as_str())
            || in_test.get(i).copied().unwrap_or(false)
        {
            continue;
        }
        // `use pcover_core::greedy;` style imports are fine — only the
        // call path `module::fn` is a dispatch bypass.
        let callee = match (tokens.get(i + 1), tokens.get(i + 2)) {
            (Some(sep), Some(name))
                if sep.text == "::"
                    && name.kind == TokKind::Ident
                    && DISPATCH_FNS.contains(&name.text.as_str()) =>
            {
                &name.text
            }
            _ => continue,
        };
        out.push(Violation {
            rule: "solver-dispatch",
            file: rel.to_string(),
            line: t.line,
            message: format!(
                "direct call `{}::{callee}` bypasses the solver registry; resolve a \
                 SolverSpec via Registry::builtin().get(..) and call spec.solve(..) so \
                 the shared config/observer harness applies",
                t.text
            ),
        });
    }
}

/// The only files allowed to contain `unsafe` tokens: the audited mmap
/// wrapper behind `pcover-store`'s zero-copy load path. Everything else in
/// the workspace lives under `#![forbid(unsafe_code)]` (or, for the store
/// crate root, `#![deny(unsafe_code)]`), and this rule is the cross-check
/// that the allowance never spreads.
const UNSAFE_ALLOWED_FILES: [&str; 1] = ["crates/store/src/mmap.rs"];

/// Scans one file for `unsafe` tokens outside the allowed module
/// (`unsafe-scope`). Test regions are *not* exempt: unsafe in a test is
/// still unsafe, and the allowed-module list is the only escape hatch
/// (besides a reviewed waiver).
fn unsafe_scope_findings(rel: &str, tokens: &[Tok], out: &mut Vec<Violation>) {
    if UNSAFE_ALLOWED_FILES.contains(&rel) {
        return;
    }
    for t in tokens {
        if t.kind == TokKind::Ident && t.text == "unsafe" {
            out.push(Violation {
                rule: "unsafe-scope",
                file: rel.to_string(),
                line: t.line,
                message: format!(
                    "`unsafe` outside the audited mmap module ({}); move the code there \
                     or waive with a reviewed justification",
                    UNSAFE_ALLOWED_FILES[0]
                ),
            });
        }
    }
}

/// Identifier naming a cover/gain value within `window` code tokens on
/// either side of `i`, stopping at statement boundaries.
fn nearby_cover_ident(tokens: &[Tok], i: usize, window: usize) -> Option<&str> {
    let boundary = |tok: &Tok| matches!(tok.text.as_str(), ";" | "{" | "}");
    let before = tokens[..i]
        .iter()
        .rev()
        .take(window)
        .take_while(|t| !boundary(t));
    let after = tokens
        .iter()
        .skip(i + 1)
        .take(window)
        .take_while(|t| !boundary(t));
    before
        .chain(after)
        // lint: allow(float-eq) — compares token kinds and identifier names, not float values
        .find(|t| t.kind == TokKind::Ident && names_cover_value(&t.text))
        .map(|t| t.text.as_str())
}

/// Token index ranges `[lo, hi]` of rayon combinator call chains: from a
/// `par_*` entry point to the end of its statement (a `;` at the entry's
/// bracket depth, or the close bracket that ends the enclosing expression).
pub(crate) fn rayon_regions(tokens: &[Tok]) -> Vec<(usize, usize)> {
    let mut regions: Vec<(usize, usize)> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokKind::Ident || !PAR_ENTRIES.contains(&t.text.as_str()) {
            continue;
        }
        if let Some((_, hi)) = regions.last() {
            if i <= *hi {
                continue; // already inside an open region
            }
        }
        let mut depth = 0i64;
        let mut j = i;
        while j < tokens.len() {
            match tokens[j].kind {
                TokKind::Open => depth += 1,
                TokKind::Close => {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                }
                _ if tokens[j].text == ";" && depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        regions.push((i, j.saturating_sub(1).max(i)));
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn audit_single(rel: &str, src: &str) -> AuditOutcome {
        // A nonexistent root: api-drift then reports "no snapshot", which
        // the per-rule tests filter out.
        let root = Path::new("/nonexistent-xtask-audit-test-root");
        let mut out = run(
            root,
            &[AuditFile {
                rel: rel.to_string(),
                src: src.to_string(),
            }],
            false,
        );
        out.violations.retain(|v| v.rule != "api-drift");
        out
    }

    fn rules_of(out: &AuditOutcome) -> Vec<&'static str> {
        out.violations.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn par_argmax_fires_on_raw_comparison() {
        let src = "fn f(xs: &[f64]) {\n\
                   let _ = xs.par_iter().map(|gain| if *gain > best_gain { 1 } else { 0 });\n\
                   }\n";
        let out = audit_single("crates/core/src/x.rs", src);
        assert_eq!(rules_of(&out), ["par-argmax"]);
        assert_eq!(out.violations[0].line, 2);
    }

    #[test]
    fn par_argmax_ignores_turbofish_and_non_cover_names() {
        let src = "fn f(xs: &[u64]) {\n\
                   let v: Vec<u64> = xs.par_iter().map(|x| state.gain::<M>(g, *x) as u64).collect::<Vec<u64>>();\n\
                   let _ = xs.par_iter().filter(|x| **x > threshold);\n\
                   }\n";
        let out = audit_single("crates/core/src/x.rs", src);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }

    #[test]
    fn par_float_accum_fires_on_plus_eq_and_sum() {
        let src = "fn f(xs: &[f64]) {\n\
                   let mut cover_total = 0.0;\n\
                   xs.par_iter().for_each(|g| cover_total += *g);\n\
                   let c: f64 = xs.par_iter().map(|g| gain_of(*g)).sum();\n\
                   }\n";
        let out = audit_single("crates/core/src/x.rs", src);
        assert_eq!(rules_of(&out), ["par-float-accum", "par-float-accum"]);
    }

    #[test]
    fn integer_accumulators_stay_silent() {
        let src = "fn f(xs: &[u64]) {\n\
                   let mut ops = 0u64;\n\
                   xs.par_iter().for_each(|x| ops += *x);\n\
                   }\n";
        let out = audit_single("crates/core/src/x.rs", src);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }

    #[test]
    fn par_shared_state_fires_on_mutex_and_atomics() {
        let src = "fn f(xs: &[u64]) {\n\
                   let m = Mutex::new(0u64);\n\
                   xs.par_iter().for_each(|x| { *m.lock().unwrap_or_else(|e| e.into_inner()) += x; });\n\
                   let a = AtomicU64::new(0);\n\
                   xs.par_iter().for_each(|x| { a.fetch_add(*x, Ordering::Relaxed); });\n\
                   }\n";
        let out = audit_single("crates/adapt/src/x.rs", src);
        // The declarations sit outside the regions, so it is the in-region
        // `.lock()` and `.fetch_add(..)` calls that fire — one per region.
        assert_eq!(rules_of(&out), ["par-shared-state", "par-shared-state"]);
        assert!(out.violations[0].message.contains("`lock`"));
        assert!(out.violations[1].message.contains("`fetch_add`"));
    }

    #[test]
    fn sequential_comparisons_outside_regions_stay_silent() {
        let src = "fn f(gain: f64, best_gain: f64) -> bool { gain > best_gain }\n";
        let out = audit_single("crates/core/src/x.rs", src);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }

    #[test]
    fn determinism_findings_are_waivable() {
        let src = "fn f(xs: &[f64]) {\n\
                   // lint: allow(par-argmax) — argmax verified commutative in tests\n\
                   let _ = xs.par_iter().map(|gain| if *gain > best_gain { 1 } else { 0 });\n\
                   }\n";
        let out = audit_single("crates/core/src/x.rs", src);
        // The waiver suppresses the finding and is itself live (not stale).
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert_eq!(out.waivers_used, 1);
    }

    #[test]
    fn stale_and_shadowed_waivers_reported() {
        let src = "// lint: allow-file(no-index) — dense ids\n\
                   fn f(xs: &[u64]) -> u64 {\n\
                   // lint: allow(no-index) — shadowed by the file waiver\n\
                   xs[0]\n\
                   }\n\
                   // lint: allow(no-unwrap) — nothing unwraps here anymore\n\
                   fn g() {}\n";
        let out = audit_single("crates/core/src/x.rs", src);
        let mut rules = rules_of(&out);
        rules.sort_unstable();
        assert_eq!(rules, ["shadowed-waiver", "stale-waiver"]);
    }

    #[test]
    fn panic_path_reported_with_chain_and_waivable() {
        let src = "pub fn entry() { helper_a(); }\n\
                   fn helper_a() { helper_b(); }\n\
                   fn helper_b(v: Option<u32>) -> u32 { v.unwrap() }\n";
        let out = audit_single("crates/core/src/lib.rs", src);
        assert_eq!(rules_of(&out), ["panic-path"]);
        assert!(out.violations[0]
            .message
            .contains("entry -> helper_a -> helper_b"));
        assert!(out.violations[0].message.contains("no-unwrap"));

        let waived = format!("// lint: allow(panic-path) — verified unreachable\n{src}");
        let out = audit_single("crates/core/src/lib.rs", &waived);
        // entry's panic-path is waived; helper_b's raw no-unwrap still seeds
        // the graph but only pub fns are reported.
        assert!(
            out.violations.iter().all(|v| v.rule != "panic-path"),
            "{:?}",
            out.violations
        );
    }

    #[test]
    fn waived_panic_site_clears_panic_path() {
        let src = "pub fn entry() { helper(); }\n\
                   fn helper(v: Option<u32>) -> u32 {\n\
                   // lint: allow(no-unwrap) — invariant: caller checked Some\n\
                   v.unwrap()\n\
                   }\n";
        let out = audit_single("crates/core/src/lib.rs", src);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }

    #[test]
    fn solver_dispatch_fires_on_direct_calls_in_scoped_layers() {
        let src = "fn f(g: &G, k: usize) {\n\
                   let a = pcover_core::greedy::solve::<Independent>(g, k);\n\
                   let b = baselines::top_k_weight(g, k);\n\
                   }\n";
        for rel in [
            "crates/cli/src/commands.rs",
            "crates/bench/src/experiments/x.rs",
            "crates/adapt/src/engine.rs",
            "examples/quickstart.rs",
            "src/lib.rs",
        ] {
            let out = audit_single(rel, src);
            assert_eq!(
                rules_of(&out),
                ["solver-dispatch", "solver-dispatch"],
                "{rel}: {:?}",
                out.violations
            );
            assert!(out.violations[0].message.contains("greedy::solve"));
            assert!(out.violations[1]
                .message
                .contains("baselines::top_k_weight"));
        }
    }

    #[test]
    fn solver_dispatch_ignores_core_benches_and_registry_calls() {
        let direct = "fn f(g: &G, k: usize) { let a = lazy::solve::<Normalized>(g, k); }\n";
        // pcover-core hosts the solvers themselves; the criterion benches
        // compare raw free functions against the harness by design.
        for rel in [
            "crates/core/src/solver.rs",
            "crates/bench/benches/gain_addnode.rs",
            "crates/xtask/src/audit_rules.rs",
        ] {
            let out = audit_single(rel, direct);
            assert!(out.violations.is_empty(), "{rel}: {:?}", out.violations);
        }
        // Registry dispatch, non-entry utilities, and imports stay legal.
        let fine = "use pcover_core::brute_force;\n\
                    fn f(spec: &SolverSpec, g: &G, k: usize) {\n\
                    let n = brute_force::subset_count(10, 2);\n\
                    let r = spec.solve(Variant::Independent, g, k, &mut SolveCtx::default());\n\
                    let _ = (n, r);\n\
                    }\n";
        let out = audit_single("crates/bench/src/experiments/fig4b.rs", fine);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }

    #[test]
    fn solver_dispatch_skips_test_regions_and_is_waivable() {
        let in_test = "#[cfg(test)]\nmod tests {\n\
                       fn t(g: &G) { let _ = greedy::solve::<Independent>(g, 2); }\n\
                       }\n";
        let out = audit_single("crates/cli/src/commands.rs", in_test);
        assert!(out.violations.is_empty(), "{:?}", out.violations);

        let waived = "fn f(g: &G, k: usize) {\n\
                      // lint: allow(solver-dispatch) — needs the WorkStats side channel\n\
                      let a = parallel::solve::<Independent>(g, k, 4);\n\
                      }\n";
        let out = audit_single("crates/bench/src/experiments/fig4e.rs", waived);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert_eq!(out.waivers_used, 1);
    }

    #[test]
    fn unsafe_scope_fires_everywhere_but_the_mmap_module() {
        let src = "fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        for rel in [
            "crates/store/src/container.rs",
            "crates/graph/src/graph.rs",
            "crates/serve/src/server.rs",
        ] {
            let out = audit_single(rel, src);
            assert_eq!(rules_of(&out), ["unsafe-scope"], "{rel}");
            assert!(out.violations[0].message.contains("mmap"));
        }
        let out = audit_single("crates/store/src/mmap.rs", src);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }

    #[test]
    fn unsafe_scope_fires_in_test_regions_and_is_waivable() {
        let in_test = "#[cfg(test)]\nmod tests {\n\
                       fn t(p: *const u8) -> u8 { unsafe { *p } }\n\
                       }\n";
        let out = audit_single("crates/store/src/writer.rs", in_test);
        assert_eq!(rules_of(&out), ["unsafe-scope"]);

        let waived = "// lint: allow(unsafe-scope) — FFI probe audited in review\n\
                      fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        let out = audit_single("crates/store/src/writer.rs", waived);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert_eq!(out.waivers_used, 1);
    }

    #[test]
    fn rayon_region_extent_stops_at_statement_end() {
        let lexed = lex("let a = xs.par_iter().map(f).collect::<Vec<_>>(); let gain = g > h;");
        let regions = rayon_regions(&lexed.tokens);
        assert_eq!(regions.len(), 1);
        let (_, hi) = regions[0];
        // The `>` of the second statement (the last one — earlier `>`s
        // belong to the turbofish) must be outside the region.
        let gt = lexed
            .tokens
            .iter()
            .rposition(|t| t.text == ">" && t.kind == TokKind::Op)
            .unwrap_or(0);
        assert!(gt > hi);
    }
}

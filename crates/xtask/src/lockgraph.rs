//! Concurrency-safety analysis: guard scopes and the lock-order graph.
//!
//! Built on the same token stream, [`crate::ast`] function map, and
//! conservative [`crate::callgraph`] as the panic-path rule, this pass
//! tracks **guard scopes** — the lexical region where a `lock()`/`read()`/
//! `write()` guard is live — and derives four audit rules from them:
//!
//! * `lock-order-cycle` — two lock *classes* acquired in both orders
//!   somewhere in the workspace (including through calls), or one class
//!   re-acquired while already held. Either is a latent deadlock.
//! * `lock-across-blocking` — a guard held across an operation that can
//!   block indefinitely: socket/file I/O, `Condvar` waits on *other*
//!   locks, a full solver dispatch, rayon pool install/construction, or
//!   thread joins. Holding a hot lock across these stalls every peer.
//! * `condvar-misuse` — a condvar wait whose predicate is not re-checked
//!   in an enclosing `loop`/`while` (spurious wakeups break it), or a
//!   notify in a function that never acquires the associated lock (the
//!   notification can race the waiter's predicate check and get lost).
//! * `guard-across-callback` — a guard held across an [`Observer`] hook
//!   or cancellation callback; user code runs under the lock and can
//!   re-enter or block it.
//!
//! ## Guard scopes
//!
//! An acquisition is `.lock()`, `.read()`, or `.write()` **with empty
//! parens** — `io::Read`/`io::Write` methods always take a buffer, so the
//! empty-call shape is what disambiguates sync primitives. A let-bound
//! guard (`let g = m.lock()…;`, including the poison-recovery
//! `let g = match m.lock() {…};` idiom) is live from its statement to the
//! end of the enclosing block; `drop(g)` ends the scope early, and
//! shadowing does **not** end it (the first guard lives until the block
//! closes — Rust drops shadowed values at end of scope, not at the
//! shadowing `let`). Any other acquisition is a temporary, live to the
//! end of its statement — which for `if let`/`while let`/`match`
//! scrutinees spans the whole arm body, exactly as the language scopes
//! the temporary.
//!
//! ## Lock classes
//!
//! Order edges relate *classes*, not individual acquisitions. A receiver
//! resolves to, in order: a `SCREAMING_CASE` static anywhere in its path
//! (`POOLS.lock()` and `let pools = POOLS.get_or_init(…); pools.lock()`
//! both name `core::POOLS`); a `self.field` path (`crate::Type::field`);
//! a self wrapper method (`self.lock()` where `fn lock` returns a
//! `MutexGuard`-family type resolves to the class the wrapper itself
//! acquires); otherwise a function-local class. Read and write guards on
//! one `RwLock` share a class — conservative, since writer acquisition
//! order is what deadlocks.
//!
//! ## Interprocedural propagation
//!
//! Each function's directly-acquired classes and blocking calls propagate
//! to callers over the call graph's conservative edges to a fixpoint, so
//! a guard held across `helper()` inherits `helper`'s acquisitions and
//! blocking behaviour with a shortest call chain for the diagnostic —
//! the same "show the path" style as `panic-path`.
//!
//! All four rules are waivable (`// lint: allow(<rule>) — reason`) at the
//! reported line: guard rules anchor at the acquisition, condvar rules at
//! the wait/notify, cycles at the first edge's acquisition.
//!
//! [`Observer`]: https://docs.rs/trait.Observer.html

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::ast::FnInfo;
use crate::callgraph::{CallGraph, FileInput};
use crate::lexer::{Tok, TokKind};
use crate::rules::Violation;

/// Operations that can block indefinitely while a guard is held. Method
/// and free-call forms both count; `join`/`wait` are shape-restricted
/// below to avoid `str::join` and argument-taking false matches.
const BLOCKING: [&str; 17] = [
    "wait",
    "wait_timeout",
    "wait_while",
    "write_all",
    "flush",
    "write_json",
    "write_response",
    "read_request",
    "read_to_end",
    "read_to_string",
    "accept",
    "connect",
    "connect_timeout",
    "solve",
    "install",
    "sleep",
    "recv",
];

/// Observer/callback entry points: user code that must not run under a
/// held guard (`guard-across-callback`).
const HOOKS: [&str; 5] = [
    "on_select",
    "on_round_stats",
    "cancelled",
    "check_cancelled",
    "emit_report",
];

/// Wrapper-method return types that mark a fn as handing out a guard.
const GUARD_TYPES: [&str; 3] = ["MutexGuard", "RwLockReadGuard", "RwLockWriteGuard"];

/// Postfix methods that pass a guard through unchanged, so a let binding
/// after them still binds the guard (`let g = m.lock().unwrap();`,
/// `let g = pools.lock().map_err(…)?;`).
const GUARD_PRESERVING: [&str; 5] = [
    "unwrap",
    "expect",
    "map_err",
    "unwrap_or_else",
    "into_inner",
];

/// Names never fed to generic call resolution inside a scope: primitive
/// acquisitions and blocking/hook ops are matched structurally instead,
/// and resolving them by bare name would alias every workspace `lock`.
fn skip_resolution(name: &str) -> bool {
    matches!(
        name,
        "lock" | "read" | "write" | "drop" | "notify_one" | "notify_all"
    ) || BLOCKING.contains(&name)
        || HOOKS.contains(&name)
}

const KEYWORDS: [&str; 27] = [
    "if", "else", "while", "for", "loop", "match", "return", "fn", "let", "mut", "ref", "move",
    "in", "break", "continue", "as", "use", "pub", "impl", "struct", "enum", "trait", "mod",
    "where", "unsafe", "const", "static",
];

/// One live guard region inside a function body.
struct GuardScope {
    /// Resolved lock class.
    class: String,
    /// Token index of the `lock`/`read`/`write` ident.
    acq_tok: usize,
    /// 1-based line of the acquisition (violations anchor here).
    line: u32,
    /// Binding name when let-bound (used for the own-guard wait exemption).
    binding: Option<String>,
    /// Last token index (inclusive) where the guard is live.
    end: usize,
}

/// Where and how an order edge was observed, for diagnostics.
#[derive(Clone)]
struct EdgeProv {
    file: String,
    /// Line of the *outer* acquisition.
    line: u32,
    holder: String,
    /// `""` for a direct nested acquisition, else `" via a -> b"`.
    chain: String,
    inner_line: u32,
}

/// A transitively reachable acquisition (or blocking op) with its
/// shortest call chain for path reconstruction.
#[derive(Clone)]
struct Reach {
    depth: u32,
    /// Next callee toward the site; `None` at the site itself.
    via: Option<usize>,
    file: String,
    line: u32,
    /// Blocking op name (unused for acquisitions).
    op: String,
}

/// Runs the concurrency pass over the workspace and returns unwaived-rule
/// findings for the four lockgraph rules.
pub fn analyze(files: &[FileInput<'_>], graph: &CallGraph) -> Vec<Violation> {
    // Map (file, fn line, fn name) -> call graph node.
    let mut node_of: HashMap<(&str, u32, &str), usize> = HashMap::new();
    for (ni, n) in graph.nodes.iter().enumerate() {
        node_of.insert((n.file.as_str(), n.line, n.name.as_str()), ni);
    }
    // Mirror the call graph's name indices for in-scope call resolution.
    let mut by_crate_name: HashMap<(&str, &str), Vec<usize>> = HashMap::new();
    let mut methods_by_name: HashMap<&str, Vec<usize>> = HashMap::new();
    for (ni, n) in graph.nodes.iter().enumerate() {
        by_crate_name
            .entry((n.crate_key.as_str(), n.name.as_str()))
            .or_default()
            .push(ni);
        if n.qual.is_some() {
            methods_by_name.entry(n.name.as_str()).or_default().push(ni);
        }
    }

    // Pass 1: raw acquisitions per function, for the wrapper map.
    let mut fn_ctxs: Vec<FnCtx<'_>> = Vec::new();
    for f in files {
        let Some(ck) = crate::callgraph::crate_key(f.rel) else {
            continue;
        };
        let mods = crate::callgraph::file_modules(f.rel);
        for (ai, func) in f.ast.fns.iter().enumerate() {
            if func.in_test || func.body.is_none() {
                continue;
            }
            let excluded = nested_ranges(f.ast.fns.as_slice(), ai);
            let raw = raw_acquisitions(f.tokens, func, &excluded);
            fn_ctxs.push(FnCtx {
                file: f,
                func,
                crate_key: ck.clone(),
                mods: mods.clone(),
                excluded,
                raw,
                node: node_of
                    .get(&(f.rel, func.line, func.name.as_str()))
                    .copied(),
            });
        }
    }

    // Wrapper map: (crate, impl type, method) -> class of its first
    // directly resolvable acquisition, for fns whose signature mentions a
    // guard type.
    let mut wrappers: HashMap<(String, String, String), String> = HashMap::new();
    for ctx in &fn_ctxs {
        let (s0, s1) = ctx.func.sig;
        let sig = &ctx.file.tokens[s0..s1.min(ctx.file.tokens.len())];
        if !sig.iter().any(|t| GUARD_TYPES.contains(&t.text.as_str())) {
            continue;
        }
        if let Some(class) = ctx.raw.iter().find_map(|acq| resolve_class(ctx, acq, None)) {
            wrappers.insert(
                (
                    ctx.crate_key.clone(),
                    ctx.func.qual.clone().unwrap_or_default(),
                    ctx.func.name.clone(),
                ),
                class,
            );
        }
    }

    // Pass 2: resolve classes and guard scopes; collect per-node direct
    // facts for the fixpoint.
    let n = graph.nodes.len();
    let mut direct_acq: Vec<BTreeMap<String, Reach>> = vec![BTreeMap::new(); n];
    let mut direct_block: Vec<Option<Reach>> = vec![None; n];
    let mut scopes_of: Vec<Vec<GuardScope>> = Vec::with_capacity(fn_ctxs.len());
    for ctx in &fn_ctxs {
        let mut scopes = Vec::new();
        for acq in &ctx.raw {
            let Some(class) = resolve_class(ctx, acq, Some(&wrappers)) else {
                continue;
            };
            let (binding, end) = guard_scope(ctx.file.tokens, ctx.func, acq);
            scopes.push(GuardScope {
                class,
                acq_tok: acq.tok,
                line: acq.line,
                binding,
                end,
            });
        }
        if let Some(ni) = ctx.node {
            for s in &scopes {
                direct_acq[ni]
                    .entry(s.class.clone())
                    .or_insert_with(|| Reach {
                        depth: 0,
                        via: None,
                        file: ctx.file.rel.to_string(),
                        line: s.line,
                        op: String::new(),
                    });
            }
            if let Some((op, line)) = first_blocking(ctx, None) {
                direct_block[ni] = Some(Reach {
                    depth: 0,
                    via: None,
                    file: ctx.file.rel.to_string(),
                    line,
                    op,
                });
            }
        }
        scopes_of.push(scopes);
    }

    // Call edges for propagation, resolved with the tightened rules (and
    // skipping method calls on a guard binding: the receiver there is the
    // *locked data* — a map or deque — whose methods can't be workspace
    // locking methods, and aliasing them manufactures self-deadlocks).
    let mut calls: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (ctx, scopes) in fn_ctxs.iter().zip(&scopes_of) {
        let Some(ni) = ctx.node else { continue };
        let Some((open, close)) = ctx.func.body else {
            continue;
        };
        let bindings: BTreeSet<&str> = scopes.iter().filter_map(|s| s.binding.as_deref()).collect();
        let tokens = ctx.file.tokens;
        for j in open + 1..close.min(tokens.len()) {
            if ctx.excluded.iter().any(|&(a, b)| j >= a && j <= b) {
                continue;
            }
            let t = &tokens[j];
            if t.kind != TokKind::Ident
                || tokens.get(j + 1).is_none_or(|n| n.text != "(")
                || skip_resolution(&t.text)
                || KEYWORDS.contains(&t.text.as_str())
            {
                continue;
            }
            if j > 0
                && tokens[j - 1].text == "."
                && method_receiver_root(tokens, j).is_some_and(|r| bindings.contains(r.as_str()))
            {
                continue;
            }
            calls[ni].extend(resolve_call(
                ctx,
                j,
                graph,
                &by_crate_name,
                &methods_by_name,
            ));
        }
        calls[ni].sort_unstable();
        calls[ni].dedup();
    }

    // Fixpoint: propagate acquisitions and blocking over call edges with
    // strictly-shorter-depth updates (deterministic, terminates).
    let mut trans_acq = direct_acq;
    let mut trans_block = direct_block;
    let mut changed = true;
    while changed {
        changed = false;
        for u in 0..n {
            let mut updates: Vec<(String, Reach)> = Vec::new();
            let mut block_update: Option<Reach> = None;
            for &v in &calls[u] {
                for (class, info) in &trans_acq[v] {
                    let cand = Reach {
                        depth: info.depth + 1,
                        via: Some(v),
                        file: info.file.clone(),
                        line: info.line,
                        op: String::new(),
                    };
                    let better = trans_acq[u]
                        .get(class)
                        .is_none_or(|cur| cand.depth < cur.depth);
                    if better {
                        updates.push((class.clone(), cand));
                    }
                }
                if let Some(info) = &trans_block[v] {
                    let cand = Reach {
                        depth: info.depth + 1,
                        via: Some(v),
                        file: info.file.clone(),
                        line: info.line,
                        op: info.op.clone(),
                    };
                    let better = trans_block[u]
                        .as_ref()
                        .is_none_or(|cur| cand.depth < cur.depth);
                    if better && block_update.as_ref().is_none_or(|b| cand.depth < b.depth) {
                        block_update = Some(cand);
                    }
                }
            }
            for (class, cand) in updates {
                let slot = trans_acq[u].entry(class).or_insert_with(|| cand.clone());
                if cand.depth < slot.depth || (slot.depth == cand.depth && slot.via == cand.via) {
                    *slot = cand;
                    changed = true;
                }
            }
            if let Some(cand) = block_update {
                if trans_block[u]
                    .as_ref()
                    .is_none_or(|cur| cand.depth < cur.depth)
                {
                    trans_block[u] = Some(cand);
                    changed = true;
                }
            }
        }
    }

    // Pass 3: walk each guard scope for events; build the order graph.
    let mut out: Vec<Violation> = Vec::new();
    let mut edges: BTreeMap<(String, String), EdgeProv> = BTreeMap::new();
    for (ctx, scopes) in fn_ctxs.iter().zip(&scopes_of) {
        let holder = ctx.display();
        let bindings: BTreeSet<&str> = scopes.iter().filter_map(|s| s.binding.as_deref()).collect();
        for scope in scopes {
            let mut blocked = false;
            let mut hooked = false;
            let lo = scope.acq_tok + 1;
            let hi = scope.end.min(ctx.file.tokens.len().saturating_sub(1));
            let mut j = lo;
            while j <= hi {
                if ctx.excluded.iter().any(|&(a, b)| j >= a && j <= b) {
                    j += 1;
                    continue;
                }
                let t = &ctx.file.tokens[j];
                if t.kind != TokKind::Ident {
                    j += 1;
                    continue;
                }
                let name = t.text.as_str();
                // Nested acquisition -> order edge.
                if is_acquisition(ctx.file.tokens, j) {
                    if let Some(acq) = ctx.raw.iter().find(|a| a.tok == j) {
                        if let Some(inner) = resolve_class(ctx, acq, Some(&wrappers)) {
                            record_edge(
                                &mut edges,
                                &scope.class,
                                &inner,
                                EdgeProv {
                                    file: ctx.file.rel.to_string(),
                                    line: scope.line,
                                    holder: holder.clone(),
                                    chain: String::new(),
                                    inner_line: t.line,
                                },
                            );
                        }
                    }
                    j += 1;
                    continue;
                }
                // Rayon pool construction under a guard blocks on thread
                // spawning — flag the bare type name.
                if name == "ThreadPoolBuilder" && !blocked {
                    blocked = true;
                    out.push(Violation {
                        rule: "lock-across-blocking",
                        file: ctx.file.rel.to_string(),
                        line: scope.line,
                        message: format!(
                            "guard on `{}` held across rayon pool construction at line {} in {holder}; build the pool before taking the lock",
                            scope.class, t.line
                        ),
                    });
                }
                let called = ctx.file.tokens.get(j + 1).is_some_and(|t| t.text == "(");
                if !called {
                    j += 1;
                    continue;
                }
                // Blocking operation directly in scope.
                if BLOCKING.contains(&name) && blocking_shape(ctx.file.tokens, j) {
                    let own_wait = name.starts_with("wait")
                        && scope
                            .binding
                            .as_deref()
                            .is_some_and(|b| args_contain(ctx.file.tokens, j, b));
                    if !own_wait && !blocked {
                        blocked = true;
                        out.push(Violation {
                            rule: "lock-across-blocking",
                            file: ctx.file.rel.to_string(),
                            line: scope.line,
                            message: format!(
                                "guard on `{}` (acquired line {}) held across blocking `{}` at line {} in {holder}",
                                scope.class, scope.line, name, t.line
                            ),
                        });
                    }
                    j += 1;
                    continue;
                }
                // Observer/callback hook directly in scope.
                if HOOKS.contains(&name) && !hooked {
                    hooked = true;
                    out.push(Violation {
                        rule: "guard-across-callback",
                        file: ctx.file.rel.to_string(),
                        line: scope.line,
                        message: format!(
                            "guard on `{}` (acquired line {}) held across observer callback `{}` at line {} in {holder}; user code must not run under the lock",
                            scope.class, scope.line, name, t.line
                        ),
                    });
                    j += 1;
                    continue;
                }
                // Generic workspace call: inherit the callee's transitive
                // acquisitions and blocking behaviour. Method calls on a
                // guard binding target the locked data, not a workspace
                // type — skip those (see the call-edge builder above).
                let on_guard = ctx.file.tokens[j - 1].text == "."
                    && method_receiver_root(ctx.file.tokens, j)
                        .is_some_and(|r| bindings.contains(r.as_str()));
                if !skip_resolution(name) && !KEYWORDS.contains(&name) && !on_guard {
                    for m in resolve_call(ctx, j, graph, &by_crate_name, &methods_by_name) {
                        for (class, info) in &trans_acq[m] {
                            record_edge(
                                &mut edges,
                                &scope.class,
                                class,
                                EdgeProv {
                                    file: ctx.file.rel.to_string(),
                                    line: scope.line,
                                    holder: holder.clone(),
                                    chain: chain_str(graph, &trans_acq, m, class),
                                    inner_line: info.line,
                                },
                            );
                        }
                        if let Some(info) = &trans_block[m] {
                            if !blocked {
                                blocked = true;
                                out.push(Violation {
                                    rule: "lock-across-blocking",
                                    file: ctx.file.rel.to_string(),
                                    line: scope.line,
                                    message: format!(
                                        "guard on `{}` (acquired line {}) held across a call chain that blocks: {} -> `{}` ({}:{})",
                                        scope.class,
                                        scope.line,
                                        block_chain_str(graph, &trans_block, m),
                                        info.op,
                                        info.file,
                                        info.line
                                    ),
                                });
                            }
                        }
                    }
                }
                j += 1;
            }
        }
        // Condvar discipline, independent of any particular scope.
        condvar_checks(ctx, &holder, &mut out);
    }

    // Pass 4: cycles (including self-edges) over the class order graph.
    cycle_violations(&edges, &mut out);

    out.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    out.dedup_by(|a, b| a.rule == b.rule && a.file == b.file && a.line == b.line);
    out
}

/// Everything needed to analyze one function body.
struct FnCtx<'a> {
    file: &'a FileInput<'a>,
    func: &'a FnInfo,
    crate_key: String,
    mods: Vec<String>,
    /// Token ranges of nested fns (excluded from this fn's scans).
    excluded: Vec<(usize, usize)>,
    raw: Vec<RawAcq>,
    node: Option<usize>,
}

impl FnCtx<'_> {
    fn display(&self) -> String {
        match &self.func.qual {
            Some(q) => format!("`{}::{}`", q, self.func.name),
            None => format!("`{}`", self.func.name),
        }
    }

    /// `crate::<impl type or module path>::` prefix for local classes.
    fn local_prefix(&self) -> String {
        let mid = match &self.func.qual {
            Some(q) => q.clone(),
            None if self.mods.is_empty() => String::new(),
            None => self.mods.join("::"),
        };
        if mid.is_empty() {
            self.crate_key.clone()
        } else {
            format!("{}::{}", self.crate_key, mid)
        }
    }
}

/// A detected `.lock()`/`.read()`/`.write()` (empty parens) with its
/// receiver path, innermost segment first reversed to source order.
struct RawAcq {
    /// Token index of the method name.
    tok: usize,
    line: u32,
    /// Receiver segments in source order (`self.inner.lock()` -> `[self,
    /// inner]`); empty when the receiver is not a plain ident path.
    receiver: Vec<String>,
}

/// Token ranges (inclusive) of fns nested inside `fns[ai]`'s body.
fn nested_ranges(fns: &[FnInfo], ai: usize) -> Vec<(usize, usize)> {
    let Some((open, close)) = fns[ai].body else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for (bi, other) in fns.iter().enumerate() {
        if bi == ai {
            continue;
        }
        if let Some((o, c)) = other.body {
            if o > open && c < close {
                out.push((other.sig.0, c));
            }
        }
    }
    out
}

/// True when token `i` is the method name of an empty-parens
/// `.lock()`/`.read()`/`.write()` call.
fn is_acquisition(tokens: &[Tok], i: usize) -> bool {
    matches!(tokens[i].text.as_str(), "lock" | "read" | "write")
        && i > 0
        && tokens[i - 1].text == "."
        && tokens.get(i + 1).is_some_and(|t| t.text == "(")
        && tokens.get(i + 2).is_some_and(|t| t.text == ")")
}

/// All acquisitions in `func`'s body outside `excluded` ranges.
fn raw_acquisitions(tokens: &[Tok], func: &FnInfo, excluded: &[(usize, usize)]) -> Vec<RawAcq> {
    let Some((open, close)) = func.body else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for i in open + 1..close.min(tokens.len()) {
        if excluded.iter().any(|&(a, b)| i >= a && i <= b) {
            continue;
        }
        if tokens[i].kind != TokKind::Ident || !is_acquisition(tokens, i) {
            continue;
        }
        // Walk the receiver path backward: `ident (. ident)* .` before it.
        let mut receiver = Vec::new();
        let mut j = i - 1; // the `.`
        loop {
            if j == 0 || tokens[j - 1].kind != TokKind::Ident {
                // Non-path receiver (call result, index, …): class unknown.
                receiver.clear();
                break;
            }
            receiver.push(tokens[j - 1].text.clone());
            if j >= 2 && tokens[j - 2].text == "." {
                j -= 2;
            } else {
                break;
            }
        }
        receiver.reverse();
        if receiver.is_empty() {
            continue;
        }
        out.push(RawAcq {
            tok: i,
            line: tokens[i].line,
            receiver,
        });
    }
    out
}

fn is_screaming(s: &str) -> bool {
    s.len() > 1
        && s.chars().any(|c| c.is_ascii_uppercase())
        && s.chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
}

/// Resolves an acquisition's lock class. `wrappers` is `None` during the
/// wrapper-map pre-pass, where bare `self.lock()` calls stay unresolved.
fn resolve_class(
    ctx: &FnCtx<'_>,
    acq: &RawAcq,
    wrappers: Option<&HashMap<(String, String, String), String>>,
) -> Option<String> {
    let ck = &ctx.crate_key;
    // A SCREAMING segment anywhere names a static: the strongest signal.
    if let Some(s) = acq.receiver.iter().find(|s| is_screaming(s)) {
        return Some(format!("{ck}::{s}"));
    }
    if acq.receiver[0] == "self" {
        if acq.receiver.len() == 1 {
            // `self.lock()` — a wrapper method handing out the guard.
            let method = ctx.file.tokens[acq.tok].text.clone();
            let key = (
                ck.clone(),
                ctx.func.qual.clone().unwrap_or_default(),
                method.clone(),
            );
            if let Some(ws) = wrappers {
                if let Some(class) = ws.get(&key) {
                    return Some(class.clone());
                }
                return Some(format!("{}::{}", ctx.local_prefix(), method));
            }
            return None;
        }
        // `self.field[.sub]*` — class is the field path on the impl type.
        return Some(format!(
            "{}::{}",
            ctx.local_prefix(),
            acq.receiver[1..].join(".")
        ));
    }
    if acq.receiver.len() == 1 {
        // A local: if its `let` initializer mentions a static, alias it
        // (`let pools = POOLS.get_or_init(…); pools.lock()`).
        if let Some(s) = local_static_alias(ctx, acq) {
            return Some(format!("{ck}::{s}"));
        }
    }
    Some(format!(
        "{}::{}::{}",
        ctx.local_prefix(),
        ctx.func.name,
        acq.receiver.join(".")
    ))
}

/// Searches backward from the acquisition for `let [mut] <recv> = …;` and
/// returns a SCREAMING ident from that initializer, if any.
fn local_static_alias(ctx: &FnCtx<'_>, acq: &RawAcq) -> Option<String> {
    let tokens = ctx.file.tokens;
    let (open, _) = ctx.func.body?;
    let name = &acq.receiver[0];
    let mut i = acq.tok;
    while i > open {
        i -= 1;
        if tokens[i].text != "let" {
            continue;
        }
        let mut j = i + 1;
        if tokens.get(j).is_some_and(|t| t.text == "mut") {
            j += 1;
        }
        if tokens.get(j).is_none_or(|t| &t.text != name) {
            continue;
        }
        if tokens.get(j + 1).is_none_or(|t| t.text != "=") {
            continue;
        }
        // Scan the initializer to its `;` for a SCREAMING ident.
        let mut k = j + 2;
        let mut depth = 0i32;
        while k < tokens.len() {
            let t = &tokens[k];
            match t.kind {
                TokKind::Open => depth += 1,
                TokKind::Close => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                TokKind::Ident if is_screaming(&t.text) => return Some(t.text.clone()),
                _ if t.text == ";" && depth == 0 => break,
                _ => {}
            }
            k += 1;
        }
        return None;
    }
    None
}

/// Computes a guard's binding (if let-bound) and the last token index of
/// its live scope.
fn guard_scope(tokens: &[Tok], func: &FnInfo, acq: &RawAcq) -> (Option<String>, usize) {
    let (body_open, body_close) = func.body.unwrap_or((0, tokens.len().saturating_sub(1)));
    let recv_start = acq.tok - 2 * (acq.receiver.len() - 1) - 2;
    let stmt_start = statement_start(tokens, body_open, recv_start.max(body_open + 1));
    let stmt_end = statement_end(tokens, acq.tok, body_close);
    let let_binding = let_bound_guard(tokens, stmt_start, acq);
    let (binding, mut end) = match let_binding {
        Some(name) => {
            let close = enclosing_block_close(tokens, stmt_end, body_close);
            (Some(name), close)
        }
        None => (None, stmt_end),
    };
    // `drop(binding)` ends the scope early.
    if let Some(b) = &binding {
        let mut j = stmt_end;
        while j + 3 <= end {
            if tokens[j].text == "drop"
                && tokens[j + 1].text == "("
                && tokens[j + 2].text == *b
                && tokens[j + 3].text == ")"
            {
                end = j;
                break;
            }
            j += 1;
        }
    }
    (binding, end)
}

/// First token of the statement containing `from` (scanning backward to a
/// `;` or the enclosing opener at depth 0).
fn statement_start(tokens: &[Tok], body_open: usize, from: usize) -> usize {
    let mut depth = 0i32;
    let mut i = from;
    while i > body_open {
        i -= 1;
        let t = &tokens[i];
        match t.kind {
            TokKind::Close => depth += 1,
            TokKind::Open => {
                if depth == 0 {
                    return i + 1;
                }
                depth -= 1;
            }
            _ if depth == 0 && t.text == ";" => return i + 1,
            _ => {}
        }
    }
    body_open + 1
}

/// Last token of the statement containing the acquisition at `from`:
/// forward to a `;` at depth 0, the enclosing close, or a `}` returning
/// to depth 0 (a brace-terminated expression statement such as
/// `match m.lock() { … }` in statement position ends at its own brace).
fn statement_end(tokens: &[Tok], from: usize, body_close: usize) -> usize {
    let mut depth = 0i32;
    let mut j = from;
    while j < body_close {
        j += 1;
        let t = &tokens[j];
        match t.kind {
            TokKind::Open => depth += 1,
            TokKind::Close => {
                if depth == 0 {
                    return j;
                }
                depth -= 1;
                if depth == 0 && t.text == "}" {
                    return j;
                }
            }
            _ if depth == 0 && t.text == ";" => return j,
            _ => {}
        }
    }
    body_close
}

/// `}` closing the block that contains the statement ending at `stmt_end`.
fn enclosing_block_close(tokens: &[Tok], stmt_end: usize, body_close: usize) -> usize {
    let mut depth = 0i32;
    let mut j = stmt_end;
    while j < body_close {
        j += 1;
        match tokens[j].kind {
            TokKind::Open => depth += 1,
            TokKind::Close => {
                if depth == 0 {
                    return j;
                }
                depth -= 1;
            }
            _ => {}
        }
    }
    body_close
}

/// Whether the statement starting at `stmt_start` let-binds the guard
/// acquired by `acq` (rather than consuming it inside the initializer).
fn let_bound_guard(tokens: &[Tok], stmt_start: usize, acq: &RawAcq) -> Option<String> {
    if tokens.get(stmt_start).is_none_or(|t| t.text != "let") {
        return None;
    }
    let mut j = stmt_start + 1;
    if tokens.get(j).is_some_and(|t| t.text == "mut") {
        j += 1;
    }
    let name = tokens
        .get(j)
        .filter(|t| t.kind == TokKind::Ident)?
        .text
        .clone();
    if name == "_" {
        return None;
    }
    // Skip an optional `: Type` annotation to the `=`.
    let mut k = j + 1;
    let mut depth = 0i32;
    while k < acq.tok {
        let t = &tokens[k];
        match t.kind {
            TokKind::Open => depth += 1,
            TokKind::Close => depth -= 1,
            _ if depth == 0 && t.text == "=" => break,
            _ => {}
        }
        k += 1;
    }
    if k >= acq.tok {
        return None;
    }
    // The initializer's leading token decides whether the binding can be
    // the guard itself: a deref/ref consumes it; `match m.lock() { … }` is
    // the poison-recovery idiom and binds the guard.
    match tokens.get(k + 1).map(|t| t.text.as_str()) {
        Some("*") | Some("&") => return None,
        Some("match") => return Some(name),
        _ => {}
    }
    // Postfix chain after the acquisition: only guard-preserving methods
    // keep the binding a guard (`.unwrap()`, `.map_err(…)?`); anything
    // else (`.len()`, `.pop_front()`) makes this a temporary.
    let mut p = acq.tok + 3; // past `( )`
    while let Some(t) = tokens.get(p) {
        match t.text.as_str() {
            "." => {
                let Some(m) = tokens.get(p + 1) else { break };
                if !GUARD_PRESERVING.contains(&m.text.as_str()) {
                    return None;
                }
                // Skip the method's balanced argument list.
                let mut depth = 0i32;
                let mut q = p + 2;
                while let Some(a) = tokens.get(q) {
                    match a.kind {
                        TokKind::Open => depth += 1,
                        TokKind::Close => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    q += 1;
                }
                p = q + 1;
            }
            "?" => p += 1,
            _ => break,
        }
    }
    Some(name)
}

/// Shape filter for blocking names: `join`-style names must be
/// empty-parens (thread join, not `str::join`); the rest qualify as
/// either method or free calls.
fn blocking_shape(tokens: &[Tok], i: usize) -> bool {
    let name = tokens[i].text.as_str();
    if name == "join" {
        return tokens.get(i + 2).is_some_and(|t| t.text == ")");
    }
    true
}

/// Whether the call at ident `i` has `needle` among its argument tokens.
fn args_contain(tokens: &[Tok], i: usize, needle: &str) -> bool {
    let mut depth = 0i32;
    let mut j = i + 1;
    while let Some(t) = tokens.get(j) {
        match t.kind {
            TokKind::Open => depth += 1,
            TokKind::Close => {
                depth -= 1;
                if depth == 0 {
                    return false;
                }
            }
            TokKind::Ident if t.text == needle => return true,
            _ => {}
        }
        j += 1;
    }
    false
}

/// First blocking op anywhere in the body (for caller propagation). When
/// `within` is given, restricts to that token range.
fn first_blocking(ctx: &FnCtx<'_>, within: Option<(usize, usize)>) -> Option<(String, u32)> {
    let (open, close) = within.or(ctx.func.body)?;
    let tokens = ctx.file.tokens;
    for i in open + 1..close.min(tokens.len()) {
        if ctx.excluded.iter().any(|&(a, b)| i >= a && i <= b) {
            continue;
        }
        let t = &tokens[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "ThreadPoolBuilder" {
            return Some(("ThreadPoolBuilder::build".to_string(), t.line));
        }
        if BLOCKING.contains(&t.text.as_str())
            && tokens.get(i + 1).is_some_and(|n| n.text == "(")
            && blocking_shape(tokens, i)
        {
            return Some((t.text.clone(), t.line));
        }
    }
    None
}

/// First segment of a plain ident-path receiver of the method call at
/// ident `j` (`inner.items.len()` -> `inner`); `None` when the receiver
/// is a call result or other complex expression.
fn method_receiver_root(tokens: &[Tok], j: usize) -> Option<String> {
    let mut k = j - 1; // the `.`
    loop {
        if k == 0 || tokens[k - 1].kind != TokKind::Ident {
            return None;
        }
        if k >= 2 && tokens[k - 2].text == "." {
            k -= 2;
        } else {
            return Some(tokens[k - 1].text.clone());
        }
    }
}

/// Resolves the call at ident `j` to workspace nodes, mirroring the call
/// graph's conservative rules but tightened for order tracking: method
/// aliasing stays within the caller's crate (cross-crate name smearing —
/// every `.len()` hitting every workspace `len` — manufactures cycles
/// that cannot exist), and the containing node itself is excluded.
fn resolve_call(
    ctx: &FnCtx<'_>,
    j: usize,
    graph: &CallGraph,
    by_crate_name: &HashMap<(&str, &str), Vec<usize>>,
    methods_by_name: &HashMap<&str, Vec<usize>>,
) -> Vec<usize> {
    let tokens = ctx.file.tokens;
    let name = tokens[j].text.as_str();
    let is_method = j > 0 && tokens[j - 1].text == ".";
    let mut targets: Vec<usize> = Vec::new();
    if is_method {
        if let Some(cands) = methods_by_name.get(name) {
            targets.extend(
                cands
                    .iter()
                    .copied()
                    .filter(|&i| graph.nodes[i].crate_key == ctx.crate_key),
            );
        }
    } else {
        let mut quals: Vec<&str> = Vec::new();
        let mut k = j;
        while k >= 2 && tokens[k - 1].text == "::" && tokens[k - 2].kind == TokKind::Ident {
            quals.push(tokens[k - 2].text.as_str());
            k -= 2;
        }
        let target_crate = quals
            .iter()
            .find_map(|q| q.strip_prefix("pcover_"))
            .unwrap_or(ctx.crate_key.as_str());
        let Some(cands) = by_crate_name.get(&(target_crate, name)) else {
            return targets;
        };
        let hint = quals
            .iter()
            .find(|q| !matches!(**q, "crate" | "self" | "super") && !q.starts_with("pcover_"));
        if let Some(hint) = hint {
            let filtered: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&i| {
                    graph.nodes[i].qual.as_deref() == Some(*hint)
                        || graph.nodes[i].module.iter().any(|m| m == hint)
                })
                .collect();
            if !filtered.is_empty() {
                targets.extend(filtered);
            } else {
                targets.extend(cands.iter().copied());
            }
        } else {
            targets.extend(cands.iter().copied());
        }
    }
    if let Some(own) = ctx.node {
        targets.retain(|&t| t != own);
    }
    targets.sort_unstable();
    targets.dedup();
    targets
}

/// `" via a -> b"` call chain from node `m` to the acquisition of `class`.
fn chain_str(
    graph: &CallGraph,
    trans_acq: &[BTreeMap<String, Reach>],
    m: usize,
    class: &str,
) -> String {
    let mut names = vec![graph.nodes[m].display()];
    let mut cur = m;
    while let Some(info) = trans_acq[cur].get(class) {
        match info.via {
            Some(v) => {
                names.push(graph.nodes[v].display());
                cur = v;
            }
            None => break,
        }
    }
    format!(" via {}", names.join(" -> "))
}

/// Call chain from node `m` to its nearest blocking op.
fn block_chain_str(graph: &CallGraph, trans_block: &[Option<Reach>], m: usize) -> String {
    let mut names = vec![graph.nodes[m].display()];
    let mut cur = m;
    while let Some(info) = &trans_block[cur] {
        match info.via {
            Some(v) => {
                names.push(graph.nodes[v].display());
                cur = v;
            }
            None => break,
        }
    }
    names.join(" -> ")
}

fn record_edge(
    edges: &mut BTreeMap<(String, String), EdgeProv>,
    outer: &str,
    inner: &str,
    prov: EdgeProv,
) {
    edges
        .entry((outer.to_string(), inner.to_string()))
        .or_insert(prov);
}

/// Condvar rules: wait-family calls must sit inside a `loop`/`while`/
/// `for`, and notifies must come from a function that acquires the lock.
fn condvar_checks(ctx: &FnCtx<'_>, holder: &str, out: &mut Vec<Violation>) {
    let Some((open, close)) = ctx.func.body else {
        return;
    };
    let tokens = ctx.file.tokens;
    for i in open + 1..close.min(tokens.len()) {
        if ctx.excluded.iter().any(|&(a, b)| i >= a && i <= b) {
            continue;
        }
        let t = &tokens[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let name = t.text.as_str();
        let is_wait = matches!(name, "wait" | "wait_timeout" | "wait_while");
        // A condvar wait takes the guard as an argument; empty-parens
        // waits (Barrier, Child) are not condvar waits.
        if is_wait
            && i > 0
            && tokens[i - 1].text == "."
            && tokens.get(i + 1).is_some_and(|n| n.text == "(")
            && tokens.get(i + 2).is_some_and(|n| n.text != ")")
            && !inside_loop(tokens, open, i)
        {
            out.push(Violation {
                rule: "condvar-misuse",
                file: ctx.file.rel.to_string(),
                line: t.line,
                message: format!(
                    "condvar `{name}` at line {} in {holder} is not inside a `loop`/`while`; spurious wakeups require re-checking the predicate",
                    t.line
                ),
            });
        }
        if matches!(name, "notify_one" | "notify_all")
            && i > 0
            && tokens[i - 1].text == "."
            && tokens.get(i + 1).is_some_and(|n| n.text == "(")
            && tokens.get(i + 2).is_some_and(|n| n.text == ")")
            && ctx.raw.is_empty()
        {
            out.push(Violation {
                rule: "condvar-misuse",
                file: ctx.file.rel.to_string(),
                line: t.line,
                message: format!(
                    "`{name}` at line {} in {holder}, which never acquires the associated lock; an unsynchronized notify can race the waiter's predicate check and be lost",
                    t.line
                ),
            });
        }
    }
}

/// Whether token `i` sits inside a `loop`/`while`/`for` body within the
/// function (walking enclosing blocks outward to `body_open`).
fn inside_loop(tokens: &[Tok], body_open: usize, i: usize) -> bool {
    let mut j = i;
    loop {
        // Enclosing opener, scanning backward.
        let mut depth = 0i32;
        let mut opener = None;
        let mut k = j;
        while k > body_open {
            k -= 1;
            match tokens[k].kind {
                TokKind::Close => depth += 1,
                TokKind::Open => {
                    if depth == 0 {
                        opener = Some(k);
                        break;
                    }
                    depth -= 1;
                }
                _ => {}
            }
        }
        let Some(op) = opener else {
            return false;
        };
        // Header scan: is this block a loop body? Balanced groups in the
        // header (e.g. `while let Some(v) = q.pop() {`) are skipped.
        let mut depth = 0i32;
        let mut k = op;
        while k > body_open {
            k -= 1;
            let t = &tokens[k];
            match t.kind {
                TokKind::Close => depth += 1,
                TokKind::Open => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                _ if depth > 0 => {}
                TokKind::Ident if matches!(t.text.as_str(), "loop" | "while" | "for") => {
                    return true;
                }
                _ if t.text == ";" || t.text == "=>" => break,
                _ => {}
            }
        }
        j = op;
    }
}

/// Emits `lock-order-cycle` violations: self-edges (re-acquisition while
/// held) and mutual reachability between distinct classes, once per
/// unordered pair at the lexicographically first edge.
fn cycle_violations(edges: &BTreeMap<(String, String), EdgeProv>, out: &mut Vec<Violation>) {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        adj.entry(a.as_str()).or_default().insert(b.as_str());
    }
    let reaches = |from: &str, to: &str| -> bool {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(c) = stack.pop() {
            if c == to {
                return true;
            }
            if !seen.insert(c) {
                continue;
            }
            if let Some(next) = adj.get(c) {
                stack.extend(next.iter().copied());
            }
        }
        false
    };
    let mut reported: BTreeSet<(String, String)> = BTreeSet::new();
    for ((a, b), prov) in edges {
        if a == b {
            out.push(Violation {
                rule: "lock-order-cycle",
                file: prov.file.clone(),
                line: prov.line,
                message: format!(
                    "lock `{a}` re-acquired while already held in {}{} ({}:{}); a non-reentrant mutex self-deadlocks here",
                    prov.holder, prov.chain, prov.file, prov.inner_line
                ),
            });
            continue;
        }
        let key = if a < b {
            (a.clone(), b.clone())
        } else {
            (b.clone(), a.clone())
        };
        if reported.contains(&key) || !reaches(b, a) {
            continue;
        }
        reported.insert(key);
        let reverse = edges
            .get(&(b.clone(), a.clone()))
            .map(|r| {
                format!(
                    "; the reverse order is taken in {}{} ({}:{})",
                    r.holder, r.chain, r.file, r.line
                )
            })
            .unwrap_or_else(|| "; the reverse order is reached transitively".to_string());
        out.push(Violation {
            rule: "lock-order-cycle",
            file: prov.file.clone(),
            line: prov.line,
            message: format!(
                "lock order cycle: `{a}` then `{b}` in {}{} ({}:{}){reverse}",
                prov.holder, prov.chain, prov.file, prov.inner_line
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Lexes/parses `src` as one `crates/fake/src/lib.rs` file, builds the
    /// call graph, and runs the concurrency pass over it.
    fn analyze_src(src: &str) -> Vec<Violation> {
        let lexed = crate::lexer::lex(src);
        let ast = crate::ast::parse(&lexed.tokens);
        let files = vec![FileInput {
            rel: "crates/fake/src/lib.rs",
            tokens: &lexed.tokens,
            ast: &ast,
            panic_sites: Vec::new(),
        }];
        let graph = crate::callgraph::build(&files);
        analyze(&files, &graph)
    }

    fn rules(vs: &[Violation]) -> Vec<&'static str> {
        vs.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn guard_held_across_blocking_io_is_flagged_at_the_acquisition() {
        let vs = analyze_src(
            "fn f(s: &mut std::net::TcpStream) {\n\
                 let g = STATE.lock().unwrap();\n\
                 s.write_all(b\"x\").ok();\n\
                 g;\n\
             }",
        );
        assert_eq!(rules(&vs), ["lock-across-blocking"]);
        assert_eq!(vs[0].line, 2, "anchored at the acquisition, not the I/O");
        assert!(vs[0].message.contains("fake::STATE"), "{}", vs[0].message);
    }

    #[test]
    fn dropping_the_guard_ends_its_scope() {
        let vs = analyze_src(
            "fn f(s: &mut std::net::TcpStream) {\n\
                 let g = STATE.lock().unwrap();\n\
                 drop(g);\n\
                 s.write_all(b\"x\").ok();\n\
             }",
        );
        assert!(vs.is_empty(), "guard dropped before the I/O: {vs:?}");
    }

    #[test]
    fn shadowing_does_not_end_the_first_guards_scope() {
        // Rust drops a shadowed binding at end of block, not at the
        // shadowing `let`: both guards are live across the sleep, and the
        // pass must see both (two anchors) plus the A-then-B order edge.
        let vs = analyze_src(
            "fn f() {\n\
                 let g = A_LOCK.lock().unwrap();\n\
                 let g = B_LOCK.lock().unwrap();\n\
                 std::thread::sleep(d());\n\
                 g;\n\
             }",
        );
        assert_eq!(
            rules(&vs),
            ["lock-across-blocking", "lock-across-blocking"],
            "both the shadowed and the shadowing guard are still held: {vs:?}"
        );
        assert_eq!((vs[0].line, vs[1].line), (2, 3));
    }

    #[test]
    fn match_scrutinee_guard_is_a_temporary_scoped_to_the_match() {
        let vs = analyze_src(
            "fn ok(m: &std::sync::Mutex<u32>, s: &mut std::net::TcpStream) {\n\
                 match m.lock() { Ok(g) => record(*g), Err(_) => {} }\n\
                 s.write_all(b\"x\").ok();\n\
             }\n\
             fn bad(m: &std::sync::Mutex<u32>, s: &mut std::net::TcpStream) {\n\
                 match m.lock() { Ok(g) => s.write_all(&[*g]).ok(), Err(_) => None }\n\
             }\n\
             fn record(_v: u32) {}",
        );
        assert_eq!(rules(&vs), ["lock-across-blocking"]);
        assert_eq!(
            vs[0].line, 6,
            "only the arm that blocks *inside* the match is under the guard"
        );
    }

    #[test]
    fn one_liner_temporary_guard_does_not_leak_into_the_next_statement() {
        // `q.lock().unwrap().len()` consumes the guard inside the
        // statement: the let binds a usize, not the guard.
        let vs = analyze_src(
            "fn f(q: &std::sync::Mutex<Vec<u32>>, s: &mut std::net::TcpStream) {\n\
                 let n = q.lock().unwrap().len();\n\
                 s.write_all(&[n as u8]).ok();\n\
             }",
        );
        assert!(vs.is_empty(), "temporary guard died at the `;`: {vs:?}");
    }

    #[test]
    fn poison_recovery_match_still_binds_the_guard() {
        let vs = analyze_src(
            "fn f(s: &mut std::net::TcpStream) {\n\
                 let g = match STATE.lock() { Ok(g) => g, Err(p) => p.into_inner() };\n\
                 s.write_all(b\"x\").ok();\n\
                 g;\n\
             }",
        );
        assert_eq!(rules(&vs), ["lock-across-blocking"]);
    }

    #[test]
    fn ab_ba_order_is_a_cycle_reported_once() {
        let vs = analyze_src(
            "fn forward() {\n\
                 let a = A_LOCK.lock().unwrap();\n\
                 let b = B_LOCK.lock().unwrap();\n\
                 drop(b); drop(a);\n\
             }\n\
             fn backward() {\n\
                 let b = B_LOCK.lock().unwrap();\n\
                 let a = A_LOCK.lock().unwrap();\n\
                 drop(a); drop(b);\n\
             }",
        );
        assert_eq!(rules(&vs), ["lock-order-cycle"], "{vs:?}");
        assert!(
            vs[0].message.contains("fake::A_LOCK") && vs[0].message.contains("fake::B_LOCK"),
            "{}",
            vs[0].message
        );
        assert!(
            vs[0].message.contains("reverse order"),
            "both directions shown: {}",
            vs[0].message
        );
    }

    #[test]
    fn interprocedural_order_edge_carries_the_call_chain() {
        let vs = analyze_src(
            "fn forward() {\n\
                 let a = A_LOCK.lock().unwrap();\n\
                 take_b();\n\
                 a;\n\
             }\n\
             fn take_b() {\n\
                 let b = B_LOCK.lock().unwrap();\n\
                 let a = A_LOCK.lock().unwrap();\n\
                 drop(a); drop(b);\n\
             }",
        );
        // `forward` reaches B while holding A (via take_b); `take_b`
        // itself takes B then A: one cycle, plus chain provenance.
        assert_eq!(rules(&vs), ["lock-order-cycle"], "{vs:?}");
        assert!(
            vs[0].message.contains("via") || vs[0].message.contains("take_b"),
            "chain shown: {}",
            vs[0].message
        );
    }

    #[test]
    fn reacquiring_the_same_lock_while_held_is_a_self_cycle() {
        let vs = analyze_src(
            "fn f() {\n\
                 let a = STATE.lock().unwrap();\n\
                 let b = STATE.lock().unwrap();\n\
                 drop(b); drop(a);\n\
             }",
        );
        assert_eq!(rules(&vs), ["lock-order-cycle"]);
        assert!(vs[0].message.contains("re-acquired"), "{}", vs[0].message);
    }

    #[test]
    fn wait_outside_a_loop_is_condvar_misuse() {
        let vs = analyze_src(
            "struct Q { inner: std::sync::Mutex<u32>, cv: std::sync::Condvar }\n\
             impl Q {\n\
                 fn bad(&self) {\n\
                     let g = self.inner.lock().unwrap();\n\
                     let g = self.cv.wait(g).unwrap();\n\
                     drop(g);\n\
                 }\n\
                 fn good(&self) {\n\
                     let mut g = self.inner.lock().unwrap();\n\
                     while *g == 0 { g = self.cv.wait(g).unwrap(); }\n\
                     drop(g);\n\
                 }\n\
             }",
        );
        assert_eq!(rules(&vs), ["condvar-misuse"], "{vs:?}");
        assert_eq!(vs[0].line, 5);
    }

    #[test]
    fn notify_without_any_lock_acquisition_is_condvar_misuse() {
        let vs = analyze_src(
            "struct Q { cv: std::sync::Condvar }\n\
             impl Q {\n\
                 fn poke(&self) { self.cv.notify_one(); }\n\
             }",
        );
        assert_eq!(rules(&vs), ["condvar-misuse"], "{vs:?}");
        assert!(vs[0].message.contains("notify_one"), "{}", vs[0].message);
    }

    #[test]
    fn own_guard_wait_in_a_loop_is_clean() {
        // The queue idiom: wait on the condvar associated with the held
        // guard, inside a predicate loop. Nothing to report.
        let vs = analyze_src(
            "struct Q { inner: std::sync::Mutex<u32>, cv: std::sync::Condvar }\n\
             impl Q {\n\
                 fn pop(&self) -> u32 {\n\
                     let mut g = self.inner.lock().unwrap();\n\
                     loop {\n\
                         if *g > 0 { return *g; }\n\
                         g = match self.cv.wait(g) { Ok(g) => g, Err(p) => p.into_inner() };\n\
                     }\n\
                 }\n\
             }",
        );
        assert!(vs.is_empty(), "{vs:?}");
    }

    #[test]
    fn guard_across_observer_hook_is_flagged() {
        let vs = analyze_src(
            "fn f(obs: &dyn Observer) {\n\
                 let g = STATE.lock().unwrap();\n\
                 obs.on_select(1);\n\
                 g;\n\
             }",
        );
        assert_eq!(rules(&vs), ["guard-across-callback"]);
        assert_eq!(vs[0].line, 2);
    }

    #[test]
    fn wrapper_method_unifies_with_its_underlying_field_class() {
        // `self.lock()` in `push` must resolve to the same class as the
        // wrapper's own `self.inner.lock()`, so the self-cycle of
        // re-locking through the wrapper is caught.
        let vs = analyze_src(
            "struct Q { inner: std::sync::Mutex<u32> }\n\
             impl Q {\n\
                 fn lock(&self) -> std::sync::MutexGuard<'_, u32> {\n\
                     match self.inner.lock() { Ok(g) => g, Err(p) => p.into_inner() }\n\
                 }\n\
                 fn bad(&self) {\n\
                     let g = self.lock();\n\
                     let h = self.inner.lock().unwrap();\n\
                     drop(h); drop(g);\n\
                 }\n\
             }",
        );
        assert_eq!(rules(&vs), ["lock-order-cycle"], "{vs:?}");
        assert!(
            vs[0].message.contains("Q::inner") && vs[0].message.contains("re-acquired"),
            "wrapper and field acquisitions share one class: {}",
            vs[0].message
        );
    }

    #[test]
    fn guard_released_by_inner_block_before_blocking_is_clean() {
        // The pool.rs shape: guard confined to a block, blocking work after.
        let vs = analyze_src(
            "fn f() {\n\
                 {\n\
                     let map = POOLS.lock().unwrap();\n\
                     if map.is_some() { return; }\n\
                 }\n\
                 let b = rayon::ThreadPoolBuilder::new();\n\
                 b;\n\
             }",
        );
        assert!(vs.is_empty(), "{vs:?}");
    }

    #[test]
    fn local_alias_of_a_static_resolves_to_the_static_class() {
        let vs = analyze_src(
            "fn f() {\n\
                 let pools = POOLS.get_or_init(init);\n\
                 let map = pools.lock().unwrap();\n\
                 std::thread::sleep(d());\n\
                 map;\n\
             }",
        );
        assert_eq!(rules(&vs), ["lock-across-blocking"]);
        assert!(vs[0].message.contains("fake::POOLS"), "{}", vs[0].message);
    }
}

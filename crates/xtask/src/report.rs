//! Machine-readable JSON report for CI.
//!
//! Hand-rolled emission (the engine has zero dependencies); the shape is
//! stable and versioned via the `schema` field. Schema `xtask-lint/2`
//! added the `pass` field (`"lint"` or `"audit"`) so one consumer can
//! ingest both passes' artifacts; `xtask-lint/3` added the `rules` array
//! enumerating every rule the producing binary knows, so a consumer can
//! tell "rule not present" from "rule not yet in this version";
//! `xtask-lint/4` added the four hot-path allocation rules
//! (`alloc-in-hot-loop`, `alloc-per-request`, `copy-in-kernel`,
//! `growable-unreserved`) to that array; `xtask-lint/5` adds
//! `unsafe-scope` (unsafe confined to the store crate's audited mmap
//! module):
//!
//! ```json
//! {
//!   "schema": "xtask-lint/5",
//!   "pass": "lint",
//!   "root": ".",
//!   "files_scanned": 123,
//!   "waivers_used": 4,
//!   "rules": ["float-eq", "no-unwrap", "..."],
//!   "clean": false,
//!   "violations": [
//!     {"rule": "no-unwrap", "file": "crates/core/src/x.rs", "line": 10,
//!      "message": "..."}
//!   ]
//! }
//! ```

use crate::rules::Violation;

/// Escapes a string for a JSON string literal body.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the full report as a JSON document (trailing newline included).
/// `pass` names the producing pass: `"lint"` or `"audit"`.
pub fn to_json(
    pass: &str,
    root: &str,
    files_scanned: usize,
    waivers_used: usize,
    violations: &[Violation],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"xtask-lint/5\",\n");
    out.push_str(&format!("  \"pass\": \"{}\",\n", esc(pass)));
    out.push_str(&format!("  \"root\": \"{}\",\n", esc(root)));
    out.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    out.push_str(&format!("  \"waivers_used\": {waivers_used},\n"));
    let rules: Vec<String> = crate::rules::RULES
        .iter()
        .map(|r| format!("\"{}\"", esc(r)))
        .collect();
    out.push_str(&format!("  \"rules\": [{}],\n", rules.join(", ")));
    out.push_str(&format!("  \"clean\": {},\n", violations.is_empty()));
    out.push_str("  \"violations\": [");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            esc(v.rule),
            esc(&v.file),
            v.line,
            esc(&v.message)
        ));
    }
    if !violations.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_and_shape() {
        let v = vec![Violation {
            rule: "no-unwrap",
            file: "crates/core/src/a.rs".to_string(),
            line: 7,
            message: "say \"no\"\nplease".to_string(),
        }];
        let j = to_json("lint", ".", 3, 1, &v);
        assert!(j.contains("\"schema\": \"xtask-lint/5\""));
        assert!(j.contains("\"pass\": \"lint\""));
        assert!(
            j.contains("\"rules\": [\"float-eq\"")
                && j.contains("\"lock-order-cycle\"")
                && j.contains("\"alloc-in-hot-loop\"")
                && j.contains("\"unsafe-scope\""),
            "rules array enumerates the binary's rule set"
        );
        assert!(j.contains("\"files_scanned\": 3"));
        assert!(j.contains("\"clean\": false"));
        assert!(j.contains("say \\\"no\\\"\\nplease"));
    }

    #[test]
    fn empty_report_is_clean() {
        let j = to_json("audit", ".", 10, 0, &[]);
        assert!(j.contains("\"pass\": \"audit\""));
        assert!(j.contains("\"clean\": true"));
        assert!(j.contains("\"violations\": []"));
    }
}

//! The `xtask` binary: workspace automation. Two subcommands — `lint`,
//! the lexical static-analysis pass, and `audit`, the semantic pass
//! (panic reachability, parallel-determinism rules, waiver hygiene, and
//! public-API snapshots).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use xtask::{audit_rules, report, rules, walk};

const USAGE: &str = "\
xtask — workspace automation for preference-cover

USAGE: cargo run -p xtask -- <lint|audit> [--json] [--report <path>] [--root <dir>]

SUBCOMMANDS:
    lint     Lexical static-analysis pass over every workspace .rs file.
             Exit code 0 when clean, 1 when violations are found, 2 on
             usage or I/O errors.
    audit    Semantic pass: panic reachability from public pcover_core
             functions, determinism rules inside rayon regions, solver
             registry dispatch in downstream layers, concurrency safety
             (lock-order graph, guard scopes, condvar discipline),
             hot-path allocation discipline (solver loops, the serve
             request path, gain/cover kernels), waiver hygiene, and
             public-API snapshot drift. Same exit codes.

OPTIONS (both):
    --json           Print the machine-readable JSON report to stdout
                     instead of human-readable diagnostics.
    --report <path>  Additionally write the JSON report to <path>
                     (for CI artifact upload).
    --root <dir>     Analyze the tree rooted at <dir> instead of the
                     workspace root (used by the passes' own tests).

OPTIONS (audit):
    --bless          Regenerate the public-API snapshots under
                     crates/xtask/api/ instead of diffing against them.

RULES (lint): float-eq, no-unwrap, no-expect, no-panic, no-index,
crate-header, ambient-entropy (plus waiver-form for malformed waivers).
RULES (audit): panic-path, par-argmax, par-float-accum, par-shared-state,
solver-dispatch, unsafe-scope, lock-order-cycle, lock-across-blocking,
condvar-misuse, guard-across-callback, alloc-in-hot-loop,
alloc-per-request, copy-in-kernel, growable-unreserved, stale-waiver,
shadowed-waiver, api-drift.
Waive a finding with `// lint: allow(<rule>) — <reason>` on the offending
line (or the line above), or `// lint: allow-file(<rule>) — <reason>` for a
whole file. The reason is mandatory. The hygiene and drift rules are not
waivable.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("audit") => audit(&args[1..]),
        Some("--help" | "-h" | "help") => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("error: unknown subcommand `{other}`\n");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
        None => {
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Default analysis root: the workspace root, two levels above this
/// crate's manifest, so `cargo run -p xtask -- lint` works from anywhere.
fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("."))
}

/// Options shared by both subcommands.
struct CommonOpts {
    json: bool,
    report_path: Option<PathBuf>,
    root: PathBuf,
    bless: bool,
}

/// Parses the shared flag set; `allow_bless` gates the audit-only flag.
fn parse_opts(args: &[String], allow_bless: bool) -> Result<CommonOpts, ExitCode> {
    let mut opts = CommonOpts {
        json: false,
        report_path: None,
        root: workspace_root(),
        bless: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--bless" if allow_bless => opts.bless = true,
            "--report" => match it.next() {
                Some(p) => opts.report_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --report needs a path argument");
                    return Err(ExitCode::from(2));
                }
            },
            "--root" => match it.next() {
                Some(p) => opts.root = PathBuf::from(p),
                None => {
                    eprintln!("error: --root needs a directory argument");
                    return Err(ExitCode::from(2));
                }
            },
            "--help" | "-h" => {
                print!("{USAGE}");
                return Err(ExitCode::SUCCESS);
            }
            other => {
                eprintln!("error: unknown option `{other}`\n");
                eprint!("{USAGE}");
                return Err(ExitCode::from(2));
            }
        }
    }
    Ok(opts)
}

/// Reads every workspace `.rs` file under `root` as `(relative, source)`.
fn load_files(root: &Path) -> Result<Vec<(String, String)>, ExitCode> {
    let files = match walk::rust_files(root) {
        Ok(files) => files,
        Err(e) => {
            eprintln!("error: cannot walk {}: {e}", root.display());
            return Err(ExitCode::from(2));
        }
    };
    let mut out = Vec::with_capacity(files.len());
    for file in &files {
        match std::fs::read_to_string(file) {
            Ok(src) => out.push((walk::relative(root, file), src)),
            Err(e) => {
                eprintln!("error: cannot read {}: {e}", file.display());
                return Err(ExitCode::from(2));
            }
        }
    }
    Ok(out)
}

/// Emits the report (stdout/file) and maps violations to the exit code.
fn finish(
    pass: &str,
    opts: &CommonOpts,
    files_scanned: usize,
    waivers_used: usize,
    violations: &[rules::Violation],
) -> ExitCode {
    let json_doc = report::to_json(
        pass,
        &opts.root.display().to_string(),
        files_scanned,
        waivers_used,
        violations,
    );
    if let Some(path) = &opts.report_path {
        if let Err(e) = std::fs::write(path, &json_doc) {
            eprintln!("error: cannot write report to {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if opts.json {
        print!("{json_doc}");
    } else {
        for v in violations {
            println!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.message);
        }
        println!(
            "xtask {pass}: {} violation(s), {} waived, {} files scanned",
            violations.len(),
            waivers_used,
            files_scanned
        );
    }
    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn lint(args: &[String]) -> ExitCode {
    let opts = match parse_opts(args, false) {
        Ok(o) => o,
        Err(code) => return code,
    };
    let files = match load_files(&opts.root) {
        Ok(f) => f,
        Err(code) => return code,
    };
    let mut violations: Vec<rules::Violation> = Vec::new();
    let mut waivers_used = 0usize;
    for (rel, src) in &files {
        let outcome = rules::lint_source(rel, src);
        waivers_used += outcome.waivers_used;
        violations.extend(outcome.violations);
    }
    violations.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    finish("lint", &opts, files.len(), waivers_used, &violations)
}

fn audit(args: &[String]) -> ExitCode {
    let opts = match parse_opts(args, true) {
        Ok(o) => o,
        Err(code) => return code,
    };
    let files = match load_files(&opts.root) {
        Ok(f) => f,
        Err(code) => return code,
    };
    let inputs: Vec<audit_rules::AuditFile> = files
        .into_iter()
        .map(|(rel, src)| audit_rules::AuditFile { rel, src })
        .collect();
    let outcome = audit_rules::run(&opts.root, &inputs, opts.bless);
    if !outcome.blessed.is_empty() && !opts.json {
        for path in &outcome.blessed {
            println!("blessed {path}");
        }
    }
    finish(
        "audit",
        &opts,
        inputs.len(),
        outcome.waivers_used,
        &outcome.violations,
    )
}

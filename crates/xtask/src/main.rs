//! The `xtask` binary: workspace automation. Currently one subcommand,
//! `lint`, the custom static-analysis pass.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

use xtask::{report, rules, walk};

const USAGE: &str = "\
xtask — workspace automation for preference-cover

USAGE: cargo run -p xtask -- lint [--json] [--report <path>] [--root <dir>]

SUBCOMMANDS:
    lint    Run the custom static-analysis pass over every workspace .rs
            file. Exit code 0 when clean, 1 when violations are found,
            2 on usage or I/O errors.

OPTIONS (lint):
    --json           Print the machine-readable JSON report to stdout
                     instead of human-readable diagnostics.
    --report <path>  Additionally write the JSON report to <path>
                     (for CI artifact upload).
    --root <dir>     Lint the tree rooted at <dir> instead of the
                     workspace root (used by the lint's own tests).

RULES: float-eq, no-unwrap, no-expect, no-panic, no-index, crate-header,
ambient-entropy (plus waiver-form for malformed waivers).
Waive a finding with `// lint: allow(<rule>) — <reason>` on the offending
line (or the line above), or `// lint: allow-file(<rule>) — <reason>` for a
whole file. The reason is mandatory.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("--help" | "-h" | "help") => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("error: unknown subcommand `{other}`\n");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
        None => {
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Default lint root: the workspace root, two levels above this crate's
/// manifest, so `cargo run -p xtask -- lint` works from any directory.
fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("."))
}

fn lint(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut report_path: Option<PathBuf> = None;
    let mut root = workspace_root();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--report" => match it.next() {
                Some(p) => report_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --report needs a path argument");
                    return ExitCode::from(2);
                }
            },
            "--root" => match it.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("error: --root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown option `{other}`\n");
                eprint!("{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let files = match walk::rust_files(&root) {
        Ok(files) => files,
        Err(e) => {
            eprintln!("error: cannot walk {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let mut violations: Vec<rules::Violation> = Vec::new();
    let mut waivers_used = 0usize;
    for file in &files {
        let src = match std::fs::read_to_string(file) {
            Ok(src) => src,
            Err(e) => {
                eprintln!("error: cannot read {}: {e}", file.display());
                return ExitCode::from(2);
            }
        };
        let rel = walk::relative(&root, file);
        let outcome = rules::lint_source(&rel, &src);
        waivers_used += outcome.waivers_used;
        violations.extend(outcome.violations);
    }
    violations.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));

    let json_doc = report::to_json(
        &root.display().to_string(),
        files.len(),
        waivers_used,
        &violations,
    );
    if let Some(path) = &report_path {
        if let Err(e) = std::fs::write(path, &json_doc) {
            eprintln!("error: cannot write report to {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if json {
        print!("{json_doc}");
    } else {
        for v in &violations {
            println!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.message);
        }
        println!(
            "xtask lint: {} violation(s), {} waived, {} files scanned",
            violations.len(),
            waivers_used,
            files.len()
        );
    }
    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

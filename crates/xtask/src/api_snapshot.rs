//! Public-API surface snapshots (`api-drift` rule).
//!
//! Every crate's plain-`pub` item surface is rendered to a normalized,
//! sorted text listing and compared against the committed snapshot in
//! `crates/xtask/api/<crate>.txt`. Drift fails the audit until the
//! snapshot is regenerated with `cargo run -p xtask -- audit --bless` —
//! so a solver API change is always a deliberate, reviewable diff, never a
//! side effect.
//!
//! The listing format is one line per item:
//! `<kind> <module-path> <normalized decl>` — e.g.
//! `fn greedy::solve pub fn solve ( g : & Graph , k : usize ) -> Result < Solution , SolveError >`.
//! Lines are sorted and deduplicated, so formatting or reordering of the
//! source never shows up as drift; only the declared surface does.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::ast::FileAst;
use crate::callgraph::{crate_key, file_modules};

/// Per-file input: workspace-relative path plus its parsed item index.
pub struct SnapshotInput<'a> {
    /// Workspace-relative path, forward slashes.
    pub rel: &'a str,
    /// The file's parsed items.
    pub ast: &'a FileAst,
}

/// Directory (relative to the workspace root) holding the snapshots.
pub const SNAPSHOT_DIR: &str = "crates/xtask/api";

/// Renders the current public surface: crate key → sorted listing (one
/// trailing newline; empty surfaces render to an empty string).
pub fn render(files: &[SnapshotInput<'_>]) -> BTreeMap<String, String> {
    let mut per_crate: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for f in files {
        let Some(ck) = crate_key(f.rel) else { continue };
        let fmods = file_modules(f.rel);
        let lines = per_crate.entry(ck).or_default();
        for item in &f.ast.pub_items {
            let path = if fmods.is_empty() {
                item.path.clone()
            } else if item.path.is_empty() {
                fmods.join("::")
            } else {
                format!("{}::{}", fmods.join("::"), item.path)
            };
            lines.push(format!("{} {} {}", item.kind, path, item.decl));
        }
    }
    per_crate
        .into_iter()
        .map(|(ck, mut lines)| {
            lines.sort_unstable();
            lines.dedup();
            let mut body = lines.join("\n");
            if !body.is_empty() {
                body.push('\n');
            }
            (ck, body)
        })
        .collect()
}

/// One detected divergence between the rendered surface and a snapshot.
#[derive(Clone, Debug)]
pub struct Drift {
    /// Crate key the drift belongs to.
    pub crate_key: String,
    /// Snapshot path relative to the workspace root.
    pub snapshot: String,
    /// Human-readable summary of the divergence.
    pub detail: String,
}

/// Compares the rendered surface against the committed snapshots.
///
/// Reports: a missing snapshot file, a snapshot for a crate that no longer
/// exists, and per-line additions/removals (capped, so a wholesale rewrite
/// stays readable).
pub fn check(root: &Path, rendered: &BTreeMap<String, String>) -> Vec<Drift> {
    let mut out = Vec::new();
    for (ck, body) in rendered {
        let snap_rel = format!("{SNAPSHOT_DIR}/{ck}.txt");
        let snap_path = root.join(&snap_rel);
        let committed = match fs::read_to_string(&snap_path) {
            Ok(s) => s,
            Err(_) => {
                out.push(Drift {
                    crate_key: ck.clone(),
                    snapshot: snap_rel,
                    detail: format!(
                        "no committed API snapshot for crate `{ck}` — run `cargo run -p xtask -- audit --bless`"
                    ),
                });
                continue;
            }
        };
        if committed == *body {
            continue;
        }
        out.push(Drift {
            crate_key: ck.clone(),
            snapshot: snap_rel,
            detail: diff_summary(&committed, body),
        });
    }
    // Snapshots whose crate vanished are stale state in-repo.
    if let Ok(entries) = fs::read_dir(root.join(SNAPSHOT_DIR)) {
        let mut names: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
        names.sort();
        for p in names {
            let Some(stem) = p.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            if p.extension().and_then(|e| e.to_str()) == Some("txt") && !rendered.contains_key(stem)
            {
                out.push(Drift {
                    crate_key: stem.to_string(),
                    snapshot: format!("{SNAPSHOT_DIR}/{stem}.txt"),
                    detail: format!(
                        "snapshot exists for crate `{stem}` but the crate has no public surface — delete it or re-bless"
                    ),
                });
            }
        }
    }
    out
}

/// Writes the rendered surface over the committed snapshots. Returns the
/// workspace-relative paths written.
pub fn bless(root: &Path, rendered: &BTreeMap<String, String>) -> io::Result<Vec<String>> {
    let dir = root.join(SNAPSHOT_DIR);
    fs::create_dir_all(&dir)?;
    let mut written = Vec::new();
    for (ck, body) in rendered {
        let rel = format!("{SNAPSHOT_DIR}/{ck}.txt");
        fs::write(root.join(&rel), body)?;
        written.push(rel);
    }
    Ok(written)
}

/// Line-set diff summary: `+added / -removed` with up to three examples of
/// each, enough to identify the drifting item without dumping the file.
fn diff_summary(committed: &str, current: &str) -> String {
    let old: Vec<&str> = committed.lines().collect();
    let new: Vec<&str> = current.lines().collect();
    let added: Vec<&str> = new.iter().filter(|l| !old.contains(l)).copied().collect();
    let removed: Vec<&str> = old.iter().filter(|l| !new.contains(l)).copied().collect();
    let mut parts = Vec::new();
    if !added.is_empty() {
        parts.push(format!("+{} (e.g. {})", added.len(), examples(&added)));
    }
    if !removed.is_empty() {
        parts.push(format!("-{} (e.g. {})", removed.len(), examples(&removed)));
    }
    if parts.is_empty() {
        // Same line set, different order/whitespace — still a mismatch the
        // bless step will normalize away.
        parts.push("snapshot not in normalized form — re-bless".to_string());
    }
    format!(
        "public surface drifted: {} — review, then `cargo run -p xtask -- audit --bless`",
        parts.join(", ")
    )
}

fn examples(lines: &[&str]) -> String {
    lines
        .iter()
        .take(3)
        .map(|l| format!("`{}`", truncate(l, 80)))
        .collect::<Vec<_>>()
        .join(", ")
}

fn truncate(s: &str, max: usize) -> &str {
    match s.char_indices().nth(max) {
        Some((i, _)) => &s[..i],
        None => s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast;
    use crate::lexer::lex;

    fn render_one(rel: &str, src: &str) -> BTreeMap<String, String> {
        let lexed = lex(src);
        let parsed = ast::parse(&lexed.tokens);
        render(&[SnapshotInput { rel, ast: &parsed }])
    }

    #[test]
    fn render_is_sorted_and_module_qualified() {
        let out = render_one(
            "crates/core/src/greedy.rs",
            "pub fn zeta() {}\npub fn alpha(x: u32) -> u32 { x }\n",
        );
        let body = out.get("core").expect("core surface");
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("fn greedy::alpha "));
        assert!(lines[1].starts_with("fn greedy::zeta "));
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted);
    }

    #[test]
    fn non_crate_files_and_private_items_excluded() {
        let out = render_one(
            "crates/core/tests/api.rs",
            "pub fn visible_in_tests_only() {}\n",
        );
        assert!(out.is_empty());
        let out = render_one("crates/core/src/lib.rs", "pub(crate) fn hidden() {}\n");
        assert_eq!(out.get("core").map(String::as_str), Some(""));
    }

    #[test]
    fn check_reports_missing_and_drift_and_clean() {
        let dir = std::env::temp_dir().join(format!("xtask-api-snap-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");

        let rendered = render_one("crates/core/src/lib.rs", "pub fn solve() {}\n");
        // Missing snapshot file.
        let drifts = check(&dir, &rendered);
        assert_eq!(drifts.len(), 1);
        assert!(drifts[0].detail.contains("no committed API snapshot"));
        // Bless, then clean.
        let written = bless(&dir, &rendered).expect("bless");
        assert_eq!(written, ["crates/xtask/api/core.txt"]);
        assert!(check(&dir, &rendered).is_empty());
        // Drift: surface gains an item.
        let grown = render_one(
            "crates/core/src/lib.rs",
            "pub fn solve() {}\npub fn extra() {}\n",
        );
        let drifts = check(&dir, &grown);
        assert_eq!(drifts.len(), 1);
        assert!(drifts[0].detail.contains("+1"), "{}", drifts[0].detail);
        // Stale snapshot for a vanished crate.
        std::fs::write(dir.join(SNAPSHOT_DIR).join("ghost.txt"), "fn x\n").expect("write");
        let drifts = check(&dir, &rendered);
        assert!(drifts.iter().any(|d| d.crate_key == "ghost"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Source-tree walking: find every workspace `.rs` file to analyze.
//!
//! Skipping is **by explicit policy**, not by luck of the invocation
//! directory: [`SKIP_DIRS`] names are pruned at every depth of the walk,
//! so a violation planted anywhere under `target/` or `vendor/` can never
//! reach the lint or audit passes no matter where the binary is run from.
//! The `vendored` fixture tree plus a process-level test in
//! `tests/audit_cli.rs` pin this behavior.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names that are never part of the analyzed workspace source,
/// wherever they appear in the tree:
///
/// - `target` — build output (generated code is rustc's problem);
/// - `vendor` — vendored third-party dependencies (e.g. `vendor/loom`,
///   the model-checking scheduler behind the serve loom tests), which are
///   not held to this workspace's invariants and must never fail its
///   gates — in particular the lockgraph rules never see loom's own
///   internal locking;
/// - `.git` — VCS metadata;
/// - `fixtures` — the integration tests' planted-violation trees, which
///   exist precisely to contain violations.
pub const SKIP_DIRS: [&str; 4] = ["target", "vendor", ".git", "fixtures"];

/// Recursively collects all `.rs` files under `root`, pruning
/// [`SKIP_DIRS`] at every level, sorted by path for deterministic reports.
pub fn rust_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    collect(root, &mut out)?;
    out.sort();
    Ok(out)
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            collect(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The path of `file` relative to `root`, with forward slashes (the form
/// [`crate::rules::classify`] expects).
pub fn relative(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_uses_forward_slashes() {
        let root = Path::new("/repo");
        let file = Path::new("/repo/crates/core/src/lib.rs");
        assert_eq!(relative(root, file), "crates/core/src/lib.rs");
    }

    #[test]
    fn walk_skips_vendor_and_target() {
        let tmp = std::env::temp_dir().join(format!("xtask-walk-{}", std::process::id()));
        let _ = fs::remove_dir_all(&tmp);
        fs::create_dir_all(tmp.join("src")).expect("mkdir");
        fs::create_dir_all(tmp.join("vendor/dep/src")).expect("mkdir");
        fs::create_dir_all(tmp.join("target/debug")).expect("mkdir");
        fs::write(tmp.join("src/lib.rs"), "pub fn f() {}\n").expect("write");
        fs::write(tmp.join("vendor/dep/src/lib.rs"), "pub fn g() {}\n").expect("write");
        fs::write(tmp.join("target/debug/gen.rs"), "pub fn h() {}\n").expect("write");
        let files = rust_files(&tmp).expect("walk");
        assert_eq!(files.len(), 1);
        assert!(files[0].ends_with("src/lib.rs"));
        let _ = fs::remove_dir_all(&tmp);
    }

    #[test]
    fn skip_dirs_pruned_at_any_depth() {
        // The policy applies wherever the name appears, not just at the
        // top level — a nested crate's own target/ or vendor/ is skipped
        // too.
        let tmp = std::env::temp_dir().join(format!("xtask-walk-deep-{}", std::process::id()));
        let _ = fs::remove_dir_all(&tmp);
        fs::create_dir_all(tmp.join("crates/sub/vendor/dep/src")).expect("mkdir");
        fs::create_dir_all(tmp.join("crates/sub/src")).expect("mkdir");
        fs::write(tmp.join("crates/sub/src/lib.rs"), "pub fn f() {}\n").expect("write");
        fs::write(
            tmp.join("crates/sub/vendor/dep/src/lib.rs"),
            "pub fn g() { Some(1).unwrap(); }\n",
        )
        .expect("write");
        let files = rust_files(&tmp).expect("walk");
        assert_eq!(files.len(), 1);
        assert!(files[0].ends_with("crates/sub/src/lib.rs"));
        let _ = fs::remove_dir_all(&tmp);
    }
}

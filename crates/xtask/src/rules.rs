//! The four lint rules and the waiver machinery.
//!
//! Rules (names are what waivers must reference):
//!
//! | rule | what it rejects | where |
//! |------|-----------------|-------|
//! | `float-eq` | `==`/`!=` with a cover/gain-like identifier nearby | everywhere except the approved helper module |
//! | `no-unwrap`, `no-expect`, `no-panic`, `no-index` | `.unwrap()`, `.expect(..)`, `panic!`, slice indexing | library crates, outside `#[cfg(test)]` |
//! | `crate-header` | crate roots missing `#![forbid(unsafe_code)]` / `#![warn(missing_docs)]` | every crate root |
//! | `ambient-entropy` | `thread_rng`, `from_entropy`, `SystemTime::now` | solver crates |
//!
//! Waivers are comments: `// lint: allow(<rule>) — <reason>` waives the same
//! line and the next line; `// lint: allow-file(<rule>) — <reason>` waives a
//! whole file. A waiver without a reason is itself a violation
//! (`waiver-form`): the reason IS the point.

use crate::lexer::{lex, Tok, TokKind};

/// All rule names, for validating waivers and for `--help`.
///
/// The first eight are the lexical `lint` pass (PR 1); the rest belong to
/// the semantic `audit` pass (see [`crate::audit_rules`]). Waivers may name
/// any of them — the two passes share one waiver grammar.
pub const RULES: [&str; 25] = [
    "float-eq",
    "no-unwrap",
    "no-expect",
    "no-panic",
    "no-index",
    "crate-header",
    "ambient-entropy",
    "waiver-form",
    // audit pass (semantic) rules:
    "panic-path",
    "par-argmax",
    "par-float-accum",
    "par-shared-state",
    "solver-dispatch",
    "unsafe-scope",
    // concurrency (lockgraph) rules:
    "lock-order-cycle",
    "lock-across-blocking",
    "condvar-misuse",
    "guard-across-callback",
    // hot-path (heatpath) rules:
    "alloc-in-hot-loop",
    "alloc-per-request",
    "copy-in-kernel",
    "growable-unreserved",
    "stale-waiver",
    "shadowed-waiver",
    "api-drift",
];

/// The audit rules that findings can be waived for. `stale-waiver`,
/// `shadowed-waiver`, and `api-drift` are deliberately *not* waivable: a
/// waiver about waivers would defeat the hygiene check, and API drift is
/// resolved by blessing the snapshot, not by silencing the diff.
pub const WAIVABLE_AUDIT_RULES: [&str; 14] = [
    "panic-path",
    "par-argmax",
    "par-float-accum",
    "par-shared-state",
    "solver-dispatch",
    "unsafe-scope",
    "lock-order-cycle",
    "lock-across-blocking",
    "condvar-misuse",
    "guard-across-callback",
    "alloc-in-hot-loop",
    "alloc-per-request",
    "copy-in-kernel",
    "growable-unreserved",
];

/// One diagnostic: rule, location, human message.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Rule name (one of [`RULES`]).
    pub rule: &'static str,
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
}

/// How a file participates in each rule, decided purely from its
/// workspace-relative path.
#[derive(Clone, Copy, Debug, Default)]
pub struct FileClass {
    /// Library-crate source (rule 2: no-unwrap/no-expect/no-panic/no-index).
    pub lib_scope: bool,
    /// Solver-crate source (rule 4: ambient-entropy).
    pub solver_scope: bool,
    /// A crate root (rule 3: crate-header).
    pub crate_root: bool,
    /// The approved float-comparison helper module (exempt from rule 1).
    pub float_approved: bool,
}

/// Library crates whose `src/` trees must not unwrap/expect/panic/index.
const LIB_CRATES: [&str; 6] = ["graph", "core", "clickstream", "datagen", "adapt", "store"];

/// Solver crates that must stay free of ambient entropy: everything they
/// produce is required to be reproducible from explicit seeds.
const SOLVER_CRATES: [&str; 3] = ["core", "graph", "adapt"];

/// The one module allowed to compare cover/gain floats exactly.
const FLOAT_APPROVED: [&str; 1] = ["crates/core/src/float.rs"];

/// Crate roots allowed to carry `#![deny(unsafe_code)]` instead of
/// `#![forbid(unsafe_code)]`: pcover-store hosts the one audited mmap
/// module, whose `#[allow(unsafe_code)]` a crate-level `forbid` could not
/// be overridden by. The audit pass's `unsafe-scope` rule pins every
/// `unsafe` token to that module, so the relaxation has teeth elsewhere.
const DENY_UNSAFE_ROOTS: [&str; 1] = ["crates/store/src/lib.rs"];

/// Classifies a workspace-relative path (forward slashes).
pub fn classify(rel: &str) -> FileClass {
    let mut fc = FileClass {
        float_approved: FLOAT_APPROVED.contains(&rel),
        ..FileClass::default()
    };
    for c in LIB_CRATES {
        if rel.starts_with(&format!("crates/{c}/src/")) {
            fc.lib_scope = true;
        }
    }
    for c in SOLVER_CRATES {
        if rel.starts_with(&format!("crates/{c}/src/")) {
            fc.solver_scope = true;
        }
    }
    if rel == "src/lib.rs" || rel == "src/main.rs" {
        fc.crate_root = true;
    }
    if let Some(rest) = rel.strip_prefix("crates/") {
        let mut parts = rest.split('/');
        let _crate_name = parts.next();
        let tail: Vec<&str> = parts.collect();
        if tail == ["src", "lib.rs"] || tail == ["src", "main.rs"] {
            fc.crate_root = true;
        }
    }
    fc
}

/// Result of linting one file.
#[derive(Debug, Default)]
pub struct LintOutcome {
    /// Violations that survived waiver matching.
    pub violations: Vec<Violation>,
    /// Count of violations suppressed by a waiver.
    pub waivers_used: usize,
}

/// A parsed waiver comment.
#[derive(Clone, Debug)]
pub struct Waiver {
    /// The rule names the waiver suppresses.
    pub rules: Vec<String>,
    /// 1-based line of the waiver comment.
    pub line: u32,
    /// True for `allow-file(..)` (whole-file scope), false for `allow(..)`
    /// (same line and the next line).
    pub file_level: bool,
}

impl Waiver {
    /// Whether this waiver suppresses a finding of `rule` at `line`.
    pub fn covers(&self, rule: &str, line: u32) -> bool {
        self.rules.iter().any(|r| r == rule)
            && (self.file_level || self.line == line || self.line + 1 == line)
    }
}

/// Parses waivers out of comments; malformed waivers become `waiver-form`
/// violations.
pub fn parse_waivers(
    rel: &str,
    comments: &[crate::lexer::Comment],
    violations: &mut Vec<Violation>,
) -> Vec<Waiver> {
    let mut waivers = Vec::new();
    for c in comments {
        // Doc comments (`///`, `//!`, `/**`, `/*!`) cannot carry waivers:
        // they are documentation (and may legitimately *describe* the
        // waiver syntax, as this module's own docs do).
        if c.text.starts_with(['/', '!', '*']) {
            continue;
        }
        let Some(pos) = c.text.find("lint:") else {
            continue;
        };
        let rest = c.text[pos + "lint:".len()..].trim_start();
        let (file_level, rest) = if let Some(r) = rest.strip_prefix("allow-file(") {
            (true, r)
        } else if let Some(r) = rest.strip_prefix("allow(") {
            (false, r)
        } else {
            violations.push(Violation {
                rule: "waiver-form",
                file: rel.to_string(),
                line: c.line,
                message: format!(
                    "unrecognized lint directive `{}`; use `lint: allow(<rule>) — <reason>`",
                    c.text
                ),
            });
            continue;
        };
        let Some(close) = rest.find(')') else {
            violations.push(Violation {
                rule: "waiver-form",
                file: rel.to_string(),
                line: c.line,
                message: "waiver is missing the closing `)` after the rule list".to_string(),
            });
            continue;
        };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let bad: Vec<&String> = rules
            .iter()
            .filter(|r| !RULES.contains(&r.as_str()))
            .collect();
        if rules.is_empty() || !bad.is_empty() {
            violations.push(Violation {
                rule: "waiver-form",
                file: rel.to_string(),
                line: c.line,
                message: format!(
                    "waiver names unknown rule(s) {:?}; known rules: {}",
                    bad,
                    RULES.join(", ")
                ),
            });
            continue;
        }
        // The reason is everything after the `)`, minus a leading dash of
        // any flavor. It must be non-empty: a waiver is a reviewed decision,
        // and the reason is where the review lives.
        let reason = rest[close + 1..]
            .trim_start()
            .trim_start_matches(['—', '–', '-', ':'])
            .trim();
        if reason.is_empty() {
            violations.push(Violation {
                rule: "waiver-form",
                file: rel.to_string(),
                line: c.line,
                message: format!(
                    "waiver for {:?} has no reason; write `lint: allow({}) — <why this is sound>`",
                    rules,
                    rules.join(", ")
                ),
            });
            continue;
        }
        waivers.push(Waiver {
            rules,
            line: c.line,
            file_level,
        });
    }
    waivers
}

/// Marks, for each token, whether it is inside test-only code: a block
/// introduced under `#[cfg(test)]` / `#[test]` (but not `#[cfg(not(test))]`).
pub(crate) fn test_region_mask(tokens: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut brace_depth: i64 = 0;
    // Brace depth at which the active test region's `{` was opened; tokens
    // are in-test while this is set. Only the outermost region matters.
    let mut region_open_depth: Option<i64> = None;
    // A test-marking attribute was seen and we are waiting for the `{` of
    // the item it decorates.
    let mut pending = false;
    // `(`/`[` nesting between the attribute and its item's `{`, so a `;`
    // inside e.g. `fn t(x: [u8; 2])` does not cancel the pending attr.
    let mut pending_paren_depth: i64 = 0;
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        // `#` `[` ... `]`: an outer attribute. Scan its identifiers (no
        // need while already inside a region — everything is masked there).
        if region_open_depth.is_none()
            && t.text == "#"
            && tokens.get(i + 1).is_some_and(|n| n.text == "[")
        {
            let mut j = i + 2;
            let mut bd = 1i64;
            let mut idents: Vec<&str> = Vec::new();
            while j < tokens.len() && bd > 0 {
                match tokens[j].kind {
                    TokKind::Open if tokens[j].text == "[" => bd += 1,
                    TokKind::Close if tokens[j].text == "]" => bd -= 1,
                    TokKind::Ident => idents.push(&tokens[j].text),
                    _ => {}
                }
                j += 1;
            }
            let mentions_test = idents.contains(&"test");
            let negated = idents.contains(&"not");
            if mentions_test && !negated {
                pending = true;
                pending_paren_depth = 0;
            }
            i = j;
            continue;
        }
        match t.text.as_str() {
            "{" => {
                if pending {
                    region_open_depth = Some(brace_depth);
                    pending = false;
                }
                brace_depth += 1;
            }
            "}" => {
                brace_depth -= 1;
                if region_open_depth == Some(brace_depth) {
                    // The closing brace itself still belongs to the region.
                    mask[i] = true;
                    region_open_depth = None;
                }
            }
            "(" | "[" if pending => pending_paren_depth += 1,
            ")" | "]" if pending => pending_paren_depth -= 1,
            // `#[cfg(test)] use foo;` — attribute on a braceless item.
            ";" if pending && pending_paren_depth == 0 => pending = false,
            _ => {}
        }
        if region_open_depth.is_some() {
            mask[i] = true;
        }
        i += 1;
    }
    mask
}

/// Rust keywords that can legally precede `[` without it being an index
/// expression (`let [a, b] = ..`, `if let [x] = ..`, `ref mut`, ...).
pub(crate) const KEYWORDS: [&str; 35] = [
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "static", "struct", "trait", "type", "unsafe", "use", "where", "while",
    "yield",
];

/// Identifier fragments that mark a float as a cover/gain value for rule 1.
const FLOAT_NAMES: [&str; 2] = ["cover", "gain"];

pub(crate) fn names_cover_value(ident: &str) -> bool {
    let lower = ident.to_ascii_lowercase();
    FLOAT_NAMES.iter().any(|n| lower.contains(n))
}

/// Lints one file given its workspace-relative path and contents.
pub fn lint_source(rel: &str, src: &str) -> LintOutcome {
    let lexed = lex(src);
    lint_lexed(rel, &lexed)
}

/// Lints an already-lexed file (the audit pass lexes once and shares).
pub fn lint_lexed(rel: &str, lexed: &crate::lexer::Lexed) -> LintOutcome {
    let mut outcome = LintOutcome::default();
    let waivers = parse_waivers(rel, &lexed.comments, &mut outcome.violations);
    let raw = raw_violations(rel, lexed);

    // Waiver matching: a file-level waiver covers its rule everywhere; a
    // line waiver covers its own line and the line below it.
    for v in raw {
        if waivers.iter().any(|w| w.covers(v.rule, v.line)) {
            outcome.waivers_used += 1;
        } else {
            outcome.violations.push(v);
        }
    }
    outcome
}

/// The four lexical rule families, **before** waiver matching. The audit
/// pass uses this both as the panic-site inventory for reachability and as
/// the ground truth for waiver-hygiene (a waiver with no raw finding under
/// it is stale).
pub fn raw_violations(rel: &str, lexed: &crate::lexer::Lexed) -> Vec<Violation> {
    let fc = classify(rel);
    let tokens = &lexed.tokens;
    let mut raw: Vec<Violation> = Vec::new();
    let in_test = test_region_mask(tokens);

    // Rule 1: float-eq — `==`/`!=` with a cover/gain identifier in the same
    // expression neighborhood (stop the scan at statement/block boundaries).
    if !fc.float_approved {
        for (i, t) in tokens.iter().enumerate() {
            if t.kind != TokKind::Op || (t.text != "==" && t.text != "!=") {
                continue;
            }
            let boundary = |tok: &Tok| matches!(tok.text.as_str(), ";" | "{" | "}" | ",");
            let mut nearby = Vec::new();
            for tok in tokens[..i].iter().rev().take(6) {
                if boundary(tok) {
                    break;
                }
                if tok.kind == TokKind::Ident {
                    nearby.push(tok.text.as_str());
                }
            }
            for tok in tokens.iter().skip(i + 1).take(6) {
                if boundary(tok) {
                    break;
                }
                if tok.kind == TokKind::Ident {
                    nearby.push(tok.text.as_str());
                }
            }
            if let Some(name) = nearby.iter().find(|n| names_cover_value(n)) {
                raw.push(Violation {
                    rule: "float-eq",
                    file: rel.to_string(),
                    line: t.line,
                    message: format!(
                        "exact `{}` on cover/gain value `{name}`; use pcover_core::float \
                         (approx_eq/cmp_gain/improves_argmax) instead",
                        t.text
                    ),
                });
            }
        }
    }

    // Rule 2: no-unwrap / no-expect / no-panic / no-index in library crates,
    // outside test code.
    if fc.lib_scope {
        for (i, t) in tokens.iter().enumerate() {
            if in_test[i] {
                continue;
            }
            let prev = i.checked_sub(1).and_then(|p| tokens.get(p));
            let next = tokens.get(i + 1);
            if t.kind == TokKind::Ident && (t.text == "unwrap" || t.text == "expect") {
                let is_call =
                    prev.is_some_and(|p| p.text == ".") && next.is_some_and(|n| n.text == "(");
                if is_call {
                    let rule = if t.text == "unwrap" {
                        "no-unwrap"
                    } else {
                        "no-expect"
                    };
                    raw.push(Violation {
                        rule,
                        file: rel.to_string(),
                        line: t.line,
                        message: format!(
                            ".{}() in library code; propagate a SolveError (or waive with \
                             `lint: allow({rule}) — <reason>`)",
                            t.text
                        ),
                    });
                }
            }
            if t.kind == TokKind::Ident && t.text == "panic" && next.is_some_and(|n| n.text == "!")
            {
                raw.push(Violation {
                    rule: "no-panic",
                    file: rel.to_string(),
                    line: t.line,
                    message: "panic! in library code; return an error instead".to_string(),
                });
            }
            if t.kind == TokKind::Open && t.text == "[" {
                let indexes = prev.is_some_and(|p| match p.kind {
                    TokKind::Ident => !KEYWORDS.contains(&p.text.as_str()),
                    TokKind::Close => p.text == ")" || p.text == "]",
                    _ => false,
                });
                if indexes {
                    raw.push(Violation {
                        rule: "no-index",
                        file: rel.to_string(),
                        line: t.line,
                        message: "slice indexing can panic; use .get()/.get_mut() or waive \
                                  with a bounds argument"
                            .to_string(),
                    });
                }
            }
        }
    }

    // Rule 3: crate-header — crate roots must carry both inner attributes.
    if fc.crate_root {
        let has_inner = |want: [&str; 2]| -> bool {
            tokens.windows(3).enumerate().any(|(i, w)| {
                w[0].text == "#" && w[1].text == "!" && w[2].text == "[" && {
                    let mut bd = 1i64;
                    let mut idents = Vec::new();
                    let mut j = i + 3;
                    while j < tokens.len() && bd > 0 {
                        match tokens[j].text.as_str() {
                            "[" => bd += 1,
                            "]" => bd -= 1,
                            _ => {
                                if tokens[j].kind == TokKind::Ident {
                                    idents.push(tokens[j].text.as_str());
                                }
                            }
                        }
                        j += 1;
                    }
                    want.iter().all(|w| idents.contains(w))
                }
            })
        };
        let deny_ok = DENY_UNSAFE_ROOTS.contains(&rel) && has_inner(["deny", "unsafe_code"]);
        if !has_inner(["forbid", "unsafe_code"]) && !deny_ok {
            raw.push(Violation {
                rule: "crate-header",
                file: rel.to_string(),
                line: 1,
                message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
            });
        }
        if !has_inner(["warn", "missing_docs"]) && !has_inner(["deny", "missing_docs"]) {
            raw.push(Violation {
                rule: "crate-header",
                file: rel.to_string(),
                line: 1,
                message: "crate root is missing `#![warn(missing_docs)]`".to_string(),
            });
        }
    }

    // Rule 4: ambient-entropy — solver crates must be seed-deterministic.
    if fc.solver_scope {
        for (i, t) in tokens.iter().enumerate() {
            if t.kind != TokKind::Ident {
                continue;
            }
            let flagged = match t.text.as_str() {
                "thread_rng" | "from_entropy" => true,
                "SystemTime" => {
                    tokens.get(i + 1).is_some_and(|n| n.text == "::")
                        && tokens.get(i + 2).is_some_and(|n| n.text == "now")
                }
                _ => false,
            };
            if flagged {
                raw.push(Violation {
                    rule: "ambient-entropy",
                    file: rel.to_string(),
                    line: t.line,
                    message: format!(
                        "`{}` introduces ambient entropy in a solver crate; take an explicit \
                         seed (StdRng::seed_from_u64) so runs are reproducible",
                        t.text
                    ),
                });
            }
        }
    }

    raw
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIB: &str = "crates/core/src/fake.rs";

    fn rules_of(outcome: &LintOutcome) -> Vec<&'static str> {
        outcome.violations.iter().map(|v| v.rule).collect()
    }

    // ------------------------------------------------------------ float-eq
    #[test]
    fn float_eq_flags_exact_compare_on_gain() {
        let out = lint_source(LIB, "fn f(gain: f64, best: f64) -> bool { gain == best }");
        assert_eq!(rules_of(&out), ["float-eq"]);
    }

    #[test]
    fn float_eq_flags_ne_on_cover() {
        let out = lint_source(
            "tests/x.rs",
            "fn f(c: f64, cover: f64) -> bool { c != cover }",
        );
        assert_eq!(rules_of(&out), ["float-eq"]);
    }

    #[test]
    fn float_eq_ignores_unrelated_identifiers_and_strings() {
        let out = lint_source(LIB, "fn f(a: u32, b: u32) -> bool { a == b }");
        assert!(out.violations.is_empty());
        let out = lint_source(LIB, r#"fn f(cmd: &str) -> bool { cmd == "cover" }"#);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }

    #[test]
    fn float_eq_allows_the_approved_module() {
        let out = lint_source(
            "crates/core/src/float.rs",
            "fn eq(gain: f64, other_gain: f64) -> bool { gain == other_gain }",
        );
        assert!(out.violations.is_empty());
    }

    #[test]
    fn float_eq_window_stops_at_statement_boundary() {
        // `cover` is in a previous statement; the comparison itself is
        // integer-only and must not be flagged.
        let out = lint_source(
            LIB,
            "fn f(cover: f64, i: usize) { let c = cover; if i == 0 {} }",
        );
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }

    // ------------------------------------------------------------- rule 2
    #[test]
    fn unwrap_flagged_in_lib_code() {
        let out = lint_source(LIB, "fn f(v: Option<u32>) -> u32 { v.unwrap() }");
        assert_eq!(rules_of(&out), ["no-unwrap"]);
    }

    #[test]
    fn unwrap_fine_outside_lib_scope_and_in_tests() {
        let cli = lint_source(
            "crates/cli/src/x.rs",
            "fn f(v: Option<u32>) -> u32 { v.unwrap() }",
        );
        assert!(cli.violations.is_empty());
        let test = lint_source(
            LIB,
            "#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { Some(1).unwrap(); }\n}",
        );
        assert!(test.violations.is_empty(), "{:?}", test.violations);
    }

    #[test]
    fn unwrap_like_names_not_flagged() {
        let out = lint_source(LIB, "fn f(v: Option<u32>) -> u32 { v.unwrap_or(0) }");
        assert!(out.violations.is_empty());
    }

    #[test]
    fn expect_and_panic_flagged() {
        let out = lint_source(LIB, "fn f(v: Option<u32>) -> u32 { v.expect(\"set\") }");
        assert_eq!(rules_of(&out), ["no-expect"]);
        let out = lint_source(LIB, "fn f() { panic!(\"boom\"); }");
        assert_eq!(rules_of(&out), ["no-panic"]);
    }

    #[test]
    fn indexing_flagged_but_not_array_literals_or_attrs() {
        let out = lint_source(LIB, "fn f(v: &[u32], i: usize) -> u32 { v[i] }");
        assert_eq!(rules_of(&out), ["no-index"]);
        let out = lint_source(
            LIB,
            "#[derive(Debug)]\nstruct S;\nfn f() -> [u32; 2] { let a = [1, 2]; a }",
        );
        // `a` in the tail position is returned, not indexed; the literal
        // `[1, 2]` follows `=`.
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        let out = lint_source(LIB, "fn f() { let [a, b] = [1, 2]; let _ = (a, b); }");
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }

    #[test]
    fn chained_indexing_after_call_flagged() {
        let out = lint_source(LIB, "fn f(v: Vec<Vec<u32>>) -> u32 { v.clone()[0][1] }");
        assert_eq!(rules_of(&out), ["no-index", "no-index"]);
    }

    // ------------------------------------------------------------- waivers
    #[test]
    fn line_waiver_suppresses_same_and_next_line() {
        let same = "fn f(v: Option<u32>) -> u32 { v.unwrap() } // lint: allow(no-unwrap) — checked by caller";
        let out = lint_source(LIB, same);
        assert!(out.violations.is_empty());
        assert_eq!(out.waivers_used, 1);
        let above = "// lint: allow(no-unwrap) — invariant: always Some here\nfn f(v: Option<u32>) -> u32 { v.unwrap() }";
        let out = lint_source(LIB, above);
        assert!(out.violations.is_empty());
        assert_eq!(out.waivers_used, 1);
    }

    #[test]
    fn file_waiver_covers_whole_file_but_only_its_rule() {
        let src =
            "// lint: allow-file(no-index) — indices come from GraphBuilder, always in bounds\n\
                   fn f(v: &[u32]) -> u32 { v[0] + v[1] }\n\
                   fn g(o: Option<u32>) -> u32 { o.unwrap() }\n";
        let out = lint_source(LIB, src);
        assert_eq!(rules_of(&out), ["no-unwrap"]);
        assert_eq!(out.waivers_used, 2);
    }

    #[test]
    fn waiver_without_reason_is_a_violation() {
        let out = lint_source(LIB, "fn f() {} // lint: allow(no-unwrap)");
        assert_eq!(rules_of(&out), ["waiver-form"]);
    }

    #[test]
    fn waiver_with_unknown_rule_is_a_violation() {
        let out = lint_source(LIB, "fn f() {} // lint: allow(no-such-rule) — whatever");
        assert_eq!(rules_of(&out), ["waiver-form"]);
    }

    // ------------------------------------------------------- crate-header
    #[test]
    fn crate_root_missing_headers_flagged() {
        let out = lint_source("crates/core/src/lib.rs", "//! Docs.\npub fn f() {}\n");
        assert_eq!(rules_of(&out), ["crate-header", "crate-header"]);
    }

    #[test]
    fn store_root_may_deny_instead_of_forbid_unsafe() {
        let deny = "//! Docs.\n#![deny(unsafe_code)]\n#![warn(missing_docs)]\npub fn f() {}\n";
        // The store crate root is the one place `deny` substitutes for
        // `forbid` (its mmap module carries an audited `allow`).
        let out = lint_source("crates/store/src/lib.rs", deny);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        // Everywhere else `deny` is not enough.
        let out = lint_source("crates/core/src/lib.rs", deny);
        assert_eq!(rules_of(&out), ["crate-header"]);
    }

    #[test]
    fn crate_root_with_headers_clean_and_non_roots_exempt() {
        let good = "//! Docs.\n#![forbid(unsafe_code)]\n#![warn(missing_docs)]\npub fn f() {}\n";
        let out = lint_source("crates/core/src/lib.rs", good);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        let out = lint_source("crates/core/src/greedy.rs", "pub fn f() {}\n");
        assert!(out.violations.is_empty());
    }

    // --------------------------------------------------- ambient-entropy
    #[test]
    fn thread_rng_and_system_time_flagged_in_solver_crates() {
        let out = lint_source(LIB, "fn f() { let mut rng = thread_rng(); }");
        assert_eq!(rules_of(&out), ["ambient-entropy"]);
        let out = lint_source(
            "crates/graph/src/x.rs",
            "fn f() { let t = std::time::SystemTime::now(); }",
        );
        assert_eq!(rules_of(&out), ["ambient-entropy"]);
    }

    #[test]
    fn seeded_rng_and_instant_are_fine_and_datagen_exempt() {
        let out = lint_source(
            LIB,
            "fn f(seed: u64) { let rng = StdRng::seed_from_u64(seed); let t = Instant::now(); }",
        );
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        let out = lint_source(
            "crates/datagen/src/x.rs",
            "fn f() { let rng = thread_rng(); }",
        );
        assert!(out.violations.is_empty());
    }
}

//! A small, purpose-built Rust lexer.
//!
//! The lint rules only need a token stream that is *reliable about what is
//! code and what is not*: string literals, char literals, lifetimes, and
//! comments must never be mistaken for operators or identifiers, because the
//! rules pattern-match on token shapes (`.` `unwrap` `(`, `==` near a
//! `cover`-like identifier, and so on). Full fidelity on numeric literal
//! grammar is *not* required — a float split across two tokens is harmless
//! here — so the lexer stays ~200 lines instead of a full libsyntax clone.

/// What kind of token a [`Tok`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`cover`, `fn`, `unwrap`, ...).
    Ident,
    /// An operator or other punctuation (`==`, `.`, `::`, `#`, ...).
    Op,
    /// An opening bracket: `(`, `[`, or `{`.
    Open,
    /// A closing bracket: `)`, `]`, or `}`.
    Close,
    /// A literal: string, raw string, byte string, char, or number.
    Lit,
    /// A lifetime such as `'a` (kept distinct so `'a` is never read as an
    /// unterminated char literal).
    Lifetime,
}

/// One lexed token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// Exact source text of the token (for `Lit`, possibly abbreviated to
    /// its opening delimiter — rules never inspect literal contents).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// A comment (line or block) with the 1-based line it starts on. Line
/// waivers are parsed out of these.
#[derive(Clone, Debug)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment text without the `//`/`/*` delimiters, trimmed.
    pub text: String,
}

/// The result of lexing one file: code tokens and comments, separately.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Tok>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `src`. Never fails: unterminated literals or comments simply
/// consume the rest of the file, which is the useful behavior for a linter
/// (the compiler proper will reject such a file anyway).
pub fn lex(src: &str) -> Lexed {
    Lexer {
        b: src.as_bytes(),
        i: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    b: &'a [u8],
    i: usize,
    line: u32,
    out: Lexed,
}

impl Lexer<'_> {
    fn run(mut self) -> Lexed {
        while self.i < self.b.len() {
            let c = self.b[self.i];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                b' ' | b'\t' | b'\r' => self.i += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string_lit(),
                b'\'' => self.char_or_lifetime(),
                b'r' | b'b' if self.raw_or_byte_prefix() => {}
                _ if c == b'_' || c.is_ascii_alphabetic() => self.ident(),
                _ if c.is_ascii_digit() => self.number(),
                _ => self.operator(),
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.b.get(self.i + ahead).copied()
    }

    fn push(&mut self, kind: TokKind, text: &str, line: u32) {
        self.out.tokens.push(Tok {
            kind,
            text: text.to_string(),
            line,
        });
    }

    fn line_comment(&mut self) {
        let start_line = self.line;
        let from = self.i + 2;
        while self.i < self.b.len() && self.b[self.i] != b'\n' {
            self.i += 1;
        }
        let text = String::from_utf8_lossy(&self.b[from.min(self.i)..self.i])
            .trim()
            .to_string();
        self.out.comments.push(Comment {
            line: start_line,
            text,
        });
    }

    fn block_comment(&mut self) {
        let start_line = self.line;
        let from = self.i + 2;
        self.i += 2;
        let mut depth = 1usize;
        let mut end = self.b.len();
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    depth += 1;
                    self.i += 2;
                }
                b'*' if self.peek(1) == Some(b'/') => {
                    depth -= 1;
                    if depth == 0 {
                        end = self.i;
                        self.i += 2;
                        break;
                    }
                    self.i += 2;
                }
                _ => self.i += 1,
            }
        }
        let text = String::from_utf8_lossy(&self.b[from.min(end)..end.min(self.b.len())])
            .trim()
            .to_string();
        self.out.comments.push(Comment {
            line: start_line,
            text,
        });
    }

    /// Skips one escape sequence (`\x`). An escaped newline — the `\` line
    /// continuation inside string literals — still advances the line
    /// counter; missing that shifted every subsequent token's line and
    /// mis-aimed line-based waivers.
    fn skip_escape(&mut self) {
        if self.peek(1) == Some(b'\n') {
            self.line += 1;
        }
        self.i += 2;
    }

    /// Ordinary (non-raw) string literal, with escape handling.
    fn string_lit(&mut self) {
        let line = self.line;
        self.i += 1;
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'\\' => self.skip_escape(),
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                b'"' => {
                    self.i += 1;
                    break;
                }
                _ => self.i += 1,
            }
        }
        self.push(TokKind::Lit, "\"..\"", line);
    }

    /// `'a` (lifetime) vs `'x'` / `'\n'` (char literal).
    fn char_or_lifetime(&mut self) {
        let line = self.line;
        let next = self.peek(1);
        let is_lifetime = matches!(next, Some(c) if c == b'_' || c.is_ascii_alphabetic())
            && self.peek(2) != Some(b'\'');
        if is_lifetime {
            let from = self.i;
            self.i += 1;
            while self
                .peek(0)
                .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric())
            {
                self.i += 1;
            }
            let text = String::from_utf8_lossy(&self.b[from..self.i]).to_string();
            self.push(TokKind::Lifetime, &text, line);
            return;
        }
        // Char literal: 'x', '\n', '\u{1F600}'.
        self.i += 1;
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'\\' => self.skip_escape(),
                b'\'' => {
                    self.i += 1;
                    break;
                }
                b'\n' => {
                    // Unterminated; bail at end of line.
                    break;
                }
                _ => self.i += 1,
            }
        }
        self.push(TokKind::Lit, "'..'", line);
    }

    /// Handles `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#`, `b'x'`, and raw
    /// identifiers `r#ident`. Returns true (having consumed input) when the
    /// `r`/`b` at the cursor introduced one of those forms; false leaves the
    /// cursor untouched so the caller lexes a plain identifier.
    fn raw_or_byte_prefix(&mut self) -> bool {
        let line = self.line;
        let c = self.b[self.i];
        let mut j = self.i + 1;
        if c == b'b' && self.b.get(j) == Some(&b'r') {
            j += 1;
        }
        let mut hashes = 0usize;
        while self.b.get(j) == Some(&b'#') {
            hashes += 1;
            j += 1;
        }
        match self.b.get(j) {
            Some(b'"') => {
                // Raw or byte(-raw) string: scan for `"` followed by
                // `hashes` hash marks. Plain b"..." (hashes == 0, no `r`)
                // still supports escapes, but `\"` inside it would just
                // terminate the scan one char early and resync at the next
                // quote — acceptable for a linter, and byte strings are
                // rare in this workspace.
                let raw = c == b'r' || self.b.get(self.i + 1) == Some(&b'r');
                self.i = j + 1;
                while self.i < self.b.len() {
                    match self.b[self.i] {
                        b'\n' => {
                            self.line += 1;
                            self.i += 1;
                        }
                        b'\\' if !raw => self.skip_escape(),
                        b'"' => {
                            let mut k = 0usize;
                            while k < hashes && self.b.get(self.i + 1 + k) == Some(&b'#') {
                                k += 1;
                            }
                            if k == hashes {
                                self.i += 1 + hashes;
                                break;
                            }
                            self.i += 1;
                        }
                        _ => self.i += 1,
                    }
                }
                self.push(TokKind::Lit, "r\"..\"", line);
                true
            }
            Some(b'\'') if c == b'b' && hashes == 0 => {
                // Byte char literal b'x'.
                self.i = j;
                self.char_or_lifetime();
                true
            }
            Some(&d) if hashes == 1 && (d == b'_' || d.is_ascii_alphabetic()) && c == b'r' => {
                // Raw identifier r#ident: lex as the identifier itself.
                self.i = j;
                self.ident();
                true
            }
            _ => {
                // Plain identifier starting with r/b.
                self.ident();
                true
            }
        }
    }

    fn ident(&mut self) {
        let line = self.line;
        let from = self.i;
        while self
            .peek(0)
            .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric())
        {
            self.i += 1;
        }
        let text = String::from_utf8_lossy(&self.b[from..self.i]).to_string();
        self.push(TokKind::Ident, &text, line);
    }

    /// Numbers, loosely: digits/letters/underscores, plus a `.` only when a
    /// digit follows (so `0..n` lexes as `0` `..` `n`). Exponent signs are
    /// NOT consumed; `1e-9` lexes as `1e` `-` `9`, which no rule cares
    /// about.
    fn number(&mut self) {
        let line = self.line;
        let from = self.i;
        loop {
            match self.peek(0) {
                Some(c) if c == b'_' || c.is_ascii_alphanumeric() => self.i += 1,
                Some(b'.') if self.peek(1).is_some_and(|d| d.is_ascii_digit()) => self.i += 1,
                _ => break,
            }
        }
        let text = String::from_utf8_lossy(&self.b[from..self.i]).to_string();
        self.push(TokKind::Lit, &text, line);
    }

    fn operator(&mut self) {
        let line = self.line;
        let c = self.b[self.i];
        match c {
            b'(' | b'[' | b'{' => {
                self.push(
                    TokKind::Open,
                    std::str::from_utf8(&[c]).unwrap_or("?"),
                    line,
                );
                self.i += 1;
            }
            b')' | b']' | b'}' => {
                self.push(
                    TokKind::Close,
                    std::str::from_utf8(&[c]).unwrap_or("?"),
                    line,
                );
                self.i += 1;
            }
            _ => {
                const THREE: [&str; 4] = ["<<=", ">>=", "..=", "..."];
                const TWO: [&str; 18] = [
                    "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "+=", "-=", "*=",
                    "/=", "%=", "^=", "&=", "|=",
                ];
                let rest = &self.b[self.i..];
                let take = THREE
                    .iter()
                    .find(|op| rest.starts_with(op.as_bytes()))
                    .map(|op| op.len())
                    .or_else(|| {
                        TWO.iter()
                            .find(|op| rest.starts_with(op.as_bytes()))
                            .map(|op| op.len())
                    })
                    .unwrap_or(1);
                let text = String::from_utf8_lossy(&rest[..take.min(rest.len())]).to_string();
                self.push(TokKind::Op, &text, line);
                self.i += take;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn operators_use_maximal_munch() {
        assert_eq!(
            texts("a == b != c => d .. e"),
            ["a", "==", "b", "!=", "c", "=>", "d", "..", "e"]
        );
    }

    #[test]
    fn comments_are_not_tokens() {
        let lx = lex("let x = 1; // lint: allow(no-unwrap) — trusted\n/* block\ncomment */ y");
        assert_eq!(lx.comments.len(), 2);
        assert_eq!(lx.comments[0].line, 1);
        assert!(lx.comments[0].text.contains("allow(no-unwrap)"));
        assert_eq!(lx.comments[1].line, 2);
        assert!(lx.tokens.iter().all(|t| t.text != "block"));
        assert_eq!(lx.tokens.last().map(|t| t.text.as_str()), Some("y"));
        assert_eq!(lx.tokens.last().map(|t| t.line), Some(3));
    }

    #[test]
    fn string_contents_do_not_leak_tokens() {
        let lx = lex(r#"let s = "a == b // not a comment"; t"#);
        assert!(lx.comments.is_empty());
        assert!(!lx.tokens.iter().any(|t| t.text == "=="));
        assert_eq!(lx.tokens.last().map(|t| t.text.as_str()), Some("t"));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let lx = lex(r##"let s = r#"has "quotes" and == inside"#; next"##);
        assert!(!lx.tokens.iter().any(|t| t.text == "=="));
        assert_eq!(lx.tokens.last().map(|t| t.text.as_str()), Some("next"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let lx = lex("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        let lifetimes: Vec<_> = lx
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars = lx.tokens.iter().filter(|t| t.kind == TokKind::Lit).count();
        assert_eq!(chars, 2);
    }

    #[test]
    fn numeric_ranges_do_not_swallow_dots() {
        assert_eq!(texts("0..n"), ["0", "..", "n"]);
        assert_eq!(texts("1.5 + 2"), ["1.5", "+", "2"]);
    }

    #[test]
    fn lines_are_tracked() {
        let lx = lex("a\nb\n\nc");
        let lines: Vec<u32> = lx.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 4]);
    }

    #[test]
    fn multiline_strings_keep_line_numbers_honest() {
        // A literal newline inside a string, then a `\` line continuation:
        // the token after the strings must land on the right line, or every
        // line-based waiver below a long message string aims wrong.
        let lx = lex("let a = \"one\ntwo\";\nlet b = \"cont \\\n inued\";\nafter");
        let after = lx
            .tokens
            .iter()
            .find(|t| t.text == "after")
            .expect("token after strings");
        assert_eq!(after.line, 5);
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let lx = lex("/* outer /* inner */ still outer */ code");
        assert_eq!(lx.comments.len(), 1);
        assert!(lx.comments[0].text.contains("still outer"));
        assert_eq!(lx.tokens.len(), 1);
        assert_eq!(lx.tokens[0].text, "code");
        // And line counting survives newlines inside the nesting.
        let lx = lex("/* a\n/* b\n*/\n*/\nx");
        assert_eq!(lx.tokens[0].line, 5);
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let lx = lex(r#"let s = b"== not ops"; let c = b'x'; tail"#);
        assert!(!lx.tokens.iter().any(|t| t.text == "=="));
        assert_eq!(lx.tokens.last().map(|t| t.text.as_str()), Some("tail"));
        // Raw byte string with hashes and embedded quotes.
        let lx = lex(r###"let s = br#"has " and == inside"#; tail"###);
        assert!(!lx.tokens.iter().any(|t| t.text == "=="));
        assert_eq!(lx.tokens.last().map(|t| t.text.as_str()), Some("tail"));
    }

    #[test]
    fn raw_string_newlines_count_toward_lines() {
        let lx = lex("let s = r#\"a\nb\nc\"#;\nnext");
        let next = lx
            .tokens
            .iter()
            .find(|t| t.text == "next")
            .expect("token after raw string");
        assert_eq!(next.line, 4);
    }

    #[test]
    fn raw_identifiers_lex_as_identifiers() {
        let lx = lex("let r#type = 1; r#match");
        assert!(lx
            .tokens
            .iter()
            .any(|t| t.text == "type" && t.kind == TokKind::Ident));
        assert_eq!(lx.tokens.last().map(|t| t.text.as_str()), Some("match"));
    }
}

//! Workspace static analysis: lint rules the compiler and clippy cannot
//! express, because they encode *this* project's correctness invariants.
//!
//! Run as `cargo run -p xtask -- lint` (see [`walk`] and the `xtask` binary
//! for the driver). The engine is layered, each layer independently
//! unit-tested:
//!
//! - [`lexer`] — a small Rust tokenizer that is exact about comments,
//!   strings, chars, and lifetimes, so rules never fire inside non-code;
//! - [`rules`] — the lexical rule visitors plus the waiver machinery;
//! - [`ast`] / [`callgraph`] — the item parser and conservative
//!   intra-workspace call graph the semantic `audit` pass runs on;
//! - [`audit_rules`] — the audit driver: panic reachability, rayon
//!   determinism, solver dispatch, waiver hygiene, API drift;
//! - [`lockgraph`] — the concurrency pass on the same call graph: guard
//!   scopes, the workspace lock-acquisition-order graph, and the
//!   condvar/callback discipline rules;
//! - [`heatpath`] — the hot-path allocation pass: call-graph reachability
//!   from the solver/serve/kernel hot entry points, with loop-scope
//!   attribution for heap allocations and copies inside them;
//! - [`api_snapshot`] — the normalized pub-surface renderer behind
//!   `api-drift` and `--bless`;
//! - [`report`] — the machine-readable JSON report consumed by CI.
//!
//! Why these rules exist (the solver invariants they protect):
//!
//! 1. **`float-eq`** — cover values and marginal gains are `f64`
//!    accumulations; exact `==`/`!=` on them is how tie-breaking bugs and
//!    platform-dependent output sneak in. The only approved site is
//!    `pcover_core::float`, which packages the *deliberate* exact
//!    comparisons (the deterministic argmax tie-break) behind named
//!    functions.
//! 2. **`no-unwrap`/`no-expect`/`no-panic`/`no-index`** — library crates
//!    must propagate `SolveError` instead of aborting; a panicking solver
//!    can take down a batch pipeline mid-run. Waivers exist because some
//!    indexing is genuinely invariant-backed (dense `ItemId` indices), but
//!    each waiver must carry its reviewed reason.
//! 3. **`crate-header`** — every crate root must pin
//!    `#![forbid(unsafe_code)]` and `#![warn(missing_docs)]` *in the file*,
//!    so the guarantee survives even when a crate is built outside the
//!    workspace (where `[workspace.lints]` would not apply).
//! 4. **`ambient-entropy`** — solver crates must be reproducible from
//!    explicit seeds; `thread_rng`/`SystemTime::now` make "same input, same
//!    output" silently false.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api_snapshot;
pub mod ast;
pub mod audit_rules;
pub mod callgraph;
pub mod heatpath;
pub mod lexer;
pub mod lockgraph;
pub mod report;
pub mod rules;
pub mod walk;

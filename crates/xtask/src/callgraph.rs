//! Intra-workspace call graph and panic reachability.
//!
//! Built on the item index from [`crate::ast`]: one node per `fn` item in
//! crate `src/` trees, edges from call expressions in function bodies. Name
//! resolution is deliberately conservative (a call may resolve to several
//! same-named candidates; unresolvable names are treated as external), so
//! the reachability analysis over-approximates — which is the correct
//! direction for a "a public solver entry point can never panic" gate.
//! False positives are waivable (`panic-path`); false negatives would be
//! silent, so ambiguity always resolves toward *more* edges.
//!
//! Panic **sources** are the unwaived panic-family lint findings
//! (`no-unwrap`/`no-expect`/`no-panic`/`no-index`) mapped to their
//! enclosing function. A waived site is a reviewed decision and does not
//! poison its callers; `assert!` is likewise excluded — the workspace
//! treats asserts as documented contracts (`# Panics` sections), not
//! reachable aborts.

use std::collections::{HashMap, VecDeque};

use crate::ast::FileAst;
use crate::lexer::{Tok, TokKind};
use crate::rules::KEYWORDS;

/// Per-file input to the graph build.
pub struct FileInput<'a> {
    /// Workspace-relative path, forward slashes.
    pub rel: &'a str,
    /// The file's code tokens.
    pub tokens: &'a [Tok],
    /// The file's parsed item index.
    pub ast: &'a FileAst,
    /// Unwaived panic-family findings: `(line, rule)` pairs.
    pub panic_sites: Vec<(u32, &'static str)>,
}

/// A panic site attributed to a function.
#[derive(Clone, Debug)]
pub struct Site {
    /// Workspace-relative file of the construct.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The lint rule that identified it (`no-unwrap`, ...).
    pub rule: &'static str,
}

/// One function node.
#[derive(Clone, Debug)]
pub struct FnNode {
    /// Workspace-relative file.
    pub file: String,
    /// Crate key: the directory name under `crates/`, or `root` for the
    /// top-level `src/` tree.
    pub crate_key: String,
    /// Function name.
    pub name: String,
    /// Impl/trait self type for methods.
    pub qual: Option<String>,
    /// File-level module path (from the path under `src/`) plus inline mods.
    pub module: Vec<String>,
    /// Part of the crate's public surface (plain `pub`, pub mods, not test).
    pub is_pub_surface: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Unwaived panic sites inside this function's body.
    pub sites: Vec<Site>,
    /// Resolved callee node indices.
    pub calls: Vec<usize>,
}

impl FnNode {
    /// Display name: `Type::name` for methods, `module::name` otherwise.
    pub fn display(&self) -> String {
        match &self.qual {
            Some(q) => format!("{q}::{}", self.name),
            None if self.module.is_empty() => self.name.clone(),
            None => format!("{}::{}", self.module.join("::"), self.name),
        }
    }
}

/// A shortest call path from a public function to a panic site.
#[derive(Clone, Debug)]
pub struct PanicPath {
    /// File of the offending public function.
    pub file: String,
    /// Line of its `fn` keyword.
    pub line: u32,
    /// Display names along the path, entry first, panicking fn last.
    pub chain: Vec<String>,
    /// The panic site the path ends in.
    pub site: Site,
}

/// The built call graph with panic-distance annotations.
pub struct CallGraph {
    /// All function nodes, in deterministic (file, source) order.
    pub nodes: Vec<FnNode>,
    dist: Vec<Option<u32>>,
    next_hop: Vec<Option<usize>>,
}

/// Derives the crate key for a workspace-relative path, when the file is
/// part of a crate's library source tree.
pub fn crate_key(rel: &str) -> Option<String> {
    if let Some(rest) = rel.strip_prefix("crates/") {
        let mut parts = rest.split('/');
        let name = parts.next()?;
        if parts.next() == Some("src") {
            return Some(name.to_string());
        }
        return None;
    }
    if rel.starts_with("src/") {
        return Some("root".to_string());
    }
    None
}

/// The file-level module path of a crate source file: path segments under
/// `src/`, with `lib.rs`/`main.rs`/`mod.rs` contributing nothing.
pub fn file_modules(rel: &str) -> Vec<String> {
    let under_src = rel.split_once("src/").map(|(_, tail)| tail).unwrap_or(rel);
    let mut mods: Vec<String> = under_src.split('/').map(str::to_string).collect();
    if let Some(last) = mods.pop() {
        let stem = last.strip_suffix(".rs").unwrap_or(&last);
        if stem != "lib" && stem != "main" && stem != "mod" {
            mods.push(stem.to_string());
        }
    }
    mods
}

/// Builds the graph: nodes from every `fn` item in crate `src/` files,
/// edges from call/method-call expressions, panic sites attributed to their
/// innermost enclosing function.
pub fn build(files: &[FileInput<'_>]) -> CallGraph {
    let mut nodes: Vec<FnNode> = Vec::new();
    // (file index, fn index within file) -> node, for body scans.
    let mut spans: Vec<(usize, usize, usize)> = Vec::new(); // (file_idx, ast fn idx, node idx)

    for (fi, f) in files.iter().enumerate() {
        let Some(ck) = crate_key(f.rel) else { continue };
        let fmods = file_modules(f.rel);
        for (ai, func) in f.ast.fns.iter().enumerate() {
            if func.in_test {
                continue;
            }
            let mut module = fmods.clone();
            module.extend(func.module_path.iter().cloned());
            let node = FnNode {
                file: f.rel.to_string(),
                crate_key: ck.clone(),
                name: func.name.clone(),
                qual: func.qual.clone(),
                module,
                is_pub_surface: func.is_pub && func.mods_pub,
                line: func.line,
                sites: Vec::new(),
                calls: Vec::new(),
            };
            spans.push((fi, ai, nodes.len()));
            nodes.push(node);
        }
    }

    // Attribute panic sites to the innermost fn whose body lines contain
    // them (innermost = smallest line span).
    for &(fi, ai, ni) in &spans {
        let f = &files[fi];
        let func = &f.ast.fns[ai];
        let (lo, hi) = func.body_lines(f.tokens);
        for &(line, rule) in &f.panic_sites {
            if line < lo || line > hi {
                continue;
            }
            let innermost = spans
                .iter()
                .filter(|&&(ofi, oai, _)| {
                    ofi == fi && {
                        let (olo, ohi) = f.ast.fns[oai].body_lines(f.tokens);
                        line >= olo && line <= ohi
                    }
                })
                .min_by_key(|&&(_, oai, _)| {
                    let (olo, ohi) = f.ast.fns[oai].body_lines(f.tokens);
                    ohi - olo
                })
                .map(|&(_, _, oni)| oni);
            if innermost == Some(ni) {
                nodes[ni].sites.push(Site {
                    file: f.rel.to_string(),
                    line,
                    rule,
                });
            }
        }
    }

    // Name indices for resolution.
    let mut by_crate_name: HashMap<(String, String), Vec<usize>> = HashMap::new();
    let mut methods_by_name: HashMap<String, Vec<usize>> = HashMap::new();
    for (ni, n) in nodes.iter().enumerate() {
        by_crate_name
            .entry((n.crate_key.clone(), n.name.clone()))
            .or_default()
            .push(ni);
        if n.qual.is_some() {
            methods_by_name.entry(n.name.clone()).or_default().push(ni);
        }
    }

    // Edge extraction.
    for &(fi, ai, ni) in &spans {
        let f = &files[fi];
        let Some((open, close)) = f.ast.fns[ai].body else {
            continue;
        };
        let own_crate = nodes[ni].crate_key.clone();
        let mut targets: Vec<usize> = Vec::new();
        for c in calls_in(&f.tokens[open..=close.min(f.tokens.len().saturating_sub(1))]) {
            resolve(
                &c,
                &own_crate,
                &nodes,
                &by_crate_name,
                &methods_by_name,
                &mut targets,
            );
        }
        targets.sort_unstable();
        targets.dedup();
        targets.retain(|&t| t != ni); // self-recursion adds nothing
        nodes[ni].calls = targets;
    }

    // Reverse BFS from all panic-carrying fns: shortest distance toward a
    // panic, plus the next hop for path reconstruction.
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (u, n) in nodes.iter().enumerate() {
        for &v in &n.calls {
            rev[v].push(u);
        }
    }
    let mut dist: Vec<Option<u32>> = vec![None; nodes.len()];
    let mut next_hop: Vec<Option<usize>> = vec![None; nodes.len()];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for (i, n) in nodes.iter().enumerate() {
        if !n.sites.is_empty() {
            dist[i] = Some(0);
            queue.push_back(i);
        }
    }
    while let Some(cur) = queue.pop_front() {
        let d = dist[cur].unwrap_or(0);
        for &caller in &rev[cur] {
            if dist[caller].is_none() {
                dist[caller] = Some(d + 1);
                next_hop[caller] = Some(cur);
                queue.push_back(caller);
            }
        }
    }

    CallGraph {
        nodes,
        dist,
        next_hop,
    }
}

#[derive(Debug)]
struct Call {
    name: String,
    quals: Vec<String>,
    is_method: bool,
}

/// Scans a body token slice for call expressions: `name(..)`,
/// `path::name(..)`, `name::<T>(..)`, and `.method(..)`. Macro invocations
/// (`name!(..)`) are skipped — the panic-bearing macros are already direct
/// sites via the lint pass.
fn calls_in(tokens: &[Tok]) -> Vec<Call> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokKind::Ident || KEYWORDS.contains(&t.text.as_str()) {
            continue;
        }
        let next = tokens.get(i + 1).map(|n| n.text.as_str());
        let is_call = match next {
            Some("(") => true,
            Some("::") if tokens.get(i + 2).is_some_and(|n| n.text == "<") => {
                // Turbofish: `name::<T>(` — find the matching `>`.
                let mut angle = 1i64;
                let mut j = i + 3;
                while j < tokens.len() && angle > 0 {
                    match tokens[j].text.as_str() {
                        "<" => angle += 1,
                        ">" => angle -= 1,
                        _ => {}
                    }
                    j += 1;
                }
                tokens.get(j).is_some_and(|n| n.text == "(")
            }
            _ => false,
        };
        if !is_call {
            continue;
        }
        let is_method = i > 0 && tokens[i - 1].text == ".";
        let mut quals = Vec::new();
        if !is_method {
            let mut j = i;
            while j >= 2 && tokens[j - 1].text == "::" && tokens[j - 2].kind == TokKind::Ident {
                quals.push(tokens[j - 2].text.clone());
                j -= 2;
            }
            quals.reverse();
        }
        out.push(Call {
            name: t.text.clone(),
            quals,
            is_method,
        });
    }
    out
}

/// Maps a `pcover_x` path segment to its crate key.
fn crate_of_segment(seg: &str) -> Option<String> {
    seg.strip_prefix("pcover_").map(str::to_string)
}

fn resolve(
    call: &Call,
    own_crate: &str,
    nodes: &[FnNode],
    by_crate_name: &HashMap<(String, String), Vec<usize>>,
    methods_by_name: &HashMap<String, Vec<usize>>,
    targets: &mut Vec<usize>,
) {
    if call.is_method {
        // Methods resolve across the whole workspace: the receiver's type
        // is unknown, and only workspace methods matter for reachability.
        if let Some(cands) = methods_by_name.get(&call.name) {
            targets.extend(cands.iter().copied());
        }
        return;
    }
    // Free/path call: determine the target crate from an explicit
    // `pcover_x::` prefix; `crate::`/`self::`/`super::` and bare calls stay
    // in the caller's crate.
    let target_crate = call
        .quals
        .iter()
        .find_map(|q| crate_of_segment(q))
        .unwrap_or_else(|| own_crate.to_string());
    let Some(cands) = by_crate_name.get(&(target_crate, call.name.clone())) else {
        return; // external (std, vendored deps) — cannot panic-source here
    };
    // Prefer candidates matching the innermost qualifier (a module name or
    // an impl type, e.g. `lazy::solve` or `ItemId::from_index`); fall back
    // to all same-named candidates when nothing matches — ambiguity must
    // over-approximate, never drop edges.
    let hint =
        call.quals.iter().rev().find(|q| {
            !matches!(q.as_str(), "crate" | "self" | "super") && !q.starts_with("pcover_")
        });
    if let Some(hint) = hint {
        let filtered: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&i| {
                nodes[i].qual.as_deref() == Some(hint.as_str())
                    || nodes[i].module.iter().any(|m| m == hint)
            })
            .collect();
        if !filtered.is_empty() {
            targets.extend(filtered);
            return;
        }
    }
    targets.extend(cands.iter().copied());
}

impl CallGraph {
    /// Every public-surface function of `crate_key` that can transitively
    /// reach an unwaived panic site, with its shortest call path.
    pub fn panic_reachable_pubs(&self, crate_key: &str) -> Vec<PanicPath> {
        let mut out = Vec::new();
        for (i, n) in self.nodes.iter().enumerate() {
            if !n.is_pub_surface || n.crate_key != crate_key {
                continue;
            }
            let Some(_) = self.dist[i] else { continue };
            let mut chain = vec![n.display()];
            let mut cur = i;
            while let Some(nx) = self.next_hop[cur] {
                chain.push(self.nodes[nx].display());
                cur = nx;
            }
            let site = match self.nodes[cur].sites.first() {
                Some(s) => s.clone(),
                None => continue, // defensive: dist implies a site exists
            };
            out.push(PanicPath {
                file: n.file.clone(),
                line: n.line,
                chain,
                site,
            });
        }
        out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast;
    use crate::lexer::lex;

    type TestFile<'a> = (&'a str, &'a str, Vec<(u32, &'static str)>);

    fn graph_of(files: &[TestFile<'_>]) -> CallGraph {
        let lexed: Vec<_> = files.iter().map(|(_, src, _)| lex(src)).collect();
        let asts: Vec<_> = lexed.iter().map(|l| ast::parse(&l.tokens)).collect();
        let inputs: Vec<FileInput<'_>> = files
            .iter()
            .zip(lexed.iter())
            .zip(asts.iter())
            .map(|(((rel, _, sites), l), a)| FileInput {
                rel,
                tokens: &l.tokens,
                ast: a,
                panic_sites: sites.clone(),
            })
            .collect();
        build(&inputs)
    }

    #[test]
    fn three_deep_indirect_panic_reports_full_chain() {
        let src = "pub fn entry() { helper_a(); }\n\
                   fn helper_a() { helper_b(); }\n\
                   fn helper_b(v: Option<u32>) -> u32 { v.unwrap() }\n";
        let g = graph_of(&[("crates/core/src/lib.rs", src, vec![(3, "no-unwrap")])]);
        let paths = g.panic_reachable_pubs("core");
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].chain, ["entry", "helper_a", "helper_b"]);
        assert_eq!(paths[0].site.line, 3);
        assert_eq!(paths[0].site.rule, "no-unwrap");
    }

    #[test]
    fn waived_sites_do_not_poison_callers() {
        // Same shape, but no unwaived site reported by the lint pass.
        let src = "pub fn entry() { helper_a(); }\n\
                   fn helper_a(v: Option<u32>) -> u32 { v.unwrap() }\n";
        let g = graph_of(&[("crates/core/src/lib.rs", src, vec![])]);
        assert!(g.panic_reachable_pubs("core").is_empty());
    }

    #[test]
    fn private_fns_are_not_reported_even_when_reachable() {
        let src = "fn private_entry() { boom(); }\nfn boom() { panic!(\"x\") }\n";
        let g = graph_of(&[("crates/core/src/lib.rs", src, vec![(2, "no-panic")])]);
        assert!(g.panic_reachable_pubs("core").is_empty());
    }

    #[test]
    fn cross_crate_qualified_calls_resolve() {
        let core = "pub fn entry() { pcover_graph::validate::check(); }\n";
        let graph = "pub fn check(xs: &[u32]) -> u32 { xs[0] }\n";
        let g = graph_of(&[
            ("crates/core/src/lib.rs", core, vec![]),
            ("crates/graph/src/validate.rs", graph, vec![(1, "no-index")]),
        ]);
        let paths = g.panic_reachable_pubs("core");
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].chain, ["entry", "validate::check"]);
    }

    #[test]
    fn method_calls_resolve_to_workspace_methods() {
        let src = "pub struct S;\n\
                   impl S { fn danger(&self) { panic!(\"x\") } }\n\
                   pub fn entry(s: &S) { s.danger(); }\n";
        let g = graph_of(&[("crates/core/src/lib.rs", src, vec![(2, "no-panic")])]);
        let paths = g.panic_reachable_pubs("core");
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].chain, ["entry", "S::danger"]);
    }

    #[test]
    fn shortest_path_wins() {
        // entry can reach the panic via a 1-hop and a 2-hop route; the
        // report must use the 1-hop one.
        let src = "pub fn entry() { direct(); indirect(); }\n\
                   fn indirect() { direct(); }\n\
                   fn direct() { panic!(\"x\") }\n";
        let g = graph_of(&[("crates/core/src/lib.rs", src, vec![(3, "no-panic")])]);
        let paths = g.panic_reachable_pubs("core");
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].chain, ["entry", "direct"]);
    }

    #[test]
    fn test_fns_and_macro_invocations_ignored() {
        let src = "pub fn entry() { println!(\"fine\"); }\n\
                   #[cfg(test)]\nmod tests {\n  fn t() { boom(); }\n}\n\
                   fn boom() { panic!(\"x\") }\n";
        let g = graph_of(&[("crates/core/src/lib.rs", src, vec![(6, "no-panic")])]);
        assert!(g.panic_reachable_pubs("core").is_empty());
    }

    #[test]
    fn crate_key_and_file_modules() {
        assert_eq!(
            crate_key("crates/core/src/greedy.rs").as_deref(),
            Some("core")
        );
        assert_eq!(crate_key("src/lib.rs").as_deref(), Some("root"));
        assert_eq!(crate_key("crates/core/tests/x.rs"), None);
        assert_eq!(crate_key("examples/foo.rs"), None);
        assert_eq!(file_modules("crates/core/src/lib.rs"), Vec::<String>::new());
        assert_eq!(file_modules("crates/core/src/greedy.rs"), ["greedy"]);
        assert_eq!(
            file_modules("crates/core/src/extensions/markov.rs"),
            ["extensions", "markov"]
        );
        assert_eq!(file_modules("crates/graph/src/io/mod.rs"), ["io"]);
    }
}

//! End-to-end tests of `xtask audit`: each rule family fires on the
//! planted fixture tree and stays silent on the clean one, violations in
//! `vendor/`/`target/` are never reported, and the real workspace audits
//! clean (the acceptance gate).

use std::path::PathBuf;
use std::process::{Command, Output};

fn xtask(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(args)
        .output()
        .expect("spawn xtask")
}

fn fixture(name: &str) -> String {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
        .display()
        .to_string()
}

fn report_of(out: &Output) -> serde_json::Value {
    serde_json::from_str(&String::from_utf8_lossy(&out.stdout)).expect("valid JSON report")
}

fn rules_of(report: &serde_json::Value) -> Vec<String> {
    report
        .get("violations")
        .and_then(serde_json::Value::as_array)
        .expect("violations array")
        .iter()
        .filter_map(|v| v.get("rule").and_then(serde_json::Value::as_str))
        .map(str::to_string)
        .collect()
}

#[test]
fn planted_tree_fires_every_audit_rule_family() {
    let out = xtask(&["audit", "--json", "--root", &fixture("audit_planted")]);
    assert_eq!(out.status.code(), Some(1), "planted tree must fail audit");
    let report = report_of(&out);
    assert_eq!(
        report.get("schema").and_then(|v| v.as_str()),
        Some("xtask-lint/5")
    );
    assert_eq!(report.get("pass").and_then(|v| v.as_str()), Some("audit"));
    // Schema 3+: the report enumerates the producing binary's rule set
    // (schema 4 added the four heatpath rules, 5 adds unsafe-scope).
    let known: Vec<&str> = report
        .get("rules")
        .and_then(serde_json::Value::as_array)
        .expect("rules array")
        .iter()
        .filter_map(serde_json::Value::as_str)
        .collect();
    assert!(known.contains(&"float-eq") && known.contains(&"lock-order-cycle"));
    assert!(known.contains(&"alloc-in-hot-loop") && known.contains(&"growable-unreserved"));
    let rules = rules_of(&report);
    for expected in [
        "panic-path",
        "par-argmax",
        "par-float-accum",
        "par-shared-state",
        "solver-dispatch",
        "unsafe-scope",
        "lock-order-cycle",
        "lock-across-blocking",
        "condvar-misuse",
        "guard-across-callback",
        "alloc-in-hot-loop",
        "alloc-per-request",
        "copy-in-kernel",
        "growable-unreserved",
        "stale-waiver",
        "shadowed-waiver",
        "api-drift",
    ] {
        assert!(
            rules.contains(&expected.to_string()),
            "missing {expected} in {rules:?}"
        );
    }
}

#[test]
fn panic_path_reports_the_three_deep_chain() {
    let out = xtask(&["audit", "--json", "--root", &fixture("audit_planted")]);
    let report = report_of(&out);
    let panic_msgs: Vec<&str> = report
        .get("violations")
        .and_then(serde_json::Value::as_array)
        .expect("violations array")
        .iter()
        .filter(|v| v.get("rule").and_then(|r| r.as_str()) == Some("panic-path"))
        .filter_map(|v| v.get("message").and_then(serde_json::Value::as_str))
        .collect();
    assert_eq!(panic_msgs.len(), 1, "exactly the one planted chain");
    // The full call path, entry first, and the concrete site with its rule.
    assert!(
        panic_msgs[0].contains("entry -> mid -> deep"),
        "chain missing from: {}",
        panic_msgs[0]
    );
    assert!(panic_msgs[0].contains("crates/core/src/lib.rs:18"));
    assert!(panic_msgs[0].contains("no-unwrap"));
}

#[test]
fn lockgraph_rules_fire_on_the_planted_hub() {
    let out = xtask(&["audit", "--json", "--root", &fixture("audit_planted")]);
    let report = report_of(&out);
    let svc: Vec<(&str, u64, &str)> = report
        .get("violations")
        .and_then(serde_json::Value::as_array)
        .expect("violations array")
        .iter()
        .filter(|v| v.get("file").and_then(|f| f.as_str()) == Some("crates/svc/src/lib.rs"))
        .map(|v| {
            (
                v.get("rule").and_then(|r| r.as_str()).expect("rule"),
                v.get("line")
                    .and_then(serde_json::Value::as_u64)
                    .expect("line"),
                v.get("message").and_then(|m| m.as_str()).expect("message"),
            )
        })
        .collect();

    // The AB-BA cycle is reported once, anchored at the forward edge's
    // acquisition, with the helper-mediated reverse direction's call
    // chain spelled out — the panic-path diagnostic style.
    let cycles: Vec<_> = svc.iter().filter(|v| v.0 == "lock-order-cycle").collect();
    assert_eq!(cycles.len(), 1, "one cycle, reported once: {svc:?}");
    let (_, line, msg) = cycles[0];
    assert_eq!(*line, 25, "anchored at forward()'s `a` acquisition");
    assert!(
        msg.contains("svc::Hub::a") && msg.contains("svc::Hub::b"),
        "both classes named: {msg}"
    );
    assert!(
        msg.contains("reverse order") && msg.contains("grab_a"),
        "reverse direction with its call chain: {msg}"
    );

    // Guard held across socket I/O, anchored at the acquisition so the
    // waiver comment can sit on the lock line.
    assert!(
        svc.iter()
            .any(|v| v.0 == "lock-across-blocking" && v.1 == 45 && v.2.contains("write_all")),
        "held_io finding missing: {svc:?}"
    );

    // Wait with no predicate loop; notify with no lock.
    assert!(
        svc.iter()
            .any(|v| v.0 == "condvar-misuse" && v.2.contains("not inside a `loop`")),
        "wait_no_loop finding missing: {svc:?}"
    );
    assert!(
        svc.iter()
            .any(|v| v.0 == "condvar-misuse" && v.2.contains("notify_one")),
        "notify_without_lock finding missing: {svc:?}"
    );

    // User callback under the guard.
    assert!(
        svc.iter()
            .any(|v| v.0 == "guard-across-callback" && v.2.contains("on_select")),
        "callback_under_lock finding missing: {svc:?}"
    );
}

#[test]
fn heatpath_rules_fire_on_the_planted_hot_paths() {
    let out = xtask(&["audit", "--json", "--root", &fixture("audit_planted")]);
    let report = report_of(&out);
    let findings: Vec<(&str, &str, u64, &str)> = report
        .get("violations")
        .and_then(serde_json::Value::as_array)
        .expect("violations array")
        .iter()
        .filter(|v| {
            matches!(
                v.get("rule").and_then(|r| r.as_str()),
                Some(
                    "alloc-in-hot-loop"
                        | "alloc-per-request"
                        | "copy-in-kernel"
                        | "growable-unreserved"
                )
            )
        })
        .map(|v| {
            (
                v.get("rule").and_then(|r| r.as_str()).expect("rule"),
                v.get("file").and_then(|f| f.as_str()).expect("file"),
                v.get("line")
                    .and_then(serde_json::Value::as_u64)
                    .expect("line"),
                v.get("message").and_then(|m| m.as_str()).expect("message"),
            )
        })
        .collect();
    assert_eq!(findings.len(), 5, "exactly the planted sites: {findings:?}");

    // Direct in-loop allocation, anchored at the `collect`, with the loop
    // line it must be hoisted out of.
    let direct = findings
        .iter()
        .find(|f| f.0 == "alloc-in-hot-loop" && f.2 == 11)
        .expect("direct in-loop collect");
    assert_eq!(direct.1, "crates/core/src/greedy.rs");
    assert!(
        direct.3.contains("`collect`") && direct.3.contains("hot loop at line 10"),
        "loop anchor missing: {}",
        direct.3
    );

    // Interprocedural: the helper is only hot because the solver's round
    // loop calls it, and the chain says so — entry first, callee last.
    let chained = findings
        .iter()
        .find(|f| f.0 == "alloc-in-hot-loop" && f.2 == 19)
        .expect("loop-hot helper to_vec");
    assert!(
        chained.3.contains("crates/core/src/greedy.rs:10")
            && chained.3.contains("`greedy::solve` -> `greedy::score`"),
        "loop provenance missing: {}",
        chained.3
    );

    // Grow-from-empty buffer fed by the round loop, anchored at the push
    // so a waiver comment can sit on the push line.
    let growable = findings
        .iter()
        .find(|f| f.0 == "growable-unreserved")
        .expect("growable finding");
    assert_eq!((growable.1, growable.2), ("crates/core/src/greedy.rs", 13));
    assert!(
        growable.3.contains("`trace.push(..)`") && growable.3.contains("(line 8)"),
        "init-site provenance missing: {}",
        growable.3
    );

    // Kernel copy: the kernel rule owns the site (no duplicate
    // alloc-in-hot-loop diagnostic for the same line).
    let kernel = findings
        .iter()
        .find(|f| f.0 == "copy-in-kernel")
        .expect("kernel finding");
    assert_eq!((kernel.1, kernel.2), ("crates/core/src/cover.rs", 6));
    assert!(
        kernel.3.contains("`to_vec`") && kernel.3.contains("`cover::accumulate`"),
        "kernel message wrong: {}",
        kernel.3
    );

    // Request path: the worker-loop chain reaches the renderer.
    let request = findings
        .iter()
        .find(|f| f.0 == "alloc-per-request")
        .expect("request finding");
    assert_eq!((request.1, request.2), ("crates/serve/src/server.rs", 18));
    assert!(
        request
            .3
            .contains("`server::worker_loop` -> `server::handle` -> `server::render`"),
        "request chain missing: {}",
        request.3
    );
}

#[test]
fn clean_tree_audits_clean() {
    let out = xtask(&["audit", "--json", "--root", &fixture("audit_clean")]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "clean tree must audit clean:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let report = report_of(&out);
    assert_eq!(
        report.get("clean").map(std::string::ToString::to_string),
        Some("true".to_string())
    );
}

#[test]
fn vendored_and_target_violations_are_not_reported() {
    // The vendored tree plants float-eq and par-argmax violations inside
    // `vendor/` and `target/`; both passes must skip them by policy.
    for pass in ["lint", "audit"] {
        let out = xtask(&[pass, "--json", "--root", &fixture("vendored")]);
        assert_eq!(
            out.status.code(),
            Some(0),
            "{pass} must skip vendor/ and target/:\n{}",
            String::from_utf8_lossy(&out.stdout)
        );
        let report = report_of(&out);
        assert_eq!(
            report.get("clean").map(std::string::ToString::to_string),
            Some("true".to_string())
        );
        // Only the one real file is scanned — the planted ones never even
        // reach the analyzers.
        assert_eq!(
            report
                .get("files_scanned")
                .and_then(serde_json::Value::as_u64),
            Some(1),
            "{pass} scanned skipped directories"
        );
    }
}

#[test]
fn bless_is_rejected_for_lint() {
    let out = xtask(&["lint", "--bless"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn audit_of_this_workspace_is_clean() {
    // The acceptance gate: the real workspace passes its own audit, with
    // the committed API snapshots up to date.
    let out = xtask(&["audit"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "workspace audit failed:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

//! End-to-end tests of the `xtask` binary: exit codes, usage text, and the
//! JSON report, driven over planted-violation and clean fixture trees via
//! `std::process::Command`.

use std::path::PathBuf;
use std::process::{Command, Output};

fn xtask(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(args)
        .output()
        .expect("spawn xtask")
}

fn fixture(name: &str) -> String {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
        .display()
        .to_string()
}

#[test]
fn help_prints_usage_and_exits_zero() {
    for args in [&["--help"][..], &["help"][..], &["lint", "--help"][..]] {
        let out = xtask(args);
        assert!(out.status.success(), "{args:?} should exit 0");
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains("USAGE:"), "{args:?} missing usage");
        assert!(text.contains("lint"), "{args:?} missing subcommand docs");
    }
}

#[test]
fn unknown_subcommand_and_missing_args_exit_2() {
    let out = xtask(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown subcommand"));

    let out = xtask(&[]);
    assert_eq!(out.status.code(), Some(2));

    let out = xtask(&["lint", "--root"]);
    assert_eq!(out.status.code(), Some(2));

    let out = xtask(&["lint", "--no-such-flag"]);
    assert_eq!(out.status.code(), Some(2));

    let out = xtask(&["lint", "--root", "/no/such/dir/exists"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn clean_fixture_tree_exits_zero_and_counts_waivers() {
    let out = xtask(&["lint", "--json", "--root", &fixture("clean")]);
    assert_eq!(out.status.code(), Some(0), "clean tree must lint clean");
    let report: serde_json::Value =
        serde_json::from_str(&String::from_utf8_lossy(&out.stdout)).expect("valid JSON");
    assert_eq!(
        report.get("schema").and_then(|v| v.as_str()),
        Some("xtask-lint/5")
    );
    assert_eq!(report.get("pass").and_then(|v| v.as_str()), Some("lint"));
    assert_eq!(
        report.get("clean").map(std::string::ToString::to_string),
        Some("true".to_string())
    );
    assert_eq!(
        report
            .get("waivers_used")
            .and_then(serde_json::Value::as_u64),
        Some(1)
    );
    assert_eq!(
        report
            .get("files_scanned")
            .and_then(serde_json::Value::as_u64),
        Some(1)
    );
}

#[test]
fn planted_fixture_tree_exits_nonzero_with_every_rule() {
    let out = xtask(&["lint", "--json", "--root", &fixture("planted")]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "planted tree must fail the lint"
    );
    let report: serde_json::Value =
        serde_json::from_str(&String::from_utf8_lossy(&out.stdout)).expect("valid JSON");
    let violations = report
        .get("violations")
        .and_then(serde_json::Value::as_array)
        .expect("violations array");
    let rules: Vec<&str> = violations
        .iter()
        .filter_map(|v| v.get("rule").and_then(serde_json::Value::as_str))
        .collect();
    for expected in [
        "float-eq",
        "no-unwrap",
        "no-expect",
        "no-panic",
        "no-index",
        "crate-header",
        "ambient-entropy",
        "waiver-form",
    ] {
        assert!(
            rules.contains(&expected),
            "missing rule {expected} in {rules:?}"
        );
    }
    // Both float-eq plants (== and !=), both entropy plants, both headers.
    assert_eq!(rules.iter().filter(|r| **r == "float-eq").count(), 2);
    assert_eq!(rules.iter().filter(|r| **r == "ambient-entropy").count(), 2);
    assert_eq!(rules.iter().filter(|r| **r == "crate-header").count(), 2);
    // The #[cfg(test)] unwrap must NOT be flagged: exactly 2 unwraps planted
    // outside tests.
    assert_eq!(rules.iter().filter(|r| **r == "no-unwrap").count(), 2);
    // Every violation carries file + line + message.
    for v in violations {
        assert!(v.get("file").and_then(serde_json::Value::as_str).is_some());
        assert!(v
            .get("line")
            .and_then(serde_json::Value::as_u64)
            .is_some_and(|l| l > 0));
        assert!(v
            .get("message")
            .and_then(serde_json::Value::as_str)
            .is_some_and(|m| !m.is_empty()));
    }
}

#[test]
fn report_flag_writes_json_file() {
    let path = std::env::temp_dir().join(format!("xtask-report-{}.json", std::process::id()));
    let out = xtask(&[
        "lint",
        "--root",
        &fixture("planted"),
        "--report",
        &path.display().to_string(),
    ]);
    assert_eq!(out.status.code(), Some(1));
    // Human output on stdout, JSON in the file.
    assert!(String::from_utf8_lossy(&out.stdout).contains("[no-unwrap]"));
    let written = std::fs::read_to_string(&path).expect("report file written");
    let report: serde_json::Value = serde_json::from_str(&written).expect("valid JSON report");
    assert_eq!(
        report.get("clean").map(std::string::ToString::to_string),
        Some("false".to_string())
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn lint_of_this_workspace_is_clean() {
    // The acceptance gate: the real workspace passes its own lint. Uses the
    // default root (the workspace root, resolved from the manifest dir).
    let out = xtask(&["lint"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "workspace lint failed:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

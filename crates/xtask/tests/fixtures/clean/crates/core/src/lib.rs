//! Clean fixture: a fake crate root that satisfies every lint rule,
//! including one properly waived violation (to test waiver accounting).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Tolerance-based comparison: the approved pattern for cover floats.
pub fn close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-9
}

/// Propagates instead of unwrapping.
pub fn take(v: Option<u32>) -> Result<u32, String> {
    v.ok_or_else(|| "missing".to_string())
}

/// A justified waiver: suppressed and counted in `waivers_used`.
pub fn head(xs: &[u32]) -> u32 {
    xs[0] // lint: allow(no-index) — callers are required to pass non-empty slices
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        Some(1).unwrap();
    }
}

//! Planted `unsafe` outside the audited mmap module: the unsafe-scope
//! rule must anchor it here, since only `crates/store/src/mmap.rs` may
//! hold unsafe code.

/// Reads the first byte through a raw pointer (unsafe-scope).
pub fn first_byte(bytes: &[u8]) -> u8 {
    unsafe { *bytes.as_ptr() }
}

//! Planted solver-dispatch violation: a CLI-layer file calling a solver
//! free function directly instead of resolving a SolverSpec from the
//! registry.

pub fn run(g: &Graph, k: usize) -> f64 {
    greedy::solve::<Independent>(g, k).cover
}

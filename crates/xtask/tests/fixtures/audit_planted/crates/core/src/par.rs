//! Planted audit fixture, parallel module: every determinism rule fires
//! inside rayon regions, and a line waiver is shadowed by the file waiver.

// lint: allow-file(no-index) — fixture pretends ids are dense
use rayon::prelude::*;

/// Raw argmax comparison inside a rayon closure (par-argmax).
pub fn pick(gains: &[f64], best_gain: f64) -> usize {
    gains
        .par_iter()
        .map(|gain| usize::from(*gain > best_gain))
        .sum()
}

/// Float accumulation into a captured local (par-float-accum) and a lock
/// used for aggregation (par-shared-state).
pub fn total(gains: &[f64], shared: &std::sync::Mutex<f64>) -> f64 {
    let mut cover_total = 0.0f64;
    gains.par_iter().for_each(|g| cover_total += *g);
    gains
        .par_iter()
        .for_each(|g| *shared.lock().unwrap_or_else(|e| e.into_inner()) += *g);
    cover_total
}

/// Indexing under a line waiver that the `allow-file` above already
/// covers (shadowed-waiver).
pub fn head(xs: &[f64]) -> f64 {
    // lint: allow(no-index) — shadowed: the allow-file covers this
    xs[0]
}

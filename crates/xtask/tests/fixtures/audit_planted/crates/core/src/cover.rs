//! Planted kernel copy: every function in this file is a declared gain/
//! cover kernel, and kernels must operate on borrowed slices.

/// Cover kernel helper that copies its input (copy-in-kernel).
pub fn accumulate(weights: &[f64]) -> f64 {
    let owned = weights.to_vec();
    owned.iter().sum()
}

//! Planted audit fixture, crate root: a 3-deep indirect panic chain from a
//! public entry point, plus a stale and a shadowed waiver.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Public entry point; panics only three calls deep (panic-path must
/// report the whole `entry -> mid -> deep` chain).
pub fn entry(v: Option<u32>) -> u32 {
    mid(v)
}

fn mid(v: Option<u32>) -> u32 {
    deep(v)
}

fn deep(v: Option<u32>) -> u32 {
    v.unwrap()
}

// lint: allow(no-expect) — stale: nothing on the next line expects anymore
/// Once called `.expect(..)`; the waiver above outlived the refactor.
pub fn settled(v: Option<u32>) -> u32 {
    v.unwrap_or(0)
}

//! Planted hot-path allocations: a solver round loop that collects per
//! iteration, a helper allocating on every iteration of that loop, and
//! a grow-from-empty buffer fed by the loop.

/// Solver dispatch surface: `core` crate + `greedy` module + `solve`
/// name makes this a declared hot entry.
pub fn solve(xs: &[f64], k: usize) -> f64 {
    let mut trace = Vec::new();
    let mut total = 0.0f64;
    for _round in 0..k {
        let doubled: Vec<f64> = xs.iter().map(|g| g * 2.0).collect();
        total += score(&doubled);
        trace.push(total);
    }
    total + trace.len() as f64
}

fn score(gains: &[f64]) -> f64 {
    let held = gains.to_vec();
    held.iter().sum()
}

//! Planted per-request allocation: the worker loop reaches a renderer
//! that builds a fresh response head for every request.

/// Per-request dispatch loop (the request-path entry point).
pub fn worker_loop(jobs: &[u64]) -> usize {
    let mut served = 0;
    for &job in jobs {
        served += handle(job).len();
    }
    served
}

fn handle(job: u64) -> String {
    render(job)
}

fn render(job: u64) -> String {
    format!("job {job}\r\n")
}

//! Planted concurrency violations for the lockgraph audit rules: an
//! AB-BA lock-order cycle (one side through a helper call), a guard held
//! across socket I/O, a condvar wait with no predicate loop, an
//! unsynchronized notify, and a guard held across an observer callback.

use std::io::Write;
use std::sync::{Condvar, Mutex};

/// Callback surface, so `guard-across-callback` has a hook to see.
pub trait Observer {
    /// Invoked per selection.
    fn on_select(&self, idx: usize);
}

/// Two mutexes and a condvar, misused in every way the audit flags.
pub struct Hub {
    a: Mutex<u32>,
    b: Mutex<u32>,
    ready: Condvar,
}

impl Hub {
    /// Takes `a` then `b`: one direction of the planted cycle.
    pub fn forward(&self) -> u32 {
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
        *ga + *gb
    }

    /// Takes `b` then reaches `a` through a helper: the reverse
    /// direction, visible only interprocedurally.
    pub fn backward(&self) -> u32 {
        let gb = self.b.lock().unwrap();
        let x = self.grab_a();
        *gb + x
    }

    fn grab_a(&self) -> u32 {
        let ga = self.a.lock().unwrap();
        *ga
    }

    /// Holds the `a` guard across blocking socket I/O.
    pub fn held_io(&self, s: &mut std::net::TcpStream) {
        let ga = self.a.lock().unwrap();
        let _ = s.write_all(b"x");
        drop(ga);
    }

    /// Waits with no enclosing predicate loop: spurious wakeups break it.
    pub fn wait_no_loop(&self) -> u32 {
        let ga = self.a.lock().unwrap();
        let ga = self.ready.wait(ga).unwrap();
        *ga
    }

    /// Notifies without ever acquiring the associated lock.
    pub fn notify_without_lock(&self) {
        self.ready.notify_one();
    }

    /// Runs user callback code under the `a` guard.
    pub fn callback_under_lock(&self, obs: &dyn Observer) {
        let ga = self.a.lock().unwrap();
        obs.on_select(*ga as usize);
        drop(ga);
    }
}

// Build output: must be skipped by the walker.
pub fn generated(cover: f64) -> bool {
    cover == 0.0
}

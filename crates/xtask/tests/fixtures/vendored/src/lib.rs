//! Walker-policy fixture root: clean by itself; the violations live in
//! `vendor/` and `target/`, which the walker must skip by policy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The only real code in this tree.
pub fn fine() -> u32 {
    1
}

//! Vendored third-party code: full of things the lint and audit would
//! flag — and must not, because `vendor/` is skipped by explicit policy.

use rayon::prelude::*;

pub fn exact_cover_compare(cover_a: f64, cover_b: f64) -> bool {
    cover_a == cover_b
}

pub fn par_argmax(gains: &[f64], best_gain: f64) -> usize {
    gains
        .par_iter()
        .map(|gain| usize::from(*gain > best_gain))
        .sum()
}

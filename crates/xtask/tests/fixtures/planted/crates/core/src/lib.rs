//! Planted-violation fixture: a fake crate root that trips every lint rule.
//! This tree is never compiled; it exists so the integration tests can
//! assert that `xtask lint` finds all of these and exits non-zero.
// Missing #![forbid(unsafe_code)] and #![warn(missing_docs)] -> crate-header x2.

pub fn tie_break(gain: f64, best_gain: f64) -> bool {
    // float-eq: exact comparison on a gain value.
    gain == best_gain
}

pub fn cover_changed(cover: f64, old_cover: f64) -> bool {
    // float-eq: != flavor.
    cover != old_cover
}

pub fn take(v: Option<u32>) -> u32 {
    // no-unwrap.
    v.unwrap()
}

pub fn take_loudly(v: Option<u32>) -> u32 {
    // no-expect.
    v.expect("present")
}

pub fn boom() {
    // no-panic.
    panic!("library code must not panic");
}

pub fn first(xs: &[u32]) -> u32 {
    // no-index.
    xs[0]
}

pub fn seed() -> u64 {
    // ambient-entropy (x2: thread_rng and SystemTime::now).
    let _rng = thread_rng();
    std::time::SystemTime::now();
    0
}

// lint: allow(no-unwrap)
pub fn waived_badly(v: Option<u32>) -> u32 {
    // The waiver above has no reason -> waiver-form (and the unwrap on the
    // next line is NOT suppressed by a malformed waiver).
    v.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        // Not flagged: inside #[cfg(test)].
        Some(1).unwrap();
    }
}

//! Clean audit fixture: panic-free public surface, a justified live
//! waiver, and rayon usage that routes through helper calls instead of raw
//! comparisons or shared state.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rayon::prelude::*;

/// Errors propagate; nothing panics.
pub fn take(v: Option<u32>) -> Result<u32, String> {
    v.ok_or_else(|| "missing".to_string())
}

/// A justified, live waiver: the construct is real and suppressed.
pub fn head(xs: &[u32]) -> u32 {
    xs[0] // lint: allow(no-index) — callers are required to pass non-empty slices
}

/// Integer-only parallel work: no float accumulation, no shared state, and
/// the per-item map carries no comparisons.
pub fn doubled(xs: &[u64]) -> Vec<u64> {
    xs.par_iter().map(|x| x * 2).collect()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(super::take(Some(1)).unwrap(), 1);
    }
}

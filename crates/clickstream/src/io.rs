//! Clickstream serialization: JSONL interchange and the YooChoose
//! RecSys'15 two-file format.
//!
//! The YooChoose dataset (reference \[3\] of the paper) ships as
//!
//! * `yoochoose-clicks.dat` — `session_id,timestamp,item_id,category`
//! * `yoochoose-buys.dat` — `session_id,timestamp,item_id,price,quantity`
//!
//! with ISO-8601 timestamps and no header rows. [`read_yoochoose`] joins
//! the two files by session and runs the paper's single-purchase
//! normalization; [`write_yoochoose`] emits the same format (used by the
//! synthetic data generator, so every downstream tool exercises the real
//! parsing path).

// lint: allow-file(no-index) — session and item positions are produced by the ingest
// pipeline against vectors it sized itself, in bounds by construction.
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::filter::{normalize_sessions, FilterStats, RawSession};
use crate::{Clickstream, Session};

/// Errors raised by clickstream IO.
#[derive(Debug)]
pub enum IoError {
    /// Underlying file error.
    Io(std::io::Error),
    /// Malformed content.
    Parse {
        /// 1-based line number, if known.
        line: Option<usize>,
        /// Description.
        message: String,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse {
                line: Some(n),
                message,
            } => {
                write!(f, "parse error at line {n}: {message}")
            }
            IoError::Parse {
                line: None,
                message,
            } => write!(f, "parse error: {message}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Writes one session per line as JSON.
pub fn write_jsonl(cs: &Clickstream, path: impl AsRef<Path>) -> Result<(), IoError> {
    let mut w = BufWriter::new(File::create(path)?);
    for s in &cs.sessions {
        serde_json::to_writer(&mut w, s).map_err(|e| IoError::Parse {
            line: None,
            message: e.to_string(),
        })?;
        w.write_all(b"\n")?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a JSONL clickstream written by [`write_jsonl`].
pub fn read_jsonl(path: impl AsRef<Path>) -> Result<Clickstream, IoError> {
    let reader = BufReader::new(File::open(path)?);
    let mut sessions = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let s: Session = serde_json::from_str(&line).map_err(|e| IoError::Parse {
            line: Some(lineno + 1),
            message: e.to_string(),
        })?;
        sessions.push(s);
    }
    Ok(Clickstream::new(sessions))
}

/// Reads the YooChoose two-file format, joining clicks and buys by session
/// and normalizing to single-purchase sessions.
///
/// Returns the clickstream together with the normalization statistics
/// (sessions dropped/split).
pub fn read_yoochoose(
    clicks_path: impl AsRef<Path>,
    buys_path: impl AsRef<Path>,
) -> Result<(Clickstream, FilterStats), IoError> {
    // Session id -> raw session under construction. Insertion order is
    // preserved via a parallel Vec so output is deterministic.
    let mut index: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    let mut raw: Vec<RawSession> = Vec::new();

    let slot = |raw: &mut Vec<RawSession>,
                index: &mut std::collections::HashMap<u64, usize>,
                id: u64|
     -> usize {
        *index.entry(id).or_insert_with(|| {
            raw.push(RawSession {
                id,
                ..RawSession::default()
            });
            raw.len() - 1
        })
    };

    let clicks = BufReader::new(File::open(clicks_path)?);
    for (lineno, line) in clicks.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.splitn(4, ',');
        let session: u64 = parse(parts.next(), "session_id", lineno)?;
        let _timestamp = parts.next().ok_or_else(|| missing("timestamp", lineno))?;
        let item: u64 = parse(parts.next(), "item_id", lineno)?;
        // Fourth field (category) is ignored.
        let i = slot(&mut raw, &mut index, session);
        raw[i].clicks.push(item);
    }

    let buys = BufReader::new(File::open(buys_path)?);
    for (lineno, line) in buys.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.splitn(5, ',');
        let session: u64 = parse(parts.next(), "session_id", lineno)?;
        let _timestamp = parts.next().ok_or_else(|| missing("timestamp", lineno))?;
        let item: u64 = parse(parts.next(), "item_id", lineno)?;
        // price, quantity ignored (the paper's model is unit-commission).
        let i = slot(&mut raw, &mut index, session);
        raw[i].purchases.push(item);
    }

    let (mut cs, stats) = normalize_sessions(raw);
    // A session that only appears in the buys file is first seen during the
    // second pass; canonicalize output order by session id (stable, so the
    // per-purchase splits of one session keep their relative order).
    cs.sessions.sort_by_key(|s| s.id);
    Ok((cs, stats))
}

/// Writes a clickstream in the YooChoose two-file format.
///
/// Timestamps are synthesized as a fixed epoch plus the session index (the
/// model is timestamp-free); categories are written as `0`, price as `999`
/// and quantity as `1`.
pub fn write_yoochoose(
    cs: &Clickstream,
    clicks_path: impl AsRef<Path>,
    buys_path: impl AsRef<Path>,
) -> Result<(), IoError> {
    let mut clicks = BufWriter::new(File::create(clicks_path)?);
    let mut buys = BufWriter::new(File::create(buys_path)?);
    for (i, s) in cs.sessions.iter().enumerate() {
        let ts = format!("2014-04-01T00:00:{:02}.000Z", i % 60);
        for &c in &s.clicks {
            writeln!(clicks, "{},{},{},0", s.id, ts, c)?;
        }
        writeln!(buys, "{},{},{},999,1", s.id, ts, s.purchase)?;
    }
    clicks.flush()?;
    buys.flush()?;
    Ok(())
}

fn parse<T: std::str::FromStr>(
    field: Option<&str>,
    name: &str,
    lineno: usize,
) -> Result<T, IoError> {
    let raw = field.ok_or_else(|| missing(name, lineno))?;
    raw.trim().parse().map_err(|_| IoError::Parse {
        line: Some(lineno + 1),
        message: format!("cannot parse {name} from {raw:?}"),
    })
}

fn missing(name: &str, lineno: usize) -> IoError {
    IoError::Parse {
        line: Some(lineno + 1),
        message: format!("missing field {name}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("pcover-cs-io").join(name);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample() -> Clickstream {
        Clickstream::new(vec![
            Session::new(1, vec![10, 20, 10], 20),
            Session::new(2, vec![], 30),
            Session::new(3, vec![40], 30),
        ])
    }

    #[test]
    fn jsonl_roundtrip() {
        let dir = tmpdir("jsonl");
        let path = dir.join("cs.jsonl");
        let cs = sample();
        write_jsonl(&cs, &path).unwrap();
        let back = read_jsonl(&path).unwrap();
        assert_eq!(back, cs);
    }

    #[test]
    fn jsonl_rejects_garbage() {
        let dir = tmpdir("garbage");
        let path = dir.join("bad.jsonl");
        std::fs::write(&path, "{\"id\": 1}\nnot json\n").unwrap();
        let err = read_jsonl(&path).unwrap_err();
        assert!(matches!(err, IoError::Parse { .. }));
    }

    #[test]
    fn yoochoose_roundtrip_preserves_single_purchase_sessions() {
        let dir = tmpdir("yc");
        let clicks = dir.join("yoochoose-clicks.dat");
        let buys = dir.join("yoochoose-buys.dat");
        let cs = sample();
        write_yoochoose(&cs, &clicks, &buys).unwrap();
        let (back, stats) = read_yoochoose(&clicks, &buys).unwrap();
        assert_eq!(back, cs);
        assert_eq!(stats.dropped_no_purchase, 0);
        assert_eq!(stats.split_multi_purchase, 0);
    }

    #[test]
    fn yoochoose_real_format_lines_parse() {
        // Lines in the shape of the actual public dataset.
        let dir = tmpdir("ycreal");
        let clicks = dir.join("clicks.dat");
        let buys = dir.join("buys.dat");
        std::fs::write(
            &clicks,
            "420374,2014-04-06T18:44:58.314Z,214537888,0\n\
             420374,2014-04-06T18:44:58.325Z,214537850,0\n\
             281626,2014-04-06T09:40:13.032Z,214535653,0\n",
        )
        .unwrap();
        std::fs::write(&buys, "420374,2014-04-06T18:44:58.314Z,214537888,12462,1\n").unwrap();
        let (cs, stats) = read_yoochoose(&clicks, &buys).unwrap();
        // Session 281626 has no purchase -> dropped.
        assert_eq!(cs.len(), 1);
        assert_eq!(stats.dropped_no_purchase, 1);
        let s = &cs.sessions[0];
        assert_eq!(s.id, 420374);
        assert_eq!(s.purchase, 214537888);
        assert_eq!(s.alternatives(), vec![214537850]);
    }

    #[test]
    fn yoochoose_multi_purchase_sessions_split() {
        let dir = tmpdir("ycmulti");
        let clicks = dir.join("clicks.dat");
        let buys = dir.join("buys.dat");
        std::fs::write(&clicks, "9,t,100,0\n9,t,200,0\n9,t,300,0\n").unwrap();
        std::fs::write(&buys, "9,t,100,1,1\n9,t,300,1,1\n").unwrap();
        let (cs, stats) = read_yoochoose(&clicks, &buys).unwrap();
        assert_eq!(stats.split_multi_purchase, 1);
        assert_eq!(cs.len(), 2);
        assert_eq!(cs.sessions[0].purchase, 100);
        assert_eq!(cs.sessions[0].alternatives(), vec![200]);
        assert_eq!(cs.sessions[1].purchase, 300);
        assert_eq!(cs.sessions[1].alternatives(), vec![200]);
    }

    #[test]
    fn bad_item_id_is_parse_error_with_line() {
        let dir = tmpdir("ycbad");
        let clicks = dir.join("clicks.dat");
        let buys = dir.join("buys.dat");
        std::fs::write(&clicks, "1,t,abc,0\n").unwrap();
        std::fs::write(&buys, "").unwrap();
        let err = read_yoochoose(&clicks, &buys).unwrap_err();
        assert!(matches!(err, IoError::Parse { line: Some(1), .. }));
    }
}

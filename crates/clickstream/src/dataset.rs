//! Clickstream containers and dataset statistics.

// lint: allow-file(no-index) — session and item positions are produced by the ingest
// pipeline against vectors it sized itself, in bounds by construction.
use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::session::{ExternalItemId, Session};

/// A collection of sessions — one dataset in the paper's sense (PE, PF, PM,
/// YC are each one `Clickstream`).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Clickstream {
    /// The sessions, in log order.
    pub sessions: Vec<Session>,
}

impl Clickstream {
    /// Creates a clickstream from sessions.
    pub fn new(sessions: Vec<Session>) -> Self {
        Clickstream { sessions }
    }

    /// Number of sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// True when there are no sessions.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Distinct item ids appearing anywhere (clicked or purchased), with
    /// their total purchase counts. Iteration order of the map is
    /// unspecified; callers sort as needed.
    pub fn item_purchase_counts(&self) -> HashMap<ExternalItemId, u64> {
        let mut counts: HashMap<ExternalItemId, u64> = HashMap::new();
        for s in &self.sessions {
            *counts.entry(s.purchase).or_insert(0) += 1;
            for &c in &s.clicks {
                counts.entry(c).or_insert(0);
            }
        }
        counts
    }

    /// Computes the dataset statistics (the Table 2 numbers, minus the edge
    /// count which only exists after graph construction).
    pub fn stats(&self) -> ClickstreamStats {
        let mut purchases = 0u64;
        let mut clicks = 0u64;
        let mut alt_histogram: Vec<u64> = Vec::new();
        let mut weighted_alt_fraction_sum = 0.0f64;
        for s in &self.sessions {
            purchases += 1;
            clicks += s.clicks.len() as u64;
            let alts = s.alternative_count();
            if alt_histogram.len() <= alts {
                alt_histogram.resize(alts + 1, 0);
            }
            alt_histogram[alts] += 1;
            if alts <= 1 {
                weighted_alt_fraction_sum += 1.0;
            }
        }
        let items = self.item_purchase_counts().len();
        let n_sessions = self.sessions.len();
        ClickstreamStats {
            sessions: n_sessions,
            purchases,
            items,
            clicks,
            alt_histogram,
            at_most_one_alternative_fraction: if n_sessions == 0 {
                1.0
            } else {
                weighted_alt_fraction_sum / n_sessions as f64
            },
        }
    }
}

/// Summary statistics of a clickstream dataset.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClickstreamStats {
    /// Number of sessions (all ending in a purchase).
    pub sessions: usize,
    /// Number of purchases (equals `sessions` after single-purchase
    /// filtering — the paper's Table 2 lists both).
    pub purchases: u64,
    /// Number of distinct items clicked or purchased.
    pub items: usize,
    /// Total click events.
    pub clicks: u64,
    /// `alt_histogram[t]` = number of sessions with exactly `t` distinct
    /// non-purchase clicked items.
    pub alt_histogram: Vec<u64>,
    /// Fraction of sessions with at most one alternative — the paper's 90%
    /// rule for choosing the Normalized variant (Section 5.2).
    pub at_most_one_alternative_fraction: f64,
}

impl ClickstreamStats {
    /// Mean number of distinct alternatives per session.
    pub fn mean_alternatives(&self) -> f64 {
        if self.sessions == 0 {
            return 0.0;
        }
        let total: u64 = self
            .alt_histogram
            .iter()
            .enumerate()
            .map(|(t, &n)| t as u64 * n)
            .sum();
        total as f64 / self.sessions as f64
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exactly-representable constants
mod tests {
    use super::*;

    fn sample() -> Clickstream {
        Clickstream::new(vec![
            Session::new(1, vec![10, 20], 10),     // 1 alternative (20)
            Session::new(2, vec![10, 20, 30], 30), // 2 alternatives
            Session::new(3, vec![], 10),           // 0 alternatives
            Session::new(4, vec![40], 10),         // 1 alternative
        ])
    }

    #[test]
    fn stats_counts() {
        let s = sample().stats();
        assert_eq!(s.sessions, 4);
        assert_eq!(s.purchases, 4);
        assert_eq!(s.items, 4); // 10, 20, 30, 40
        assert_eq!(s.clicks, 6);
        assert_eq!(s.alt_histogram, vec![1, 2, 1]);
        assert!((s.at_most_one_alternative_fraction - 0.75).abs() < 1e-12);
        assert!((s.mean_alternatives() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn purchase_counts() {
        let counts = sample().item_purchase_counts();
        assert_eq!(counts[&10], 3);
        assert_eq!(counts[&30], 1);
        assert_eq!(counts[&20], 0); // clicked only
        assert_eq!(counts[&40], 0);
    }

    #[test]
    fn empty_clickstream() {
        let cs = Clickstream::default();
        assert!(cs.is_empty());
        let s = cs.stats();
        assert_eq!(s.sessions, 0);
        assert_eq!(s.at_most_one_alternative_fraction, 1.0);
        assert_eq!(s.mean_alternatives(), 0.0);
    }

    #[test]
    fn serde_roundtrip() {
        let cs = sample();
        let json = serde_json::to_string(&cs).unwrap();
        let back: Clickstream = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cs);
    }
}

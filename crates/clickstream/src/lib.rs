//! # pcover-clickstream
//!
//! The raw-data substrate of the Preference Cover system: consumer browsing
//! *sessions* consisting of item clicks and a purchase, as described in
//! Section 5.2 of "Inventory Reduction via Maximal Coverage in E-Commerce"
//! (EDBT 2020).
//!
//! E-commerce platforms log per-session events; the paper's pipeline
//! consumes the minimal schema available on essentially every platform —
//! clicks and purchases grouped by session — and the public YooChoose
//! RecSys'15 dataset ships exactly that. This crate provides:
//!
//! * [`Session`] / [`Clickstream`] — the in-memory model, with items under
//!   their external (platform) ids.
//! * [`ClickstreamStats`] — the Table 2 dataset-summary numbers plus the
//!   alternative-click distribution that drives variant selection.
//! * [`filter`] — the cleaning steps the paper applies (single-purchase
//!   sessions, click dedup).
//! * [`io`] — JSONL interchange and the YooChoose two-file format
//!   (`yoochoose-clicks.dat` / `yoochoose-buys.dat`), both read *and*
//!   write, so the real public dataset can be dropped in directly.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod dataset;
mod session;

pub mod filter;
pub mod io;

pub use dataset::{Clickstream, ClickstreamStats};
pub use session::{ExternalItemId, Session};

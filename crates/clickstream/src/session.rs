//! A single consumer browsing session.

use serde::{Deserialize, Serialize};

/// An item identifier as it appears in platform logs (YooChoose uses 64-bit
/// integers; string ids should be interned upstream).
pub type ExternalItemId = u64;

/// One browsing session: the items the consumer clicked and the single item
/// purchased at the end.
///
/// The paper restricts its input to sessions ending in exactly one item
/// purchase (Section 5.3); sessions without a purchase carry no intent
/// signal for the model and are dropped by [`filter`](crate::filter).
/// Clicks may include the purchased item itself and repeated views — the
/// adaptation engine considers *distinct non-purchased* clicked items.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Session {
    /// Platform session id.
    pub id: u64,
    /// Clicked item ids, in click order, possibly with repeats.
    pub clicks: Vec<ExternalItemId>,
    /// The purchased item.
    pub purchase: ExternalItemId,
}

impl Session {
    /// Convenience constructor.
    pub fn new(id: u64, clicks: Vec<ExternalItemId>, purchase: ExternalItemId) -> Self {
        Session {
            id,
            clicks,
            purchase,
        }
    }

    /// The distinct clicked items that are **not** the purchase — the
    /// "alternatives considered" signal of Section 5.2, in first-click
    /// order.
    pub fn alternatives(&self) -> Vec<ExternalItemId> {
        let mut seen = Vec::new();
        for &c in &self.clicks {
            if c != self.purchase && !seen.contains(&c) {
                seen.push(c);
            }
        }
        seen
    }

    /// Number of distinct non-purchase clicked items.
    pub fn alternative_count(&self) -> usize {
        self.alternatives().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alternatives_dedup_and_exclude_purchase() {
        let s = Session::new(1, vec![10, 20, 10, 30, 20, 30], 30);
        assert_eq!(s.alternatives(), vec![10, 20]);
        assert_eq!(s.alternative_count(), 2);
    }

    #[test]
    fn purchase_only_session_has_no_alternatives() {
        let s = Session::new(2, vec![5, 5], 5);
        assert!(s.alternatives().is_empty());
        let s = Session::new(3, vec![], 5);
        assert!(s.alternatives().is_empty());
    }

    #[test]
    fn order_is_first_click_order() {
        let s = Session::new(4, vec![9, 7, 9, 8], 1);
        assert_eq!(s.alternatives(), vec![9, 7, 8]);
    }

    #[test]
    fn serde_roundtrip() {
        let s = Session::new(7, vec![1, 2], 2);
        let json = serde_json::to_string(&s).unwrap();
        let back: Session = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}

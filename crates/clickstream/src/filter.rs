//! Cleaning steps applied to raw logs before graph construction.
//!
//! The paper's datasets are restricted to sessions ending in a single item
//! purchase (Section 5.3, "we specifically requested such sessions"). Raw
//! logs contain sessions with zero or multiple purchases; a multi-purchase
//! session is modeled as separate single-purchase sessions (Section 2.1:
//! "cases where a consumer is looking to purchase several items ... are
//! modeled as separate sessions").

// lint: allow-file(no-index) — session and item positions are produced by the ingest
// pipeline against vectors it sized itself, in bounds by construction.
use crate::{Clickstream, ExternalItemId, Session};

/// A raw session as read from logs: clicks plus zero or more purchases.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RawSession {
    /// Platform session id.
    pub id: u64,
    /// Clicked item ids in click order.
    pub clicks: Vec<ExternalItemId>,
    /// Purchased item ids (possibly empty, possibly several).
    pub purchases: Vec<ExternalItemId>,
}

/// Statistics of a [`normalize_sessions`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FilterStats {
    /// Raw sessions seen.
    pub raw_sessions: usize,
    /// Sessions dropped for having no purchase.
    pub dropped_no_purchase: usize,
    /// Raw sessions with more than one distinct purchase, each expanded
    /// into one output session per purchased item.
    pub split_multi_purchase: usize,
    /// Output (single-purchase) sessions.
    pub output_sessions: usize,
}

/// Converts raw sessions into the paper's single-purchase form:
///
/// * no-purchase sessions are dropped (no intent signal);
/// * multi-purchase sessions are split, one output session per *distinct*
///   purchased item, each keeping the full click list minus the other
///   purchases (another purchased item is a demonstrated separate intent,
///   not an alternative);
/// * repeat purchases of the same item collapse.
pub fn normalize_sessions(raw: Vec<RawSession>) -> (Clickstream, FilterStats) {
    let mut stats = FilterStats {
        raw_sessions: raw.len(),
        ..FilterStats::default()
    };
    let mut sessions = Vec::with_capacity(raw.len());
    for r in raw {
        let mut distinct_purchases: Vec<ExternalItemId> = Vec::new();
        for &p in &r.purchases {
            if !distinct_purchases.contains(&p) {
                distinct_purchases.push(p);
            }
        }
        match distinct_purchases.len() {
            0 => stats.dropped_no_purchase += 1,
            1 => {
                sessions.push(Session::new(r.id, r.clicks, distinct_purchases[0]));
            }
            _ => {
                stats.split_multi_purchase += 1;
                for &p in &distinct_purchases {
                    let clicks: Vec<ExternalItemId> = r
                        .clicks
                        .iter()
                        .copied()
                        .filter(|c| *c == p || !distinct_purchases.contains(c))
                        .collect();
                    sessions.push(Session::new(r.id, clicks, p));
                }
            }
        }
    }
    stats.output_sessions = sessions.len();
    (Clickstream::new(sessions), stats)
}

/// Drops sessions whose purchased item occurs fewer than `min_purchases`
/// times in the whole stream — a noise filter for extremely rare items
/// (the paper notes rarely-clicked items contribute noise but negligible
/// weight; this makes the trade explicit and optional).
pub fn drop_rare_purchases(cs: Clickstream, min_purchases: u64) -> Clickstream {
    if min_purchases <= 1 {
        return cs;
    }
    let counts = cs.item_purchase_counts();
    Clickstream::new(
        cs.sessions
            .into_iter()
            .filter(|s| counts[&s.purchase] >= min_purchases)
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_purchase_dropped() {
        let (cs, stats) = normalize_sessions(vec![RawSession {
            id: 1,
            clicks: vec![10, 20],
            purchases: vec![],
        }]);
        assert!(cs.is_empty());
        assert_eq!(stats.dropped_no_purchase, 1);
        assert_eq!(stats.output_sessions, 0);
    }

    #[test]
    fn single_purchase_passes_through() {
        let (cs, stats) = normalize_sessions(vec![RawSession {
            id: 2,
            clicks: vec![10, 20],
            purchases: vec![20, 20],
        }]);
        assert_eq!(cs.sessions, vec![Session::new(2, vec![10, 20], 20)]);
        assert_eq!(stats.split_multi_purchase, 0);
    }

    #[test]
    fn multi_purchase_split_excludes_sibling_purchases_from_clicks() {
        let (cs, stats) = normalize_sessions(vec![RawSession {
            id: 3,
            clicks: vec![10, 20, 30],
            purchases: vec![10, 30],
        }]);
        assert_eq!(stats.split_multi_purchase, 1);
        assert_eq!(cs.len(), 2);
        // Session for purchase 10 keeps clicks {10, 20} (30 was bought, not
        // an alternative) and vice versa.
        assert_eq!(cs.sessions[0], Session::new(3, vec![10, 20], 10));
        assert_eq!(cs.sessions[1], Session::new(3, vec![20, 30], 30));
    }

    #[test]
    fn rare_purchase_filter() {
        let cs = Clickstream::new(vec![
            Session::new(1, vec![], 10),
            Session::new(2, vec![], 10),
            Session::new(3, vec![], 99),
        ]);
        let filtered = drop_rare_purchases(cs.clone(), 2);
        assert_eq!(filtered.len(), 2);
        assert!(filtered.sessions.iter().all(|s| s.purchase == 10));
        // Threshold 1 is a no-op.
        assert_eq!(drop_rare_purchases(cs.clone(), 1), cs);
    }
}

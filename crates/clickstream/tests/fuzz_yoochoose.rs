//! Robustness: the YooChoose and JSONL readers must error, never panic, on
//! arbitrary input.

use proptest::prelude::*;

use pcover_clickstream::io;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn yoochoose_reader_never_panics(clicks in "\\PC{0,300}", buys in "\\PC{0,300}") {
        let dir = std::env::temp_dir()
            .join("pcover-fuzz-yc")
            .join(format!("{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let c = dir.join("clicks.dat");
        let b = dir.join("buys.dat");
        std::fs::write(&c, &clicks).unwrap();
        std::fs::write(&b, &buys).unwrap();
        let _ = io::read_yoochoose(&c, &b);
    }

    #[test]
    fn yoochoose_reader_accepts_any_numeric_rows(
        rows in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..20),
    ) {
        // Well-formed numeric rows must always parse (whatever the ids).
        let dir = std::env::temp_dir()
            .join("pcover-fuzz-yc2")
            .join(format!("{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let c = dir.join("clicks.dat");
        let b = dir.join("buys.dat");
        let clicks: String = rows
            .iter()
            .map(|(s, i)| format!("{s},2014-04-01T00:00:00.000Z,{i},0\n"))
            .collect();
        let buys: String = rows
            .iter()
            .map(|(s, i)| format!("{s},2014-04-01T00:00:00.000Z,{i},100,1\n"))
            .collect();
        std::fs::write(&c, &clicks).unwrap();
        std::fs::write(&b, &buys).unwrap();
        let (cs, stats) = io::read_yoochoose(&c, &b).unwrap();
        // Every row pair purchases its clicked item, so nothing is dropped.
        prop_assert_eq!(stats.dropped_no_purchase, 0);
        prop_assert!(cs.len() >= stats.raw_sessions - stats.split_multi_purchase);
    }

    #[test]
    fn jsonl_reader_never_panics(content in "\\PC{0,300}") {
        let dir = std::env::temp_dir().join("pcover-fuzz-jsonl");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(format!("{}.jsonl", std::process::id()));
        std::fs::write(&p, &content).unwrap();
        let _ = io::read_jsonl(&p);
    }
}

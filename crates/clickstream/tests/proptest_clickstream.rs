//! Property tests for the clickstream substrate: normalization invariants
//! and format roundtrips on random sessions.

use proptest::prelude::*;

use pcover_clickstream::filter::{normalize_sessions, RawSession};
use pcover_clickstream::{io, Clickstream, Session};

fn arb_raw_sessions(max: usize) -> impl Strategy<Value = Vec<RawSession>> {
    proptest::collection::vec(
        (
            1u64..1000,
            proptest::collection::vec(1u64..50, 0..6),
            proptest::collection::vec(1u64..50, 0..3),
        ),
        0..=max,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(|(id, clicks, purchases)| RawSession {
                id,
                clicks,
                purchases,
            })
            .collect()
    })
}

fn arb_clickstream(max: usize) -> impl Strategy<Value = Clickstream> {
    proptest::collection::vec(
        (
            1u64..10_000,
            proptest::collection::vec(1u64..200, 0..6),
            1u64..200,
        ),
        0..=max,
    )
    .prop_map(|raw| {
        Clickstream::new(
            raw.into_iter()
                .enumerate()
                .map(|(i, (_, clicks, purchase))| Session::new(i as u64 + 1, clicks, purchase))
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn normalization_accounting_adds_up(raw in arb_raw_sessions(30)) {
        let raw_count = raw.len();
        let multi: usize = raw
            .iter()
            .filter(|r| {
                let mut d: Vec<u64> = r.purchases.clone();
                d.sort_unstable();
                d.dedup();
                d.len() > 1
            })
            .count();
        let (cs, stats) = normalize_sessions(raw);
        prop_assert_eq!(stats.raw_sessions, raw_count);
        prop_assert_eq!(stats.split_multi_purchase, multi);
        prop_assert_eq!(stats.output_sessions, cs.len());
        // Every output session's purchase is never listed among its
        // alternatives.
        for s in &cs.sessions {
            prop_assert!(!s.alternatives().contains(&s.purchase));
        }
        // Conservation: outputs = raw - dropped + extra splits.
        prop_assert!(cs.len() >= raw_count - stats.dropped_no_purchase);
    }

    #[test]
    fn stats_histogram_sums_to_sessions(cs in arb_clickstream(40)) {
        let stats = cs.stats();
        let hist_total: u64 = stats.alt_histogram.iter().sum();
        prop_assert_eq!(hist_total, cs.len() as u64);
        prop_assert!((0.0..=1.0).contains(&stats.at_most_one_alternative_fraction));
        prop_assert!(stats.mean_alternatives() >= 0.0);
    }

    #[test]
    fn jsonl_roundtrip(cs in arb_clickstream(30)) {
        let dir = std::env::temp_dir().join("pcover-prop-jsonl");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("cs-{}.jsonl", std::process::id()));
        io::write_jsonl(&cs, &path).unwrap();
        let back = io::read_jsonl(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(back, cs);
    }

    #[test]
    fn yoochoose_roundtrip_for_sorted_unique_ids(n in 1usize..30, salt in 0u64..1000) {
        // The YooChoose reader canonicalizes by session id, so feed it
        // sessions with unique ascending ids.
        let sessions: Vec<Session> = (0..n)
            .map(|i| {
                let id = i as u64 + 1;
                let purchase = (i as u64 * 7 + salt) % 40 + 1;
                let clicks = vec![purchase, (purchase + 3) % 40 + 1];
                Session::new(id, clicks, purchase)
            })
            .collect();
        let cs = Clickstream::new(sessions);
        let dir = std::env::temp_dir().join("pcover-prop-yc");
        std::fs::create_dir_all(&dir).unwrap();
        let clicks = dir.join(format!("c-{}.dat", std::process::id()));
        let buys = dir.join(format!("b-{}.dat", std::process::id()));
        io::write_yoochoose(&cs, &clicks, &buys).unwrap();
        let (back, stats) = io::read_yoochoose(&clicks, &buys).unwrap();
        std::fs::remove_file(&clicks).ok();
        std::fs::remove_file(&buys).ok();
        prop_assert_eq!(back, cs);
        prop_assert_eq!(stats.dropped_no_purchase, 0);
    }
}

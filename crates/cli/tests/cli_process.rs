//! Process-level tests of the `pcover` binary: exit codes, usage text, and
//! stderr shape per subcommand, driven through `std::process::Command` so the
//! real `main` (not just the library) is under test.
//!
//! Exit-code contract:
//! - 0: command ran and printed its report
//! - 1: the command itself failed (bad file, impossible `k`, ...)
//! - 2: the command line could not be parsed (usage error); HELP on stderr

use std::path::PathBuf;
use std::process::{Command, Output};

fn pcover(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_pcover"))
        .args(args)
        .output()
        .expect("spawn pcover")
}

fn tmp(name: &str) -> String {
    let dir = std::env::temp_dir().join(format!("pcover-proc-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(name).to_string_lossy().into_owned()
}

#[test]
fn help_exits_zero_and_lists_subcommands() {
    for args in [&["help"][..], &["--help"][..]] {
        let out = pcover(args);
        assert_eq!(out.status.code(), Some(0), "{args:?}");
        let text = String::from_utf8_lossy(&out.stdout);
        for sub in [
            "generate",
            "diagnose",
            "adapt",
            "stats",
            "solve",
            "minimize",
            "repair",
            "export-dot",
            "closure",
            "delta",
        ] {
            assert!(text.contains(sub), "{args:?} help missing {sub}");
        }
    }
}

#[test]
fn usage_errors_exit_2_with_help_on_stderr() {
    // No subcommand at all.
    let out = pcover(&[]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("missing subcommand"), "{err}");
    assert!(err.contains("USAGE"), "usage text should follow the error");

    // Option before subcommand.
    let out = pcover(&["--k", "10"]);
    assert_eq!(out.status.code(), Some(2));

    // Stray positional after the subcommand.
    let out = pcover(&["solve", "stray"]);
    assert_eq!(out.status.code(), Some(2));

    // Duplicate option.
    let out = pcover(&["solve", "--k", "1", "--k", "2"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn run_errors_exit_1_with_message_on_stderr() {
    // Unknown subcommand parses fine but fails dispatch.
    let out = pcover(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown subcommand"));

    // Missing input file.
    let out = pcover(&["stats", "--graph", "/nonexistent/graph.json"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("error:"));

    // Missing required option.
    let out = pcover(&["solve", "--k", "3"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--graph"));
}

#[test]
fn generate_adapt_solve_pipeline_exits_zero() {
    let sessions = tmp("pipe.jsonl");
    let graph = tmp("pipe-graph.json");

    let out = pcover(&[
        "generate",
        "--profile",
        "YC",
        "--scale",
        "0.002",
        "--seed",
        "5",
        "--out",
        &sessions,
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "generate failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("generated"));

    let out = pcover(&[
        "adapt",
        "--input",
        &sessions,
        "--variant",
        "independent",
        "--out",
        &graph,
    ]);
    assert_eq!(out.status.code(), Some(0));

    let out = pcover(&[
        "solve",
        "--graph",
        &graph,
        "--k",
        "5",
        "--variant",
        "independent",
    ]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("retained 5"));

    // Impossible k on the same graph: run error, exit 1.
    let out = pcover(&[
        "solve",
        "--graph",
        &graph,
        "--k",
        "999999",
        "--variant",
        "independent",
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("exceeds"));
}

#[test]
fn xtask_lint_flags_planted_fixture_tree() {
    // Cross-binary check required by the issue: run the workspace linter over
    // a tree with planted violations and assert it fails loudly. The xtask
    // binary is built as part of the workspace; invoke it through cargo so
    // this test does not depend on xtask's target path layout.
    let fixture = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../xtask/tests/fixtures/planted")
        .canonicalize()
        .expect("fixture tree exists");
    let out = Command::new(env!("CARGO"))
        .args(["run", "-q", "-p", "xtask", "--", "lint", "--root"])
        .arg(&fixture)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("spawn cargo run -p xtask");
    assert_eq!(out.status.code(), Some(1), "planted tree must fail lint");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("[float-eq]"), "{text}");
    assert!(text.contains("[no-unwrap]"), "{text}");
    assert!(text.contains("violation(s)"), "{text}");
}

//! Process-level tests of the `pcover` binary: exit codes, usage text, and
//! stderr shape per subcommand, driven through `std::process::Command` so the
//! real `main` (not just the library) is under test.
//!
//! Exit-code contract:
//! - 0: command ran and printed its report
//! - 1: the command itself failed (bad file, impossible `k`, ...)
//! - 2: the command line could not be parsed (usage error); HELP on stderr

use std::path::PathBuf;
use std::process::{Command, Output};

fn pcover(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_pcover"))
        .args(args)
        .output()
        .expect("spawn pcover")
}

fn tmp(name: &str) -> String {
    let dir = std::env::temp_dir().join(format!("pcover-proc-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(name).to_string_lossy().into_owned()
}

#[test]
fn help_exits_zero_and_lists_subcommands() {
    for args in [&["help"][..], &["--help"][..]] {
        let out = pcover(args);
        assert_eq!(out.status.code(), Some(0), "{args:?}");
        let text = String::from_utf8_lossy(&out.stdout);
        for sub in [
            "generate",
            "diagnose",
            "adapt",
            "stats",
            "solve",
            "minimize",
            "repair",
            "export-dot",
            "closure",
            "delta",
        ] {
            assert!(text.contains(sub), "{args:?} help missing {sub}");
        }
    }
}

#[test]
fn usage_errors_exit_2_with_help_on_stderr() {
    // No subcommand at all.
    let out = pcover(&[]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("missing subcommand"), "{err}");
    assert!(err.contains("USAGE"), "usage text should follow the error");

    // Option before subcommand.
    let out = pcover(&["--k", "10"]);
    assert_eq!(out.status.code(), Some(2));

    // Stray positional after the subcommand.
    let out = pcover(&["solve", "stray"]);
    assert_eq!(out.status.code(), Some(2));

    // Duplicate option.
    let out = pcover(&["solve", "--k", "1", "--k", "2"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn run_errors_exit_1_with_message_on_stderr() {
    // Unknown subcommand parses fine but fails dispatch.
    let out = pcover(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown subcommand"));

    // Missing input file.
    let out = pcover(&["stats", "--graph", "/nonexistent/graph.json"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("error:"));

    // Missing required option.
    let out = pcover(&["solve", "--k", "3"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--graph"));
}

#[test]
fn generate_adapt_solve_pipeline_exits_zero() {
    let sessions = tmp("pipe.jsonl");
    let graph = tmp("pipe-graph.json");

    let out = pcover(&[
        "generate",
        "--profile",
        "YC",
        "--scale",
        "0.002",
        "--seed",
        "5",
        "--out",
        &sessions,
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "generate failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("generated"));

    let out = pcover(&[
        "adapt",
        "--input",
        &sessions,
        "--variant",
        "independent",
        "--out",
        &graph,
    ]);
    assert_eq!(out.status.code(), Some(0));

    let out = pcover(&[
        "solve",
        "--graph",
        &graph,
        "--k",
        "5",
        "--variant",
        "independent",
    ]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("retained 5"));

    // Impossible k on the same graph: run error, exit 1.
    let out = pcover(&[
        "solve",
        "--graph",
        &graph,
        "--k",
        "999999",
        "--variant",
        "independent",
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("exceeds"));
}

/// Table-driven end-to-end coverage of the container commands: every row is
/// one process invocation with the expected exit code and a substring that
/// must appear on the expected stream.
#[test]
fn container_commands_exit_codes_and_messages() {
    // Seed one JSON graph and one container through the binary itself.
    let json = tmp("table-graph.json");
    let container = tmp("table-graph.pcov");
    for out_path in [&json, &container] {
        let out = pcover(&[
            "gen-graph",
            "--nodes",
            "300",
            "--degree",
            "3",
            "--seed",
            "11",
            "--out",
            out_path,
        ]);
        assert_eq!(
            out.status.code(),
            Some(0),
            "gen-graph {out_path} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    // A corrupt container: valid header, flipped payload byte.
    let corrupt = tmp("table-corrupt.pcov");
    let mut bytes = std::fs::read(&container).expect("read container");
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    std::fs::write(&corrupt, bytes).expect("write corrupt container");

    let reconverted = tmp("table-reconverted.pcov");
    struct Case<'a> {
        args: Vec<&'a str>,
        code: i32,
        /// (look at stderr?, required substring)
        expect: (bool, &'a str),
    }
    let cases = [
        // Happy paths.
        Case {
            args: vec!["convert", &json, &reconverted],
            code: 0,
            expect: (false, "300 nodes"),
        },
        Case {
            args: vec!["probe", &container],
            code: 0,
            expect: (false, "nodes: 300"),
        },
        Case {
            args: vec!["probe", &container, "--verify"],
            code: 0,
            expect: (false, "checksums + CSR invariants"),
        },
        Case {
            args: vec!["stats", "--graph", &container],
            code: 0,
            expect: (false, "nodes"),
        },
        Case {
            args: vec![
                "solve",
                "--graph",
                &container,
                "--k",
                "5",
                "--variant",
                "independent",
            ],
            code: 0,
            expect: (false, "retained 5"),
        },
        // Run errors (exit 1): missing operands, wrong formats, corruption.
        Case {
            args: vec!["probe"],
            code: 1,
            expect: (true, "<file>"),
        },
        Case {
            args: vec!["convert", &json],
            code: 1,
            expect: (true, "<output>"),
        },
        Case {
            args: vec!["probe", &json],
            code: 1,
            expect: (true, "container"),
        },
        Case {
            args: vec!["probe", "/nonexistent/g.pcov"],
            code: 1,
            expect: (true, "error:"),
        },
        Case {
            args: vec!["convert", &json, &reconverted, "--to", "parquet"],
            code: 1,
            expect: (true, "parquet"),
        },
        Case {
            args: vec!["probe", &corrupt, "--verify"],
            code: 1,
            expect: (true, "checksum"),
        },
        Case {
            args: vec![
                "solve",
                "--graph",
                &corrupt,
                "--k",
                "2",
                "--variant",
                "independent",
            ],
            code: 1,
            expect: (true, "checksum"),
        },
        Case {
            args: vec!["gen-graph", "--out", "/tmp/x.pcov"],
            code: 1,
            expect: (true, "--nodes"),
        },
        // Usage errors (exit 2): excess positionals.
        Case {
            args: vec!["convert", "a", "b", "c"],
            code: 2,
            expect: (true, "USAGE"),
        },
        Case {
            args: vec!["probe", "a", "b"],
            code: 2,
            expect: (true, "USAGE"),
        },
    ];
    for case in &cases {
        let out = pcover(&case.args);
        assert_eq!(
            out.status.code(),
            Some(case.code),
            "{:?}: stderr {}",
            case.args,
            String::from_utf8_lossy(&out.stderr)
        );
        let (on_stderr, needle) = case.expect;
        let stream = if on_stderr { &out.stderr } else { &out.stdout };
        let text = String::from_utf8_lossy(stream);
        assert!(
            text.contains(needle),
            "{:?}: {needle:?} not in {text}",
            case.args
        );
    }
}

/// `serve --graph <container>` must start instantly from the mapped file
/// and answer queries; driven over real TCP against the real binary.
#[test]
fn serve_starts_from_a_container_file() {
    use std::io::{Read as _, Write as _};

    let container = tmp("serve-graph.pcov");
    let out = pcover(&[
        "gen-graph",
        "--nodes",
        "200",
        "--degree",
        "3",
        "--seed",
        "3",
        "--out",
        &container,
    ]);
    assert_eq!(out.status.code(), Some(0));

    let probe = std::net::TcpListener::bind("127.0.0.1:0").expect("bind probe");
    let port = probe.local_addr().expect("addr").port().to_string();
    drop(probe);
    let mut server = Command::new(env!("CARGO_BIN_EXE_pcover"))
        .args([
            "serve",
            "--graph",
            &container,
            "--port",
            &port,
            "--threads",
            "2",
        ])
        .spawn()
        .expect("spawn serve");

    let addr = format!("127.0.0.1:{port}");
    let send = |target: &str, method: &str| -> Option<String> {
        for _ in 0..200 {
            if let Ok(mut s) = std::net::TcpStream::connect(&addr) {
                s.write_all(
                    format!(
                        "{method} {target} HTTP/1.1\r\nHost: t\r\n\
                         Content-Length: 0\r\nConnection: close\r\n\r\n"
                    )
                    .as_bytes(),
                )
                .ok()?;
                let mut out = String::new();
                s.read_to_string(&mut out).ok()?;
                return Some(out);
            }
            std::thread::sleep(std::time::Duration::from_millis(25));
        }
        None
    };
    let health = send("/healthz", "GET").expect("healthz reachable");
    assert!(health.contains("200"), "{health}");
    let solved = send("/solve?k=3&variant=independent", "GET").expect("solve reachable");
    assert!(solved.contains("200"), "{solved}");
    let bye = send("/admin/shutdown", "POST").expect("shutdown reachable");
    assert!(bye.contains("200"), "{bye}");
    let status = server.wait().expect("server exits");
    assert!(status.success(), "serve should exit 0 after drain");
}

#[test]
fn xtask_lint_flags_planted_fixture_tree() {
    // Cross-binary check required by the issue: run the workspace linter over
    // a tree with planted violations and assert it fails loudly. The xtask
    // binary is built as part of the workspace; invoke it through cargo so
    // this test does not depend on xtask's target path layout.
    let fixture = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../xtask/tests/fixtures/planted")
        .canonicalize()
        .expect("fixture tree exists");
    let out = Command::new(env!("CARGO"))
        .args(["run", "-q", "-p", "xtask", "--", "lint", "--root"])
        .arg(&fixture)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("spawn cargo run -p xtask");
    assert_eq!(out.status.code(), Some(1), "planted tree must fail lint");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("[float-eq]"), "{text}");
    assert!(text.contains("[no-unwrap]"), "{text}");
    assert!(text.contains("violation(s)"), "{text}");
}

//! Round-trip guard for the committed bench snapshots: `BENCH_5.json`,
//! `BENCH_7.json` and `BENCH_9.json` must parse against the
//! `pcover-bench-snapshot/1` schema *exactly* — a missing field or an
//! unknown field fails, so the snapshot format cannot drift under the CI
//! perf gate that diffs the files.
//!
//! `BENCH_9.json` is the `--grid large` container tier; its entries carry
//! a fixed set of *optional* extras ([`LARGE_ENTRY_KEYS`]: load backend,
//! load speedup, warm-delta bookkeeping) on top of the same required core.

use std::path::PathBuf;

use serde_json::{Number, Value};

const SCHEMA: &str = "pcover-bench-snapshot/1";
const TOP_KEYS: [&str; 4] = ["schema", "pr", "seed", "entries"];
const ENTRY_KEYS: [&str; 10] = [
    "solver",
    "variant",
    "n",
    "avg_out_degree",
    "k",
    "seed",
    "wall_ms",
    "gain_evaluations",
    "memory_bytes",
    "cover",
];
/// Extra entry fields the large container grid may attach.
const LARGE_ENTRY_KEYS: [&str; 5] = [
    "backend",
    "speedup_vs_json",
    "delta_changes",
    "rounds_reused",
    "rounds_repaired",
];

fn is_u64(v: &Value) -> bool {
    matches!(v, Value::Number(Number::U64(_)))
}

fn is_f64(v: &Value) -> bool {
    matches!(v, Value::Number(Number::F64(_)))
}

/// Strict `pcover-bench-snapshot/1` validation: exact key sets at both
/// levels, field types as written by `bench-snapshot`, non-empty entries.
fn validate(snapshot: &Value) -> Result<(), String> {
    validate_profile(snapshot, false)
}

/// [`validate`] for the `--grid large` tier: the same required core, plus
/// the fixed optional extras in [`LARGE_ENTRY_KEYS`] (type-checked when
/// present; anything else is still rejected).
fn validate_large(snapshot: &Value) -> Result<(), String> {
    validate_profile(snapshot, true)
}

fn validate_profile(snapshot: &Value, large: bool) -> Result<(), String> {
    let Value::Object(obj) = snapshot else {
        return Err("top level is not an object".into());
    };
    for key in obj.keys() {
        if !TOP_KEYS.contains(&key.as_str()) {
            return Err(format!("unknown top-level field {key:?}"));
        }
    }
    for key in TOP_KEYS {
        if !obj.contains_key(key) {
            return Err(format!("missing top-level field {key:?}"));
        }
    }
    if obj["schema"].as_str() != Some(SCHEMA) {
        return Err(format!("schema is {}, want {SCHEMA:?}", obj["schema"]));
    }
    if !is_u64(&obj["pr"]) || !is_u64(&obj["seed"]) {
        return Err("pr and seed must be unsigned integers".into());
    }
    let entries = obj["entries"].as_array().ok_or("entries is not an array")?;
    if entries.is_empty() {
        return Err("entries is empty".into());
    }
    for (i, entry) in entries.iter().enumerate() {
        let Value::Object(e) = entry else {
            return Err(format!("entry {i} is not an object"));
        };
        for key in e.keys() {
            let extra = large && LARGE_ENTRY_KEYS.contains(&key.as_str());
            if !ENTRY_KEYS.contains(&key.as_str()) && !extra {
                return Err(format!("entry {i}: unknown field {key:?}"));
            }
        }
        for key in ENTRY_KEYS {
            if !e.contains_key(key) {
                return Err(format!("entry {i}: missing field {key:?}"));
            }
        }
        for key in ["solver", "variant"] {
            if e[key].as_str().is_none() {
                return Err(format!("entry {i}: {key} must be a string"));
            }
        }
        for key in [
            "n",
            "avg_out_degree",
            "k",
            "seed",
            "gain_evaluations",
            "memory_bytes",
        ] {
            if !is_u64(&e[key]) {
                return Err(format!("entry {i}: {key} must be an unsigned integer"));
            }
        }
        for key in ["wall_ms", "cover"] {
            if !is_f64(&e[key]) {
                return Err(format!("entry {i}: {key} must be a float"));
            }
        }
        if large {
            if let Some(v) = e.get("backend") {
                if v.as_str().is_none() {
                    return Err(format!("entry {i}: backend must be a string"));
                }
            }
            if let Some(v) = e.get("speedup_vs_json") {
                if !is_f64(v) {
                    return Err(format!("entry {i}: speedup_vs_json must be a float"));
                }
            }
            for key in ["delta_changes", "rounds_reused", "rounds_repaired"] {
                if let Some(v) = e.get(key) {
                    if !is_u64(v) {
                        return Err(format!("entry {i}: {key} must be an unsigned integer"));
                    }
                }
            }
        }
    }
    Ok(())
}

fn committed(name: &str) -> Value {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(name);
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("parse {name}: {e}"))
}

#[test]
fn committed_snapshots_round_trip_strictly() {
    for (name, check) in [
        ("BENCH_5.json", validate as fn(&Value) -> Result<(), String>),
        ("BENCH_7.json", validate),
        ("BENCH_9.json", validate_large),
    ] {
        let snapshot = committed(name);
        check(&snapshot).unwrap_or_else(|e| panic!("{name}: {e}"));
        // Round trip: serialize and re-validate; serde must not change
        // any field's shape on the way through.
        let again: Value =
            serde_json::from_str(&serde_json::to_string(&snapshot).unwrap()).unwrap();
        check(&again).unwrap_or_else(|e| panic!("{name} after round trip: {e}"));
        assert_eq!(snapshot, again, "{name} round trip changed the value");
    }
}

#[test]
fn snapshot_pr_stamps_identify_the_files() {
    for (name, pr) in [
        ("BENCH_5.json", 5),
        ("BENCH_7.json", 7),
        ("BENCH_9.json", 9),
    ] {
        assert_eq!(
            committed(name).get("pr"),
            Some(&Value::Number(Number::U64(pr))),
            "{name}"
        );
    }
}

/// The committed large-tier snapshot must carry the container cold-load
/// evidence the PR-9 acceptance gate demands: a `load-container` entry per
/// shape, at least 10x faster than its `load-json` twin at n >= 10^5.
#[test]
fn large_snapshot_records_a_tenfold_load_speedup() {
    let snapshot = committed("BENCH_9.json");
    let entries = snapshot
        .get("entries")
        .and_then(Value::as_array)
        .expect("entries");
    let solver = |e: &Value| e.get("solver").and_then(Value::as_str).map(str::to_string);
    let loads: Vec<_> = entries
        .iter()
        .filter(|e| solver(e).as_deref() == Some("load-container"))
        .collect();
    assert!(!loads.is_empty(), "no load-container entries");
    for e in loads {
        let n = e.get("n").and_then(Value::as_u64).expect("n");
        let speedup = e
            .get("speedup_vs_json")
            .and_then(Value::as_f64)
            .expect("speedup_vs_json");
        assert!(n >= 100_000, "large grid shapes start at 10^5, got {n}");
        assert!(
            speedup >= 10.0,
            "container load speedup {speedup:.1}x below the 10x gate at n={n}"
        );
    }
    // The solver tier must actually run over the container-backed graph.
    assert!(
        entries
            .iter()
            .any(|e| solver(e).as_deref() == Some("delta-warm")
                && e.get("backend").and_then(Value::as_str).is_some()),
        "no warm-delta entries with a backend stamp"
    );
}

/// The large-tier extras stay confined to the large profile: the strict
/// validator must reject them, and the large validator must still reject
/// anything outside its fixed optional set.
#[test]
fn large_extras_are_rejected_by_the_strict_profile() {
    let mut snapshot = committed("BENCH_5.json");
    let Value::Object(obj) = &mut snapshot else {
        unreachable!()
    };
    let Some(Value::Array(entries)) = obj.get_mut("entries") else {
        unreachable!()
    };
    let Some(Value::Object(first)) = entries.first_mut() else {
        unreachable!()
    };
    first.insert("backend".into(), Value::String("mmap".into()));
    assert!(validate(&snapshot).unwrap_err().contains("backend"));
    validate_large(&snapshot).expect("backend is a valid large-tier extra");

    let mut snapshot = committed("BENCH_9.json");
    let Value::Object(obj) = &mut snapshot else {
        unreachable!()
    };
    let Some(Value::Array(entries)) = obj.get_mut("entries") else {
        unreachable!()
    };
    let Some(Value::Object(first)) = entries.first_mut() else {
        unreachable!()
    };
    first.insert("p99_ms".into(), Value::Number(Number::F64(1.0)));
    assert!(validate_large(&snapshot).unwrap_err().contains("p99_ms"));
}

#[test]
fn unknown_field_is_rejected() {
    let mut snapshot = committed("BENCH_5.json");
    let Value::Object(obj) = &mut snapshot else {
        unreachable!()
    };
    obj.insert("surprise".into(), Value::Bool(true));
    assert!(validate(&snapshot).unwrap_err().contains("surprise"));

    let mut snapshot = committed("BENCH_5.json");
    let Value::Object(obj) = &mut snapshot else {
        unreachable!()
    };
    let Some(Value::Array(entries)) = obj.get_mut("entries") else {
        unreachable!()
    };
    let Some(Value::Object(first)) = entries.first_mut() else {
        unreachable!()
    };
    first.insert("p99_ms".into(), Value::Number(Number::F64(1.0)));
    assert!(validate(&snapshot).unwrap_err().contains("p99_ms"));
}

#[test]
fn missing_field_is_rejected() {
    let mut snapshot = committed("BENCH_5.json");
    let Value::Object(obj) = &mut snapshot else {
        unreachable!()
    };
    obj.remove("seed");
    assert!(validate(&snapshot).unwrap_err().contains("seed"));

    let mut snapshot = committed("BENCH_5.json");
    let Value::Object(obj) = &mut snapshot else {
        unreachable!()
    };
    let Some(Value::Array(entries)) = obj.get_mut("entries") else {
        unreachable!()
    };
    let Some(Value::Object(first)) = entries.first_mut() else {
        unreachable!()
    };
    first.remove("wall_ms");
    assert!(validate(&snapshot).unwrap_err().contains("wall_ms"));
}

//! Round-trip guard for the committed bench snapshots: `BENCH_5.json`
//! and `BENCH_7.json` must parse against the `pcover-bench-snapshot/1`
//! schema *exactly* — a missing field or an unknown field fails, so the
//! snapshot format cannot drift under the CI perf gate that diffs the
//! two files.

use std::path::PathBuf;

use serde_json::{Number, Value};

const SCHEMA: &str = "pcover-bench-snapshot/1";
const TOP_KEYS: [&str; 4] = ["schema", "pr", "seed", "entries"];
const ENTRY_KEYS: [&str; 10] = [
    "solver",
    "variant",
    "n",
    "avg_out_degree",
    "k",
    "seed",
    "wall_ms",
    "gain_evaluations",
    "memory_bytes",
    "cover",
];

fn is_u64(v: &Value) -> bool {
    matches!(v, Value::Number(Number::U64(_)))
}

fn is_f64(v: &Value) -> bool {
    matches!(v, Value::Number(Number::F64(_)))
}

/// Strict `pcover-bench-snapshot/1` validation: exact key sets at both
/// levels, field types as written by `bench-snapshot`, non-empty entries.
fn validate(snapshot: &Value) -> Result<(), String> {
    let Value::Object(obj) = snapshot else {
        return Err("top level is not an object".into());
    };
    for key in obj.keys() {
        if !TOP_KEYS.contains(&key.as_str()) {
            return Err(format!("unknown top-level field {key:?}"));
        }
    }
    for key in TOP_KEYS {
        if !obj.contains_key(key) {
            return Err(format!("missing top-level field {key:?}"));
        }
    }
    if obj["schema"].as_str() != Some(SCHEMA) {
        return Err(format!("schema is {}, want {SCHEMA:?}", obj["schema"]));
    }
    if !is_u64(&obj["pr"]) || !is_u64(&obj["seed"]) {
        return Err("pr and seed must be unsigned integers".into());
    }
    let entries = obj["entries"].as_array().ok_or("entries is not an array")?;
    if entries.is_empty() {
        return Err("entries is empty".into());
    }
    for (i, entry) in entries.iter().enumerate() {
        let Value::Object(e) = entry else {
            return Err(format!("entry {i} is not an object"));
        };
        for key in e.keys() {
            if !ENTRY_KEYS.contains(&key.as_str()) {
                return Err(format!("entry {i}: unknown field {key:?}"));
            }
        }
        for key in ENTRY_KEYS {
            if !e.contains_key(key) {
                return Err(format!("entry {i}: missing field {key:?}"));
            }
        }
        for key in ["solver", "variant"] {
            if e[key].as_str().is_none() {
                return Err(format!("entry {i}: {key} must be a string"));
            }
        }
        for key in [
            "n",
            "avg_out_degree",
            "k",
            "seed",
            "gain_evaluations",
            "memory_bytes",
        ] {
            if !is_u64(&e[key]) {
                return Err(format!("entry {i}: {key} must be an unsigned integer"));
            }
        }
        for key in ["wall_ms", "cover"] {
            if !is_f64(&e[key]) {
                return Err(format!("entry {i}: {key} must be a float"));
            }
        }
    }
    Ok(())
}

fn committed(name: &str) -> Value {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(name);
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("parse {name}: {e}"))
}

#[test]
fn committed_snapshots_round_trip_strictly() {
    for name in ["BENCH_5.json", "BENCH_7.json"] {
        let snapshot = committed(name);
        validate(&snapshot).unwrap_or_else(|e| panic!("{name}: {e}"));
        // Round trip: serialize and re-validate; serde must not change
        // any field's shape on the way through.
        let again: Value =
            serde_json::from_str(&serde_json::to_string(&snapshot).unwrap()).unwrap();
        validate(&again).unwrap_or_else(|e| panic!("{name} after round trip: {e}"));
        assert_eq!(snapshot, again, "{name} round trip changed the value");
    }
}

#[test]
fn snapshot_pr_stamps_identify_the_files() {
    assert_eq!(
        committed("BENCH_5.json").get("pr"),
        Some(&Value::Number(Number::U64(5)))
    );
    assert_eq!(
        committed("BENCH_7.json").get("pr"),
        Some(&Value::Number(Number::U64(7)))
    );
}

#[test]
fn unknown_field_is_rejected() {
    let mut snapshot = committed("BENCH_5.json");
    let Value::Object(obj) = &mut snapshot else {
        unreachable!()
    };
    obj.insert("surprise".into(), Value::Bool(true));
    assert!(validate(&snapshot).unwrap_err().contains("surprise"));

    let mut snapshot = committed("BENCH_5.json");
    let Value::Object(obj) = &mut snapshot else {
        unreachable!()
    };
    let Some(Value::Array(entries)) = obj.get_mut("entries") else {
        unreachable!()
    };
    let Some(Value::Object(first)) = entries.first_mut() else {
        unreachable!()
    };
    first.insert("p99_ms".into(), Value::Number(Number::F64(1.0)));
    assert!(validate(&snapshot).unwrap_err().contains("p99_ms"));
}

#[test]
fn missing_field_is_rejected() {
    let mut snapshot = committed("BENCH_5.json");
    let Value::Object(obj) = &mut snapshot else {
        unreachable!()
    };
    obj.remove("seed");
    assert!(validate(&snapshot).unwrap_err().contains("seed"));

    let mut snapshot = committed("BENCH_5.json");
    let Value::Object(obj) = &mut snapshot else {
        unreachable!()
    };
    let Some(Value::Array(entries)) = obj.get_mut("entries") else {
        unreachable!()
    };
    let Some(Value::Object(first)) = entries.first_mut() else {
        unreachable!()
    };
    first.remove("wall_ms");
    assert!(validate(&snapshot).unwrap_err().contains("wall_ms"));
}

//! Round-trip guard for the committed serving benchmark: `BENCH_SERVE_10.json`
//! must parse against the `pcover-bench-serve/1` schema *exactly* — a
//! missing field or an unknown field fails, so the loadgen snapshot format
//! cannot drift under the CI job that regenerates and diffs it.

use std::path::PathBuf;

use serde_json::{Number, Value};

const SCHEMA: &str = "pcover-bench-serve/1";
const TOP_KEYS: [&str; 13] = [
    "schema",
    "pr",
    "seed",
    "profile",
    "connections",
    "requests",
    "mix",
    "zipf_s",
    "k_max",
    "deltas",
    "phases",
    "speedup",
    "coalesced_hits",
];
const PHASE_KEYS: [&str; 8] = [
    "mode",
    "requests",
    "errors",
    "wall_ms",
    "throughput_rps",
    "p50_ms",
    "p99_ms",
    "p999_ms",
];

fn is_u64(v: &Value) -> bool {
    matches!(v, Value::Number(Number::U64(_)))
}

fn is_f64(v: &Value) -> bool {
    matches!(v, Value::Number(Number::F64(_)))
}

/// Strict `pcover-bench-serve/1` validation: exact key sets at both
/// levels, field types as written by `pcover loadgen`, exactly one
/// keep-alive phase and one close phase, in that order.
fn validate(snapshot: &Value) -> Result<(), String> {
    let Value::Object(obj) = snapshot else {
        return Err("top level is not an object".into());
    };
    for key in obj.keys() {
        if !TOP_KEYS.contains(&key.as_str()) {
            return Err(format!("unknown top-level field {key:?}"));
        }
    }
    for key in TOP_KEYS {
        if !obj.contains_key(key) {
            return Err(format!("missing top-level field {key:?}"));
        }
    }
    if obj["schema"].as_str() != Some(SCHEMA) {
        return Err(format!("schema is {}, want {SCHEMA:?}", obj["schema"]));
    }
    for key in ["profile", "mix"] {
        if obj[key].as_str().is_none() {
            return Err(format!("{key} must be a string"));
        }
    }
    for key in [
        "pr",
        "seed",
        "connections",
        "requests",
        "k_max",
        "deltas",
        "coalesced_hits",
    ] {
        if !is_u64(&obj[key]) {
            return Err(format!("{key} must be an unsigned integer"));
        }
    }
    for key in ["zipf_s", "speedup"] {
        if !is_f64(&obj[key]) {
            return Err(format!("{key} must be a float"));
        }
    }
    let phases = obj["phases"].as_array().ok_or("phases is not an array")?;
    let modes: Vec<_> = phases
        .iter()
        .map(|p| p.get("mode").and_then(Value::as_str).unwrap_or(""))
        .collect();
    if modes != ["keepalive", "close"] {
        return Err(format!("phases must be [keepalive, close], got {modes:?}"));
    }
    for (i, phase) in phases.iter().enumerate() {
        let Value::Object(p) = phase else {
            return Err(format!("phase {i} is not an object"));
        };
        for key in p.keys() {
            if !PHASE_KEYS.contains(&key.as_str()) {
                return Err(format!("phase {i}: unknown field {key:?}"));
            }
        }
        for key in PHASE_KEYS {
            if !p.contains_key(key) {
                return Err(format!("phase {i}: missing field {key:?}"));
            }
        }
        for key in ["requests", "errors"] {
            if !is_u64(&p[key]) {
                return Err(format!("phase {i}: {key} must be an unsigned integer"));
            }
        }
        for key in ["wall_ms", "throughput_rps", "p50_ms", "p99_ms", "p999_ms"] {
            if !is_f64(&p[key]) {
                return Err(format!("phase {i}: {key} must be a float"));
            }
        }
    }
    Ok(())
}

fn committed() -> Value {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_SERVE_10.json");
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("parse BENCH_SERVE_10.json: {e}"))
}

#[test]
fn committed_serve_snapshot_round_trips_strictly() {
    let snapshot = committed();
    validate(&snapshot).unwrap_or_else(|e| panic!("BENCH_SERVE_10.json: {e}"));
    // Round trip: serialize and re-validate; serde must not change any
    // field's shape on the way through.
    let again: Value = serde_json::from_str(&serde_json::to_string(&snapshot).unwrap()).unwrap();
    validate(&again).unwrap_or_else(|e| panic!("after round trip: {e}"));
    assert_eq!(snapshot, again, "round trip changed the value");
}

/// The committed snapshot must carry the PR-10 acceptance evidence: the
/// default blended mix served error-free in both phases, with keep-alive at
/// least 2x the connection-per-request throughput and a resolvable tail.
#[test]
fn serve_snapshot_proves_the_keep_alive_gate() {
    let snapshot = committed();
    assert_eq!(snapshot.get("pr"), Some(&Value::Number(Number::U64(10))));
    let speedup = snapshot
        .get("speedup")
        .and_then(Value::as_f64)
        .expect("speedup");
    assert!(
        speedup >= 2.0,
        "keep-alive speedup {speedup:.2}x below the 2x gate"
    );
    let phases = snapshot
        .get("phases")
        .and_then(Value::as_array)
        .expect("phases");
    for phase in phases {
        let mode = phase.get("mode").and_then(Value::as_str).unwrap();
        assert_eq!(
            phase.get("errors").and_then(Value::as_u64),
            Some(0),
            "{mode}: request errors in the committed run"
        );
        // The latency ladder must be monotone and resolved past p99 —
        // p999 only exists because the histograms carry enough buckets.
        let at = |key: &str| phase.get(key).and_then(Value::as_f64).unwrap();
        assert!(
            at("p50_ms") <= at("p99_ms") && at("p99_ms") <= at("p999_ms"),
            "{mode}: percentile ladder not monotone"
        );
        assert!(at("p999_ms") > 0.0, "{mode}: p999 unresolved");
    }
}

#[test]
fn unknown_field_is_rejected() {
    let mut snapshot = committed();
    let Value::Object(obj) = &mut snapshot else {
        unreachable!()
    };
    obj.insert("surprise".into(), Value::Bool(true));
    assert!(validate(&snapshot).unwrap_err().contains("surprise"));

    let mut snapshot = committed();
    let Value::Object(obj) = &mut snapshot else {
        unreachable!()
    };
    let Some(Value::Array(phases)) = obj.get_mut("phases") else {
        unreachable!()
    };
    let Some(Value::Object(first)) = phases.first_mut() else {
        unreachable!()
    };
    first.insert("p9999_ms".into(), Value::Number(Number::F64(1.0)));
    assert!(validate(&snapshot).unwrap_err().contains("p9999_ms"));
}

#[test]
fn missing_field_is_rejected() {
    let mut snapshot = committed();
    let Value::Object(obj) = &mut snapshot else {
        unreachable!()
    };
    obj.remove("coalesced_hits");
    assert!(validate(&snapshot).unwrap_err().contains("coalesced_hits"));

    let mut snapshot = committed();
    let Value::Object(obj) = &mut snapshot else {
        unreachable!()
    };
    let Some(Value::Array(phases)) = obj.get_mut("phases") else {
        unreachable!()
    };
    let Some(Value::Object(first)) = phases.first_mut() else {
        unreachable!()
    };
    first.remove("p999_ms");
    assert!(validate(&snapshot).unwrap_err().contains("p999_ms"));
}

#[test]
fn phase_order_is_enforced() {
    let mut snapshot = committed();
    let Value::Object(obj) = &mut snapshot else {
        unreachable!()
    };
    let Some(Value::Array(phases)) = obj.get_mut("phases") else {
        unreachable!()
    };
    phases.reverse();
    assert!(validate(&snapshot)
        .unwrap_err()
        .contains("phases must be [keepalive, close]"));
}

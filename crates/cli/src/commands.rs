//! Subcommand implementations.
//!
//! Every command returns its report as a `String` so the binary stays a
//! thin printer and tests can assert on outputs directly.

use std::fmt::Write as _;
use std::path::Path;

use pcover_adapt::diagnostics::{diagnose, DiagnosticThresholds};
use pcover_adapt::{adapt, AdaptOptions};
use pcover_clickstream::{io as cs_io, Clickstream};
use pcover_core::{
    minimize, Independent, Normalized, Observer, ProgressObserver, Registry, RoundStats, SolveCtx,
    SolveReport, SolverConfig, SolverSpec, TraceObserver, Variant,
};
use pcover_datagen::profiles::{DatasetProfile, Scale};
use pcover_datagen::sessions::generate_clickstream;
use pcover_graph::io::{json as graph_json, LoadOptions};
use pcover_graph::{GraphStats, ItemId, PreferenceGraph};

use crate::args::Args;
use crate::CliError;

/// Dispatches a parsed command line against the built-in solver registry.
pub fn run(args: &Args) -> Result<String, CliError> {
    run_with_registry(args, &Registry::builtin())
}

/// Dispatches with an explicit solver [`Registry`], so embedders (and
/// tests) can register additional solvers and have them reachable from
/// `solve --algorithm`, help text, and error suggestions without touching
/// this crate.
pub fn run_with_registry(args: &Args, registry: &Registry) -> Result<String, CliError> {
    match args.command.as_str() {
        "generate" => generate(args),
        "diagnose" => diagnose_cmd(args),
        "adapt" => adapt_cmd(args),
        "stats" => stats_cmd(args),
        "solve" => solve_cmd(args, registry),
        "minimize" => minimize_cmd(args),
        "repair" => repair_cmd(args),
        "export-dot" => export_dot_cmd(args),
        "closure" => closure_cmd(args),
        "delta" => delta_cmd(args),
        "serve" => serve_cmd(args),
        "loadgen" => loadgen_cmd(args),
        "convert" => convert_cmd(args),
        "probe" => probe_cmd(args),
        "gen-graph" => gen_graph_cmd(args),
        "bench-snapshot" => bench_snapshot_cmd(args, registry),
        "help" | "--help" => Ok(help_with(registry)),
        other => Err(CliError(format!(
            "unknown subcommand {other:?}; try `pcover help`"
        ))),
    }
}

/// Usage text template; the `--algorithm` list is spliced in from the
/// registry so help can never drift from the accepted set.
const HELP_TEMPLATE: &str = "\
pcover — inventory reduction via maximal coverage (EDBT 2020)

USAGE: pcover <subcommand> [--option value]...

SUBCOMMANDS
  generate  --profile PE|PF|PM|YC [--scale 0.01] [--seed 42]
            --out sessions.jsonl [--format jsonl|yoochoose]
            Generate a synthetic clickstream from a Table 2 profile.
  diagnose  --input sessions.jsonl
            Report the variant-selection diagnostics (Section 5.2).
  adapt     --input sessions.jsonl --variant independent|normalized
            --out graph.json [--min-support 1]
            Build the preference graph (Data Adaptation Engine).
  stats     --graph graph.json
            Print graph statistics.
  solve     --graph graph.json --k K --variant independent|normalized
            [--algorithm NAME] [--threads N] [--seed S] [--top 10]
            [--out report.json] [--trace trace.json] [--progress]
            Select the k items maximizing cover (Preference Cover Solver).
            Algorithms:
{algorithms}
  minimize  --graph graph.json --threshold 0.8
            --variant independent|normalized
            Smallest retained set reaching the cover threshold.
  repair    --graph graph.json --report old-report.json
            --variant independent|normalized [--max-changes 5]
            Repair a previous solution against an updated graph with
            bounded churn (incremental maintenance).
  export-dot --graph graph.json --out graph.dot
            [--report report.json] [--min-weight 0.0]
            Render the graph (and optionally a retained set) as Graphviz.
  closure   --graph browse.json --out closed.json
            [--depth 3] [--min-weight 1e-6] [--combine independent|normalized]
            Transitively close a one-step browse graph into a preference
            graph (Section 2's modeling step).
  delta     --graph graph.json --changes delta.json --out new-graph.json
            Apply a JSON batch of demand/edge/delisting changes.
  convert   <input> <output> [--to container|json]
            [--variant independent|normalized|unspecified]
            Re-encode a graph between the JSON interchange format and the
            .pcov binary container (input format sniffed from its bytes);
            --variant stamps advisory metadata into the container header.
  probe     <file> [--verify]
            Print a container's header metadata; --verify additionally
            checksums every section and re-validates the CSR invariants.
  gen-graph --nodes N --out graph.pcov [--degree 4] [--seed 42]
            [--normalized] [--container]
            Generate a seeded synthetic graph straight to disk; .pcov (or
            --container) streams without materializing the graph.
  bench-snapshot [--out BENCH_5.json] [--grid default|small|large] [--seed 42]
                 [--pr 5] [--repeats 1] [--warm] [--smoke]
            Run the fixed solver × variant × (n, D, k) perf grid on seeded
            synthetic graphs and write a machine-readable snapshot (schema
            pcover-bench-snapshot/1). Fails if the delta solver evaluates
            at least as many gains as plain greedy on any n >= 100 point.
            --warm additionally applies a seeded <=1% edge delta per shape
            and records warm-start repair vs cold post-delta re-solve as
            delta-cold / delta-warm entries; fails unless the warm solve is
            bit-identical and (at n >= 1000) evaluates strictly fewer gains.
            --grid large is the container tier (n = 10^5 and 10^6, k = 50;
            --smoke drops the 10^6 shape): streams each graph to a .pcov
            container, gates container cold-load at >= 10x faster than the
            JSON parse, and times greedy/lazy/delta + warm delta repair
            over the mapped CSR, checked bit-identical to in-memory solves.
  serve     --graph graph.json [--threads 8] [--port 7878] [--host 127.0.0.1]
            [--queue 64] [--cache 128] [--deadline-ms 0]
            Run the resident query service: GET /solve, /cover, /minimize,
            /healthz, /metrics; POST /admin/delta hot-swaps the graph and
            POST /admin/shutdown drains and exits. Requests beyond the
            queue bound are shed with 503; --deadline-ms > 0 cancels
            overrunning solves (504). Connections are persistent
            (HTTP/1.1 keep-alive) and identical concurrent solves
            coalesce into one run.
  loadgen   [--addr HOST:PORT] [--nodes 20000] [--degree 8] [--seed 42]
            [--connections 8] [--requests 4000] [--k-max 64] [--zipf 1.0]
            [--mix solve=6,cover=3,minimize=1] [--deltas 0] [--pr 10]
            [--out BENCH_SERVE_10.json] [--min-speedup 2.0]
            [--p999-budget-ms MS] [--smoke]
            Replay a seeded zipfian request mix twice — keep-alive vs one
            connection per request — and write a pcover-bench-serve/1
            snapshot with throughput and exact p50/p99/p999 per phase.
            Self-hosts a synthetic-graph server unless --addr points at a
            running one; --deltas interleaves admin mutations. Fails
            unless keep-alive is >= --min-speedup x faster with zero
            errors (--smoke: 400 requests, 1.5x, 250 ms p999 budget).
";

/// Usage text for the built-in registry.
pub fn help() -> String {
    help_with(&Registry::builtin())
}

/// Usage text with the `--algorithm` list derived from `registry`.
pub fn help_with(registry: &Registry) -> String {
    let mut algorithms = String::new();
    for spec in registry.specs() {
        let _ = writeln!(
            algorithms,
            "              {:<13} {}",
            spec.name, spec.description
        );
    }
    HELP_TEMPLATE.replace("{algorithms}\n", &algorithms)
}

fn load_clickstream(path: &str) -> Result<Clickstream, CliError> {
    cs_io::read_jsonl(path).map_err(CliError::from_display)
}

/// Opens a graph file on any `--graph` option: `.pcov` containers load
/// zero-copy (mmap where supported, buffered pread otherwise), everything
/// else parses as JSON. The format is sniffed from the file's magic, not
/// its name.
fn load_graph(path: &str) -> Result<PreferenceGraph, CliError> {
    pcover_store::read_graph_auto(Path::new(path), pcover_store::OpenMode::Auto)
        .map(|(g, _)| g)
        .map_err(CliError::from_display)
}

fn parse_variant(args: &Args) -> Result<Variant, CliError> {
    let raw = args.required("variant")?;
    Variant::parse(raw).ok_or_else(|| {
        CliError(format!(
            "unknown variant {raw:?}; use independent or normalized"
        ))
    })
}

fn generate(args: &Args) -> Result<String, CliError> {
    let profile_raw = args.required("profile")?;
    let profile = DatasetProfile::parse(profile_raw).ok_or_else(|| {
        CliError(format!(
            "unknown profile {profile_raw:?}; use PE, PF, PM or YC"
        ))
    })?;
    let scale = match args.optional("scale") {
        None => Scale::Fraction(0.01),
        Some("full") => Scale::Full,
        Some(raw) => Scale::Fraction(raw.parse().map_err(|_| {
            CliError(format!(
                "cannot parse --scale value {raw:?} (number or `full`)"
            ))
        })?),
    };
    let seed: u64 = args.parse_or("seed", 42)?;
    let out = args.required("out")?;
    let format = args.optional("format").unwrap_or("jsonl");

    let (catalog_cfg, session_cfg) = profile.configs(scale, seed);
    let (_, cs) = generate_clickstream(&catalog_cfg, &session_cfg);
    match format {
        "jsonl" => cs_io::write_jsonl(&cs, out).map_err(CliError::from_display)?,
        "yoochoose" => {
            let base = Path::new(out);
            let clicks = base.with_extension("clicks.dat");
            let buys = base.with_extension("buys.dat");
            cs_io::write_yoochoose(&cs, &clicks, &buys).map_err(CliError::from_display)?;
        }
        other => return Err(CliError(format!("unknown format {other:?}"))),
    }
    let stats = cs.stats();
    Ok(format!(
        "generated {} sessions over {} items (profile {}, seed {seed}) -> {out}\n\
         at-most-one-alternative fraction: {:.3}",
        stats.sessions,
        stats.items,
        profile.name(),
        stats.at_most_one_alternative_fraction,
    ))
}

fn diagnose_cmd(args: &Args) -> Result<String, CliError> {
    let cs = load_clickstream(args.required("input")?)?;
    let d = diagnose(&cs, &DiagnosticThresholds::default());
    let stats = cs.stats();
    let mut out = String::new();
    let _ = writeln!(out, "sessions:                    {}", stats.sessions);
    let _ = writeln!(out, "items:                       {}", stats.items);
    let _ = writeln!(
        out,
        "<=1-alternative fraction:    {:.4} (Normalized rule needs >= 0.90)",
        d.single_alt_fraction
    );
    match d.weighted_mean_nmi {
        Some(nmi) => {
            let _ = writeln!(
                out,
                "weighted mean pairwise NMI:  {nmi:.4} (Independent rule needs < 0.10)"
            );
        }
        None => {
            let _ = writeln!(
                out,
                "weighted mean pairwise NMI:  n/a (no multi-alternative items)"
            );
        }
    }
    let _ = writeln!(out, "recommended variant:         {:?}", d.recommendation);
    Ok(out)
}

fn adapt_cmd(args: &Args) -> Result<String, CliError> {
    // Validate cheap arguments before touching the filesystem.
    let variant = parse_variant(args)?;
    let min_support: u64 = args.parse_or("min-support", 1)?;
    let out = args.required("out")?;
    let cs = load_clickstream(args.required("input")?)?;

    let adapted = adapt(
        &cs,
        &AdaptOptions {
            variant,
            label_nodes: true,
            min_edge_support: min_support,
        },
    )
    .map_err(CliError::from_display)?;
    graph_json::write_json(&adapted.graph, out).map_err(CliError::from_display)?;
    let r = &adapted.report;
    Ok(format!(
        "adapted {} sessions -> graph with {} items, {} edges ({} never purchased, {} edges dropped by support) -> {out}",
        r.sessions, r.items, r.edges, r.never_purchased_items, r.edges_dropped_by_support
    ))
}

fn stats_cmd(args: &Args) -> Result<String, CliError> {
    let g = load_graph(args.required("graph")?)?;
    let s = GraphStats::compute(&g);
    let mut out = String::new();
    let _ = writeln!(out, "nodes:               {}", s.nodes);
    let _ = writeln!(out, "edges:               {}", s.edges);
    let _ = writeln!(out, "avg out-degree:      {:.3}", s.avg_out_degree);
    let _ = writeln!(out, "max in-degree (D):   {}", s.max_in_degree);
    let _ = writeln!(out, "isolated nodes:      {}", s.isolated_nodes);
    let _ = writeln!(out, "node weight sum:     {:.6}", s.node_weight_sum);
    let _ = writeln!(out, "max node weight:     {:.6}", s.max_node_weight);
    let _ = writeln!(out, "avg edge weight:     {:.4}", s.avg_edge_weight);
    let _ = writeln!(out, "normalized fraction: {:.4}", s.normalized_fraction);
    let _ = writeln!(
        out,
        "components:          {} (largest: {})",
        s.components, s.largest_component
    );
    Ok(out)
}

/// Forwards observer events to two observers (e.g. trace file + progress).
struct Tee<'a>(&'a mut dyn Observer, &'a mut dyn Observer);

impl Observer for Tee<'_> {
    fn on_select(&mut self, iter: usize, item: ItemId, gain: f64, cover: f64) {
        self.0.on_select(iter, item, gain, cover);
        self.1.on_select(iter, item, gain, cover);
    }

    fn on_round_stats(&mut self, stats: &RoundStats) {
        self.0.on_round_stats(stats);
        self.1.on_round_stats(stats);
    }

    fn cancelled(&mut self) -> bool {
        self.0.cancelled() || self.1.cancelled()
    }
}

/// Runs a registry solver with the observers requested on the command line:
/// `--trace PATH` records the per-iteration event stream to a JSON file and
/// `--progress` streams selections to stderr; both may be active at once.
fn run_solver(
    spec: &SolverSpec,
    variant: Variant,
    g: &PreferenceGraph,
    k: usize,
    config: SolverConfig,
    trace_path: Option<&str>,
    progress: bool,
) -> Result<SolveReport, CliError> {
    let mut trace = trace_path.map(|_| TraceObserver::new());
    let report = match (trace.as_mut(), progress) {
        (None, false) => spec.solve(variant, g, k, &mut SolveCtx::new(config)),
        (Some(t), false) => spec.solve(variant, g, k, &mut SolveCtx::with_observer(config, t)),
        (None, true) => {
            let mut p = ProgressObserver::new(std::io::stderr());
            spec.solve(variant, g, k, &mut SolveCtx::with_observer(config, &mut p))
        }
        (Some(t), true) => {
            let mut p = ProgressObserver::new(std::io::stderr());
            let mut tee = Tee(t, &mut p);
            spec.solve(
                variant,
                g,
                k,
                &mut SolveCtx::with_observer(config, &mut tee),
            )
        }
    }
    .map_err(CliError::from_display)?;
    if let (Some(path), Some(t)) = (trace_path, trace.as_ref()) {
        let json = serde_json::to_string_pretty(t).map_err(CliError::from_display)?;
        std::fs::write(path, json).map_err(CliError::from_display)?;
    }
    Ok(report)
}

fn repair_cmd(args: &Args) -> Result<String, CliError> {
    let variant = parse_variant(args)?;
    let max_changes: usize = args.parse_or("max-changes", 5)?;
    let g = load_graph(args.required("graph")?)?;
    let old: SolveReport = serde_json::from_str(
        &std::fs::read_to_string(args.required("report")?).map_err(CliError::from_display)?,
    )
    .map_err(CliError::from_display)?;

    let result = match variant {
        Variant::Independent => {
            pcover_core::extensions::incremental::repair::<Independent>(&g, &old.order, max_changes)
        }
        Variant::Normalized => {
            pcover_core::extensions::incremental::repair::<Normalized>(&g, &old.order, max_changes)
        }
    }
    .map_err(CliError::from_display)?;

    Ok(format!(
        "repaired solution of {} items: stale cover {:.4} -> {:.4} with {} swaps\n\
         evicted: {:?}\nadded:   {:?}\n",
        old.order.len(),
        result.stale_cover,
        result.report.cover,
        result.churn(),
        result.evicted.iter().map(|v| v.raw()).collect::<Vec<_>>(),
        result.added.iter().map(|v| v.raw()).collect::<Vec<_>>(),
    ))
}

fn closure_cmd(args: &Args) -> Result<String, CliError> {
    let out = args.required("out")?;
    let depth: usize = args.parse_or("depth", 3)?;
    let min_weight: f64 = args.parse_or("min-weight", 1e-6)?;
    let combine = match args.optional("combine").unwrap_or("independent") {
        "independent" => pcover_graph::transform::PathCombination::Independent,
        "normalized" => pcover_graph::transform::PathCombination::NormalizedClamped,
        other => return Err(CliError(format!("unknown combine rule {other:?}"))),
    };
    let g = load_graph(args.required("graph")?)?;
    let closed = pcover_graph::transform::transitive_closure(&g, depth, min_weight, combine)
        .map_err(CliError::from_display)?;
    graph_json::write_json(&closed, out).map_err(CliError::from_display)?;
    Ok(format!(
        "closed graph to depth {depth}: {} -> {} edges -> {out}\n",
        g.edge_count(),
        closed.edge_count()
    ))
}

fn delta_cmd(args: &Args) -> Result<String, CliError> {
    let out = args.required("out")?;
    let g = load_graph(args.required("graph")?)?;
    let delta: pcover_graph::delta::GraphDelta = serde_json::from_str(
        &std::fs::read_to_string(args.required("changes")?).map_err(CliError::from_display)?,
    )
    .map_err(CliError::from_display)?;
    let updated = pcover_graph::delta::apply(&g, &delta).map_err(CliError::from_display)?;
    graph_json::write_json(&updated, out).map_err(CliError::from_display)?;
    Ok(format!(
        "applied {} changes: {} nodes / {} edges -> {} nodes / {} edges -> {out}\n",
        delta.len(),
        g.node_count(),
        g.edge_count(),
        updated.node_count(),
        updated.edge_count()
    ))
}

fn serve_cmd(args: &Args) -> Result<String, CliError> {
    let graph_path = args.required("graph")?;
    let host = args.optional("host").unwrap_or("127.0.0.1");
    let port: u16 = args.parse_or("port", 7878)?;
    let workers: usize = args.parse_or("threads", 8)?;
    let queue_capacity: usize = args.parse_or("queue", 64)?;
    let cache_capacity: usize = args.parse_or("cache", 128)?;
    let deadline_ms: u64 = args.parse_or("deadline-ms", 0)?;
    let config = pcover_serve::ServerConfig {
        addr: format!("{host}:{port}"),
        workers,
        queue_capacity,
        cache_capacity,
        default_deadline: (deadline_ms > 0).then(|| std::time::Duration::from_millis(deadline_ms)),
        ..pcover_serve::ServerConfig::default()
    };
    let (handle, loaded_via) = pcover_serve::Server::start_from_path(Path::new(graph_path), config)
        .map_err(CliError::from_display)?;
    let addr = handle.addr();
    // Announce on stderr immediately — the Ok(..) string only prints once
    // the server has fully drained and exited.
    eprintln!(
        "pcover-serve listening on http://{addr} \
         (graph loaded via {loaded_via}; {workers} workers; \
         POST /admin/shutdown to stop)"
    );
    handle.join();
    Ok(format!("server on {addr} shut down\n"))
}

/// Schema tag written into every `loadgen` snapshot; bump only with a
/// migration note in the README.
const BENCH_SERVE_SCHEMA: &str = "pcover-bench-serve/1";

/// `pcover loadgen`: replay a seeded request mix against a server twice —
/// once over persistent keep-alive connections, once opening a fresh
/// connection per request — and write a `pcover-bench-serve/1` snapshot
/// with throughput and exact p50/p99/p999 latencies per phase. Fails (after
/// writing the snapshot) unless keep-alive clears the `--min-speedup`
/// throughput gate with zero request errors.
fn loadgen_cmd(args: &Args) -> Result<String, CliError> {
    use pcover_datagen::graphgen::{generate_graph, GraphGenConfig};
    use pcover_datagen::sampling::{zipf_weights, AliasTable};
    use pcover_serve::loadgen::{run_phase, LoadClient, PhaseSummary, PlannedRequest};
    use rand::{RngExt, SeedableRng};
    use std::net::ToSocketAddrs;

    let smoke = args.flag("smoke");
    let seed: u64 = args.parse_or("seed", 42)?;
    let pr: u64 = args.parse_or("pr", 10)?;
    let nodes: usize = args.parse_or("nodes", 20_000)?;
    let degree: usize = args.parse_or("degree", 8)?;
    let connections: usize = args.parse_or("connections", 8)?;
    let requests: usize = args.parse_or("requests", if smoke { 400 } else { 4_000 })?;
    let k_max: usize = args.parse_or("k-max", 64)?;
    let zipf_s: f64 = args.parse_or("zipf", 1.0)?;
    let deltas: usize = args.parse_or("deltas", 0)?;
    let mix_raw = args.optional("mix").unwrap_or("solve=6,cover=3,minimize=1");
    let min_speedup: f64 = args.parse_or("min-speedup", if smoke { 1.5 } else { 2.0 })?;
    let p999_budget_ms: f64 =
        args.parse_or("p999-budget-ms", if smoke { 250.0 } else { f64::INFINITY })?;
    let out = args.optional("out").unwrap_or(if smoke {
        "BENCH_SERVE_smoke.json"
    } else {
        "BENCH_SERVE_10.json"
    });
    if connections == 0 || requests == 0 || k_max == 0 {
        return Err(CliError(
            "--connections, --requests and --k-max must be at least 1".into(),
        ));
    }

    // Endpoint mix, e.g. "solve=6,cover=3,minimize=1".
    let mut mix: Vec<(&str, u64)> = Vec::new();
    for part in mix_raw.split(',') {
        let (name, weight) = part.split_once('=').ok_or_else(|| {
            CliError(format!(
                "bad --mix entry {part:?}; use e.g. solve=6,cover=3,minimize=1"
            ))
        })?;
        if !matches!(name, "solve" | "cover" | "minimize") {
            return Err(CliError(format!(
                "unknown --mix endpoint {name:?}; use solve, cover or minimize"
            )));
        }
        let weight: u64 = weight
            .parse()
            .map_err(|_| CliError(format!("bad --mix weight in {part:?}")))?;
        mix.push((name, weight));
    }
    let mix_total: u64 = mix.iter().map(|(_, w)| w).sum();
    if mix_total == 0 {
        return Err(CliError("--mix weights sum to zero".into()));
    }

    // Target: an external server (`--addr`, e.g. the CI smoke job) or a
    // self-hosted one on an ephemeral port over a seeded synthetic graph.
    let (addr, handle, profile) = match args.optional("addr") {
        Some(raw) => {
            let addr = raw
                .to_socket_addrs()
                .map_err(CliError::from_display)?
                .next()
                .ok_or_else(|| CliError(format!("--addr {raw:?} resolves to nothing")))?;
            (addr, None, format!("external:{raw}"))
        }
        None => {
            let g = generate_graph(&GraphGenConfig {
                nodes,
                avg_out_degree: degree,
                normalized: true,
                seed,
                ..GraphGenConfig::default()
            })
            .map_err(CliError::from_display)?;
            let handle = pcover_serve::Server::start(
                g,
                pcover_serve::ServerConfig {
                    addr: "127.0.0.1:0".to_owned(),
                    workers: 8,
                    queue_capacity: 256,
                    cache_capacity: 1024,
                    ..pcover_serve::ServerConfig::default()
                },
            )
            .map_err(CliError::from_display)?;
            let addr = handle.addr();
            (addr, Some(handle), format!("self-hosted:{nodes}x{degree}"))
        }
    };

    // The seeded plan, built once and replayed identically by both phases:
    // zipfian budgets k in 1..=k_max, the endpoint mix above, and (with
    // --deltas) admin mutations interleaved at a fixed stride.
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let k_table = AliasTable::new(&zipf_weights(k_max, zipf_s));
    let thresholds = [0.5, 0.7, 0.8, 0.9];
    let delta_every = match requests.checked_div(deltas) {
        Some(stride) => stride.max(1),
        None => usize::MAX,
    };
    let mut plans: Vec<Vec<PlannedRequest>> = vec![Vec::new(); connections];
    for i in 0..requests {
        let planned = if deltas > 0 && i % delta_every == delta_every - 1 {
            let node = rng.random_range(0..nodes);
            let weight = 0.1 + 0.8 * rng.random::<f64>();
            PlannedRequest::post(
                "/admin/delta".to_owned(),
                format!(
                    r#"{{"changes":[{{"SetNodeWeight":{{"node":{node},"weight":{weight}}}}}]}}"#
                ),
            )
        } else {
            let k = k_table.sample(&mut rng) + 1;
            let mut pick = rng.random_range(0..mix_total);
            let mut endpoint = mix[mix.len() - 1].0;
            for &(name, weight) in &mix {
                if pick < weight {
                    endpoint = name;
                    break;
                }
                pick -= weight;
            }
            match endpoint {
                "solve" => PlannedRequest::get(format!("/solve?k={k}")),
                "cover" => PlannedRequest::get(format!("/cover?k={k}")),
                _ => {
                    let t = thresholds[rng.random_range(0..thresholds.len())];
                    PlannedRequest::get(format!("/minimize?threshold={t}"))
                }
            }
        };
        plans[i % connections].push(planned);
    }

    // Warm-up: touch every distinct read query once so both timed phases
    // measure steady-state serving — the comparison is connection reuse,
    // not who pays the cold solves.
    {
        let mut warm = LoadClient::new(addr, true);
        let mut seen = std::collections::HashSet::new();
        for planned in plans.iter().flatten() {
            if planned.method == "GET" && seen.insert(planned.target.clone()) {
                warm.request(planned).map_err(CliError::from_display)?;
            }
        }
    }

    let keepalive = run_phase(addr, true, &plans);
    let close = run_phase(addr, false, &plans);
    let speedup = if close.throughput_rps > 0.0 {
        keepalive.throughput_rps / close.throughput_rps
    } else {
        0.0
    };

    // Scrape the coalescing counter before tearing the server down.
    let coalesced_hits = {
        let mut probe = LoadClient::new(addr, false);
        let resp = probe.fetch("/metrics").map_err(CliError::from_display)?;
        resp.body
            .lines()
            .find_map(|l| l.strip_prefix("coalesced_hits "))
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(0)
    };
    if let Some(handle) = handle {
        handle.shutdown();
        handle.join();
    }

    fn phase_json(mode: &str, p: &PhaseSummary) -> serde_json::Value {
        serde_json::json!({
            "mode": mode,
            "requests": p.requests,
            "errors": p.errors,
            "wall_ms": p.wall.as_secs_f64() * 1e3,
            "throughput_rps": p.throughput_rps,
            "p50_ms": p.p50_ms,
            "p99_ms": p.p99_ms,
            "p999_ms": p.p999_ms,
        })
    }
    let snapshot = serde_json::json!({
        "schema": BENCH_SERVE_SCHEMA,
        "pr": pr,
        "seed": seed,
        "profile": profile,
        "connections": connections,
        "requests": requests,
        "mix": mix_raw,
        "zipf_s": zipf_s,
        "k_max": k_max,
        "deltas": deltas,
        "phases": serde_json::Value::Array(vec![
            phase_json("keepalive", &keepalive),
            phase_json("close", &close),
        ]),
        "speedup": speedup,
        "coalesced_hits": coalesced_hits,
    });
    let json = serde_json::to_string_pretty(&snapshot).map_err(CliError::from_display)?;
    std::fs::write(out, json + "\n").map_err(CliError::from_display)?;

    let mut violations = Vec::new();
    for (mode, p) in [("keepalive", &keepalive), ("close", &close)] {
        if p.errors > 0 {
            violations.push(format!(
                "{} request(s) failed in the {mode} phase",
                p.errors
            ));
        }
    }
    if speedup < min_speedup {
        violations.push(format!(
            "keep-alive throughput is only {speedup:.2}x connection-per-request \
             (gate: >= {min_speedup:.2}x)"
        ));
    }
    if keepalive.p999_ms > p999_budget_ms {
        violations.push(format!(
            "keep-alive p999 is {:.2} ms, over the {p999_budget_ms:.2} ms budget",
            keepalive.p999_ms
        ));
    }
    if !violations.is_empty() {
        return Err(CliError(format!(
            "serve bench written to {out}, but the serving gates failed:\n  {}",
            violations.join("\n  ")
        )));
    }
    Ok(format!(
        "serve bench: {requests} requests x 2 phases over {connections} connections \
         (seed {seed}, mix {mix_raw}): keep-alive {:.0} rps vs per-request {:.0} rps \
         = {speedup:.2}x; keep-alive p50/p99/p999 {:.3}/{:.3}/{:.3} ms; \
         {coalesced_hits} coalesced -> {out}\n",
        keepalive.throughput_rps,
        close.throughput_rps,
        keepalive.p50_ms,
        keepalive.p99_ms,
        keepalive.p999_ms,
    ))
}

/// `pcover convert <input> <output>`: re-encode a graph between the JSON
/// interchange format and the `.pcov` binary container. The input format
/// is sniffed from its magic bytes; the output format defaults to the
/// container and can be forced with `--to container|json`.
fn convert_cmd(args: &Args) -> Result<String, CliError> {
    let input = args.positional(0, "input")?.to_owned();
    let output = args.positional(1, "output")?.to_owned();
    let to = args.optional("to").unwrap_or("container");
    // Advisory variant metadata stamped into the container header (JSON
    // has no equivalent field, so it must be supplied here).
    let variant = match args.optional("variant").unwrap_or("unspecified") {
        "independent" => pcover_store::VariantHint::Independent,
        "normalized" => pcover_store::VariantHint::Normalized,
        "unspecified" => pcover_store::VariantHint::Unspecified,
        other => {
            return Err(CliError(format!(
                "unknown --variant {other:?}; use independent, normalized or unspecified"
            )))
        }
    };
    let (g, read_via) =
        pcover_store::read_graph_auto(Path::new(&input), pcover_store::OpenMode::Auto)
            .map_err(CliError::from_display)?;
    match to {
        "container" => {
            let options = pcover_store::WriteOptions { variant };
            let summary = pcover_store::write_graph(&g, Path::new(&output), options)
                .map_err(CliError::from_display)?;
            Ok(format!(
                "converted {input} ({read_via}) -> {output}: {} nodes, {} edges, {} bytes\n",
                summary.nodes, summary.edges, summary.bytes
            ))
        }
        "json" => {
            graph_json::write_json(&g, &output).map_err(CliError::from_display)?;
            let bytes = std::fs::metadata(&output)
                .map_err(CliError::from_display)?
                .len();
            Ok(format!(
                "converted {input} ({read_via}) -> {output}: {} nodes, {} edges, {bytes} bytes\n",
                g.node_count(),
                g.edge_count(),
            ))
        }
        other => Err(CliError(format!(
            "unknown --to format {other:?}; use container or json"
        ))),
    }
}

/// `pcover probe <file> [--verify]`: print a container's header metadata
/// without loading the graph; `--verify` additionally checksums every
/// section and re-validates the CSR invariants.
fn probe_cmd(args: &Args) -> Result<String, CliError> {
    let file = args.positional(0, "file")?.to_owned();
    let path = Path::new(&file);
    let info = if args.flag("verify") {
        pcover_store::verify(path).map_err(CliError::from_display)?
    } else {
        pcover_store::probe(path).map_err(CliError::from_display)?
    };
    let mut out = String::new();
    let _ = writeln!(out, "container: {file}");
    let _ = writeln!(out, "  format version: {}", info.version);
    let _ = writeln!(out, "  nodes: {}", info.node_count);
    let _ = writeln!(out, "  edges: {}", info.edge_count);
    let _ = writeln!(out, "  variant hint: {:?}", info.variant);
    let _ = writeln!(
        out,
        "  labels: {}",
        if info.has_labels { "yes" } else { "no" }
    );
    let _ = writeln!(out, "  sections: {}", info.sections.len());
    let _ = writeln!(out, "  file bytes: {}", info.file_len);
    let _ = writeln!(
        out,
        "  mmap: {}",
        if info.mmap_supported {
            "supported"
        } else {
            "unsupported (pread fallback)"
        }
    );
    let _ = writeln!(
        out,
        "  verified: {}",
        if args.flag("verify") {
            "checksums + CSR invariants"
        } else {
            "header only"
        }
    );
    Ok(out)
}

/// `pcover gen-graph`: generate a seeded synthetic graph straight to disk.
/// A `--container` output streams through [`generate_graph_container`]
/// without materializing the graph, so million-node files need tens of MB,
/// not gigabytes; otherwise the graph is built in memory and written JSON.
fn gen_graph_cmd(args: &Args) -> Result<String, CliError> {
    use pcover_datagen::graphgen::{generate_graph, generate_graph_container, GraphGenConfig};

    let out = args.required("out")?.to_owned();
    let cfg = GraphGenConfig {
        nodes: args.required_parse("nodes")?,
        avg_out_degree: args.parse_or("degree", 4)?,
        normalized: args.flag("normalized"),
        seed: args.parse_or("seed", 42)?,
        ..GraphGenConfig::default()
    };
    let container = args.flag("container") || out.ends_with(".pcov");
    if container {
        let summary =
            generate_graph_container(&cfg, Path::new(&out)).map_err(CliError::from_display)?;
        Ok(format!(
            "generated container {out}: {} nodes, {} edges, {} bytes (streamed)\n",
            summary.nodes, summary.edges, summary.bytes
        ))
    } else {
        let g = generate_graph(&cfg).map_err(CliError::from_display)?;
        graph_json::write_json(&g, &out).map_err(CliError::from_display)?;
        Ok(format!(
            "generated JSON graph {out}: {} nodes, {} edges\n",
            g.node_count(),
            g.edge_count(),
        ))
    }
}

/// The solvers every snapshot records. `BENCH_*.json` files are a
/// perf trajectory across PRs, so this list only grows — removing a name
/// would silently drop its series from future snapshots.
const BENCH_SOLVERS: [&str; 5] = ["greedy", "lazy", "parallel", "delta", "delta-parallel"];

/// Schema tag written into every snapshot; bump only with a migration note
/// in the README.
const BENCH_SCHEMA: &str = "pcover-bench-snapshot/1";

fn bench_snapshot_cmd(args: &Args, registry: &Registry) -> Result<String, CliError> {
    use pcover_datagen::graphgen::{generate_graph, GraphGenConfig};

    let out = args.optional("out").unwrap_or("BENCH_5.json");
    let seed: u64 = args.parse_or("seed", 42)?;
    // The PR number the snapshot belongs to, recorded so two committed
    // snapshots (e.g. BENCH_5.json vs BENCH_7.json) identify themselves.
    let pr: u64 = args.parse_or("pr", 5)?;
    // Solve each grid point `repeats` times and record the minimum wall
    // time: the min is the standard robust estimator under scheduler and
    // cache noise. Evaluation counts and covers are deterministic, so
    // only the timing benefits from repetition.
    let repeats: usize = args.parse_or("repeats", 1)?;
    if repeats == 0 {
        return Err(CliError("--repeats must be at least 1".into()));
    }
    // (n, D) graph shapes × budgets k. The small grid exists for CI smoke
    // runs; the default grid is what the committed BENCH_5.json and
    // BENCH_7.json at the repo root record.
    let (shapes, budgets): (&[(usize, usize)], &[usize]) =
        match args.optional("grid").unwrap_or("default") {
            "default" => (
                &[(1_000, 4), (1_000, 8), (10_000, 4), (10_000, 8)],
                &[16, 64],
            ),
            "small" => (&[(200, 4)], &[8, 32]),
            "large" => return bench_large_grid(args, registry),
            other => {
                return Err(CliError(format!(
                    "unknown grid {other:?}; use default, small or large"
                )))
            }
        };

    let mut entries = Vec::new();
    // greedy's evaluation counts per (variant, n, D, k), the baseline the
    // delta check below compares against.
    let mut greedy_evals = std::collections::HashMap::new();
    let mut violations = Vec::new();
    for &(n, d) in shapes {
        // `normalized: true` keeps out-weight sums at most 1, so one graph
        // per shape is valid for both IPC and NPC semantics.
        let g = generate_graph(&GraphGenConfig {
            nodes: n,
            avg_out_degree: d,
            normalized: true,
            seed,
            ..GraphGenConfig::default()
        })
        .map_err(CliError::from_display)?;
        let memory_bytes = g.memory_bytes();
        for &k in budgets {
            for name in BENCH_SOLVERS {
                let spec = *registry
                    .get(name)
                    .ok_or_else(|| CliError(registry.unknown_algorithm_message(name)))?;
                for variant in [Variant::Independent, Variant::Normalized] {
                    let mut ctx = SolveCtx::new(SolverConfig::default());
                    let mut report = spec
                        .solve(variant, &g, k, &mut ctx)
                        .map_err(CliError::from_display)?;
                    for _ in 1..repeats {
                        let mut ctx = SolveCtx::new(SolverConfig::default());
                        let again = spec
                            .solve(variant, &g, k, &mut ctx)
                            .map_err(CliError::from_display)?;
                        if again.elapsed < report.elapsed {
                            report.elapsed = again.elapsed;
                        }
                    }
                    let point = (variant.name(), n, d, k);
                    if name == "greedy" {
                        greedy_evals.insert(point, report.gain_evaluations);
                    } else if name == "delta" && n >= 100 {
                        let baseline = greedy_evals.get(&point).copied().unwrap_or(0);
                        if report.gain_evaluations >= baseline {
                            violations.push(format!(
                                "delta did {} gain evaluations vs greedy's {baseline} \
                                 on variant={} n={n} D={d} k={k}",
                                report.gain_evaluations,
                                variant.name(),
                            ));
                        }
                    }
                    entries.push(serde_json::json!({
                        "solver": name,
                        "variant": variant.name(),
                        "n": n,
                        "avg_out_degree": d,
                        "k": k,
                        "seed": seed,
                        "wall_ms": report.elapsed.as_secs_f64() * 1e3,
                        "gain_evaluations": report.gain_evaluations,
                        "memory_bytes": memory_bytes,
                        "cover": report.cover,
                    }));
                }
            }
        }
    }

    // --warm: per shape, apply a seeded edge-only delta touching <=1% of
    // nodes, then record a cold post-delta re-solve ("delta-cold") against
    // a warm-start repair seeded from the pre-delta solution ("delta-warm")
    // in the same schema. The warm gate below is the smoke-test teeth for
    // the PR-8 acceptance criterion.
    if args.flag("warm") {
        use pcover_core::WarmState;
        use pcover_graph::delta::{apply, Change, GraphDelta};

        let spec = *registry
            .get("delta")
            .ok_or_else(|| CliError(registry.unknown_algorithm_message("delta")))?;
        for &(n, d) in shapes {
            let g = generate_graph(&GraphGenConfig {
                nodes: n,
                avg_out_degree: d,
                normalized: true,
                seed,
                ..GraphGenConfig::default()
            })
            .map_err(CliError::from_display)?;
            // Deterministic small delta: stride through (n / 200).max(1)
            // nodes and halve their first out-edge (exact arithmetic, stays
            // in (0, 1], and touches at most 1% of nodes).
            let changes = (n / 200).max(1);
            let stride = (n / changes).max(1);
            let mut delta = GraphDelta::new();
            let mut applied = 0usize;
            for i in 0..changes {
                let v = ItemId::from_index((i * stride) % n);
                if let Some((target, w)) = g.out_edges(v).next() {
                    delta = delta.push(Change::UpsertEdge {
                        source: v,
                        target,
                        weight: w * 0.5,
                    });
                    applied += 1;
                }
            }
            if applied == 0 {
                return Err(CliError(format!(
                    "warm bench delta for n={n} D={d} found no edges to perturb"
                )));
            }
            let touched = delta.touched_nodes(&g);
            let g2 = apply(&g, &delta).map_err(CliError::from_display)?;
            let memory_bytes = g2.memory_bytes();
            for &k in budgets {
                for variant in [Variant::Independent, Variant::Normalized] {
                    let mut ctx = SolveCtx::new(SolverConfig::default());
                    let previous = spec
                        .solve(variant, &g, k, &mut ctx)
                        .map_err(CliError::from_display)?;
                    let warm_state = WarmState::capture_variant(variant, &g, &previous.order);

                    let mut ctx = SolveCtx::new(SolverConfig::default());
                    let mut cold = spec
                        .solve(variant, &g2, k, &mut ctx)
                        .map_err(CliError::from_display)?;
                    let mut ctx = SolveCtx::new(SolverConfig::default());
                    let mut warm = spec
                        .solve_warm(variant, &g2, k, &touched, &warm_state, &mut ctx)
                        .map_err(CliError::from_display)?;
                    for _ in 1..repeats {
                        let mut ctx = SolveCtx::new(SolverConfig::default());
                        let again = spec
                            .solve(variant, &g2, k, &mut ctx)
                            .map_err(CliError::from_display)?;
                        if again.elapsed < cold.elapsed {
                            cold.elapsed = again.elapsed;
                        }
                        let mut ctx = SolveCtx::new(SolverConfig::default());
                        let again = spec
                            .solve_warm(variant, &g2, k, &touched, &warm_state, &mut ctx)
                            .map_err(CliError::from_display)?;
                        if again.report.elapsed < warm.report.elapsed {
                            warm.report.elapsed = again.report.elapsed;
                        }
                    }

                    if !warm.report.bit_identical_to(&cold) {
                        violations.push(format!(
                            "warm re-solve drifted from the cold solve on variant={} \
                             n={n} D={d} k={k}",
                            variant.name(),
                        ));
                    }
                    if n >= 1_000 && warm.report.gain_evaluations >= cold.gain_evaluations {
                        violations.push(format!(
                            "warm re-solve did {} gain evaluations vs cold's {} after a \
                             {applied}-change delta on variant={} n={n} D={d} k={k}",
                            warm.report.gain_evaluations,
                            cold.gain_evaluations,
                            variant.name(),
                        ));
                    }
                    entries.push(serde_json::json!({
                        "solver": "delta-cold",
                        "variant": variant.name(),
                        "n": n,
                        "avg_out_degree": d,
                        "k": k,
                        "seed": seed,
                        "wall_ms": cold.elapsed.as_secs_f64() * 1e3,
                        "gain_evaluations": cold.gain_evaluations,
                        "memory_bytes": memory_bytes,
                        "cover": cold.cover,
                        "delta_changes": applied,
                    }));
                    entries.push(serde_json::json!({
                        "solver": "delta-warm",
                        "variant": variant.name(),
                        "n": n,
                        "avg_out_degree": d,
                        "k": k,
                        "seed": seed,
                        "wall_ms": warm.report.elapsed.as_secs_f64() * 1e3,
                        "gain_evaluations": warm.report.gain_evaluations,
                        "memory_bytes": memory_bytes,
                        "cover": warm.report.cover,
                        "delta_changes": applied,
                        "rounds_reused": warm.rounds_reused,
                        "rounds_repaired": warm.rounds_repaired,
                    }));
                }
            }
        }
    }

    let count = entries.len();
    let snapshot = serde_json::json!({
        "schema": BENCH_SCHEMA,
        "pr": pr,
        "seed": seed,
        "entries": entries,
    });
    let json = serde_json::to_string_pretty(&snapshot).map_err(CliError::from_display)?;
    std::fs::write(out, json + "\n").map_err(CliError::from_display)?;

    if !violations.is_empty() {
        return Err(CliError(format!(
            "bench snapshot written to {out}, but the delta-solver guarantees \
             (fewer evaluations than greedy; warm bit-identical and cheaper \
             than cold) failed:\n  {}",
            violations.join("\n  ")
        )));
    }
    let warm_note = if args.flag("warm") {
        " + warm-vs-cold delta grid"
    } else {
        ""
    };
    Ok(format!(
        "bench snapshot: {count} entries ({} solvers x 2 variants x {} shapes x {} budgets, \
         seed {seed}{warm_note}) -> {out}\n",
        BENCH_SOLVERS.len(),
        shapes.len(),
        budgets.len(),
    ))
}

/// Solvers the large grid times over the container-loaded CSR. A subset of
/// [`BENCH_SOLVERS`]: the thread-pool solvers are covered by the default
/// grid, and at n >= 10^5 the single-thread delta family is what the
/// instant-load story is about.
const BENCH_LARGE_SOLVERS: [&str; 3] = ["greedy", "lazy", "delta"];

/// `--grid large`: the million-node container tier. Per shape it streams a
/// seeded graph straight to a `.pcov` container, writes a JSON twin,
/// records cold-load wall time for both (gated: the container must load at
/// least 10x faster than JSON at n >= 10^5), then times
/// greedy/lazy/delta plus a warm-start delta repair over the mapped CSR —
/// asserting every solve is bit-identical to the same solve on the
/// JSON-loaded in-memory graph.
fn bench_large_grid(args: &Args, registry: &Registry) -> Result<String, CliError> {
    use pcover_core::WarmState;
    use pcover_datagen::graphgen::{generate_graph_container, GraphGenConfig};
    use pcover_graph::delta::{apply, Change, GraphDelta};
    use std::time::Instant;

    let out = args.optional("out").unwrap_or("BENCH_9.json");
    let seed: u64 = args.parse_or("seed", 42)?;
    let pr: u64 = args.parse_or("pr", 9)?;
    let repeats: usize = args.parse_or("repeats", 1)?;
    if repeats == 0 {
        return Err(CliError("--repeats must be at least 1".into()));
    }
    // --smoke drops the million-node shape so CI can run the tier in
    // seconds; the committed BENCH_9.json records the full grid.
    let shapes: &[(usize, usize)] = if args.flag("smoke") {
        &[(100_000, 4)]
    } else {
        &[(100_000, 4), (1_000_000, 4)]
    };
    let budgets: &[usize] = &[50];

    let dir = std::env::temp_dir().join(format!("pcover-bench-large-{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(CliError::from_display)?;

    let mut entries = Vec::new();
    let mut violations = Vec::new();
    for &(n, d) in shapes {
        let cfg = GraphGenConfig {
            nodes: n,
            avg_out_degree: d,
            normalized: true,
            seed,
            ..GraphGenConfig::default()
        };
        let cpath = dir.join(format!("bench-{n}.pcov"));
        let jpath = dir.join(format!("bench-{n}.json"));
        generate_graph_container(&cfg, &cpath).map_err(CliError::from_display)?;
        // The JSON twin is derived from the container so both loads read
        // the exact same graph bits.
        let (owned, _) = pcover_store::read_graph_auto(&cpath, pcover_store::OpenMode::Pread)
            .map_err(CliError::from_display)?;
        graph_json::write_json(&owned, &jpath).map_err(CliError::from_display)?;
        drop(owned);

        // Cold-load timing, min over `repeats`: full parse + validation
        // for JSON vs checksum + (mmap | pread) for the container.
        let mut json_ms = f64::INFINITY;
        let mut reference = None;
        for _ in 0..repeats {
            let t = Instant::now();
            let g = graph_json::read_json(&jpath, &LoadOptions::default())
                .map_err(CliError::from_display)?;
            json_ms = json_ms.min(t.elapsed().as_secs_f64() * 1e3);
            reference = Some(g);
        }
        let reference = reference.expect("repeats >= 1");
        let mut container_ms = f64::INFINITY;
        let mut mapped = None;
        let mut backend = "pread";
        for _ in 0..repeats {
            let t = Instant::now();
            let (g, how) = pcover_store::read_graph_auto(&cpath, pcover_store::OpenMode::Auto)
                .map_err(CliError::from_display)?;
            container_ms = container_ms.min(t.elapsed().as_secs_f64() * 1e3);
            mapped = Some(g);
            backend = how;
        }
        let mapped = mapped.expect("repeats >= 1");
        let speedup = json_ms / container_ms;
        if n >= 100_000 && speedup < 10.0 {
            violations.push(format!(
                "container cold-load was only {speedup:.1}x faster than JSON \
                 ({container_ms:.1} ms vs {json_ms:.1} ms) on n={n} D={d}; need >= 10x"
            ));
        }
        for (solver, wall_ms, load_backend) in [
            ("load-json", json_ms, "serde"),
            ("load-container", container_ms, backend),
        ] {
            let mut entry = serde_json::json!({
                "solver": solver,
                "variant": "n/a",
                "n": n,
                "avg_out_degree": d,
                "k": 0,
                "seed": seed,
                "wall_ms": wall_ms,
                "gain_evaluations": 0,
                "memory_bytes": reference.memory_bytes(),
                "cover": 0.0,
                "backend": load_backend,
            });
            if solver == "load-container" {
                if let serde_json::Value::Object(obj) = &mut entry {
                    obj.insert("speedup_vs_json".into(), serde_json::json!(speedup));
                }
            }
            entries.push(entry);
        }

        // Solver timings over the mapped CSR, each checked bit-identical
        // against the same solve on the JSON-loaded in-memory graph.
        let memory_bytes = mapped.memory_bytes();
        for &k in budgets {
            for name in BENCH_LARGE_SOLVERS {
                let spec = *registry
                    .get(name)
                    .ok_or_else(|| CliError(registry.unknown_algorithm_message(name)))?;
                for variant in [Variant::Independent, Variant::Normalized] {
                    let mut ctx = SolveCtx::new(SolverConfig::default());
                    let mut report = spec
                        .solve(variant, &mapped, k, &mut ctx)
                        .map_err(CliError::from_display)?;
                    for _ in 1..repeats {
                        let mut ctx = SolveCtx::new(SolverConfig::default());
                        let again = spec
                            .solve(variant, &mapped, k, &mut ctx)
                            .map_err(CliError::from_display)?;
                        if again.elapsed < report.elapsed {
                            report.elapsed = again.elapsed;
                        }
                    }
                    let mut ctx = SolveCtx::new(SolverConfig::default());
                    let in_memory = spec
                        .solve(variant, &reference, k, &mut ctx)
                        .map_err(CliError::from_display)?;
                    if !report.bit_identical_to(&in_memory) {
                        violations.push(format!(
                            "{name} on the container-backed graph drifted from the \
                             in-memory solve on variant={} n={n} D={d} k={k}",
                            variant.name(),
                        ));
                    }
                    entries.push(serde_json::json!({
                        "solver": name,
                        "variant": variant.name(),
                        "n": n,
                        "avg_out_degree": d,
                        "k": k,
                        "seed": seed,
                        "wall_ms": report.elapsed.as_secs_f64() * 1e3,
                        "gain_evaluations": report.gain_evaluations,
                        "memory_bytes": memory_bytes,
                        "cover": report.cover,
                        "backend": backend,
                    }));
                }
            }
        }

        // Warm-start delta repair on the mapped graph: same seeded <=1%
        // edge perturbation as the default grid's --warm pass.
        let spec = *registry
            .get("delta")
            .ok_or_else(|| CliError(registry.unknown_algorithm_message("delta")))?;
        let changes = (n / 200).max(1);
        let stride = (n / changes).max(1);
        let mut delta = GraphDelta::new();
        let mut applied = 0usize;
        for i in 0..changes {
            let v = ItemId::from_index((i * stride) % n);
            if let Some((target, w)) = mapped.out_edges(v).next() {
                delta = delta.push(Change::UpsertEdge {
                    source: v,
                    target,
                    weight: w * 0.5,
                });
                applied += 1;
            }
        }
        if applied == 0 {
            return Err(CliError(format!(
                "large-grid warm delta for n={n} D={d} found no edges to perturb"
            )));
        }
        let touched = delta.touched_nodes(&mapped);
        let g2 = apply(&mapped, &delta).map_err(CliError::from_display)?;
        let post_memory_bytes = g2.memory_bytes();
        for &k in budgets {
            for variant in [Variant::Independent, Variant::Normalized] {
                let mut ctx = SolveCtx::new(SolverConfig::default());
                let previous = spec
                    .solve(variant, &mapped, k, &mut ctx)
                    .map_err(CliError::from_display)?;
                let warm_state = WarmState::capture_variant(variant, &mapped, &previous.order);

                let mut ctx = SolveCtx::new(SolverConfig::default());
                let mut cold = spec
                    .solve(variant, &g2, k, &mut ctx)
                    .map_err(CliError::from_display)?;
                let mut ctx = SolveCtx::new(SolverConfig::default());
                let mut warm = spec
                    .solve_warm(variant, &g2, k, &touched, &warm_state, &mut ctx)
                    .map_err(CliError::from_display)?;
                for _ in 1..repeats {
                    let mut ctx = SolveCtx::new(SolverConfig::default());
                    let again = spec
                        .solve(variant, &g2, k, &mut ctx)
                        .map_err(CliError::from_display)?;
                    if again.elapsed < cold.elapsed {
                        cold.elapsed = again.elapsed;
                    }
                    let mut ctx = SolveCtx::new(SolverConfig::default());
                    let again = spec
                        .solve_warm(variant, &g2, k, &touched, &warm_state, &mut ctx)
                        .map_err(CliError::from_display)?;
                    if again.report.elapsed < warm.report.elapsed {
                        warm.report.elapsed = again.report.elapsed;
                    }
                }
                if !warm.report.bit_identical_to(&cold) {
                    violations.push(format!(
                        "warm re-solve drifted from the cold solve on variant={} \
                         n={n} D={d} k={k}",
                        variant.name(),
                    ));
                }
                if warm.report.gain_evaluations >= cold.gain_evaluations {
                    violations.push(format!(
                        "warm re-solve did {} gain evaluations vs cold's {} after a \
                         {applied}-change delta on variant={} n={n} D={d} k={k}",
                        warm.report.gain_evaluations,
                        cold.gain_evaluations,
                        variant.name(),
                    ));
                }
                for (solver, report, extra_rounds) in [
                    ("delta-cold", &cold, None),
                    (
                        "delta-warm",
                        &warm.report,
                        Some((warm.rounds_reused, warm.rounds_repaired)),
                    ),
                ] {
                    let mut entry = serde_json::json!({
                        "solver": solver,
                        "variant": variant.name(),
                        "n": n,
                        "avg_out_degree": d,
                        "k": k,
                        "seed": seed,
                        "wall_ms": report.elapsed.as_secs_f64() * 1e3,
                        "gain_evaluations": report.gain_evaluations,
                        "memory_bytes": post_memory_bytes,
                        "cover": report.cover,
                        "backend": backend,
                        "delta_changes": applied,
                    });
                    if let (Some((reused, repaired)), serde_json::Value::Object(obj)) =
                        (extra_rounds, &mut entry)
                    {
                        obj.insert("rounds_reused".into(), serde_json::json!(reused));
                        obj.insert("rounds_repaired".into(), serde_json::json!(repaired));
                    }
                    entries.push(entry);
                }
            }
        }
        std::fs::remove_file(&cpath).ok();
        std::fs::remove_file(&jpath).ok();
    }
    std::fs::remove_dir(&dir).ok();

    let count = entries.len();
    let snapshot = serde_json::json!({
        "schema": BENCH_SCHEMA,
        "pr": pr,
        "seed": seed,
        "entries": entries,
    });
    let json = serde_json::to_string_pretty(&snapshot).map_err(CliError::from_display)?;
    std::fs::write(out, json + "\n").map_err(CliError::from_display)?;

    if !violations.is_empty() {
        return Err(CliError(format!(
            "bench snapshot written to {out}, but the container-tier guarantees \
             (>= 10x cold-load speedup; mapped solves bit-identical to in-memory; \
             warm repairs bit-identical and cheaper than cold) failed:\n  {}",
            violations.join("\n  ")
        )));
    }
    Ok(format!(
        "bench snapshot: {count} entries (large container grid, {} solvers + loads + \
         warm deltas x {} shapes, seed {seed}) -> {out}\n",
        BENCH_LARGE_SOLVERS.len(),
        shapes.len(),
    ))
}

fn export_dot_cmd(args: &Args) -> Result<String, CliError> {
    let out = args.required("out")?;
    let min_weight: f64 = args.parse_or("min-weight", 0.0)?;
    let g = load_graph(args.required("graph")?)?;
    let retained = match args.optional("report") {
        Some(path) => {
            let report: SolveReport = serde_json::from_str(
                &std::fs::read_to_string(path).map_err(CliError::from_display)?,
            )
            .map_err(CliError::from_display)?;
            report.order
        }
        None => Vec::new(),
    };
    pcover_graph::io::dot::write_dot(
        &g,
        out,
        &pcover_graph::io::dot::DotOptions {
            retained,
            min_edge_weight: min_weight,
            name: None,
        },
    )
    .map_err(CliError::from_display)?;
    Ok(format!(
        "wrote DOT with {} nodes and {} edges (min edge weight {min_weight}) -> {out}\n",
        g.node_count(),
        g.edge_count()
    ))
}

fn solve_cmd(args: &Args, registry: &Registry) -> Result<String, CliError> {
    let g = load_graph(args.required("graph")?)?;
    let k: usize = args.required_parse("k")?;
    let variant = parse_variant(args)?;
    let algorithm = args.optional("algorithm").unwrap_or("lazy");
    let spec = *registry
        .get(algorithm)
        .ok_or_else(|| CliError(registry.unknown_algorithm_message(algorithm)))?;
    let defaults = SolverConfig::default();
    let config = SolverConfig {
        threads: args.parse_or("threads", defaults.threads)?,
        seed: args.parse_or("seed", defaults.seed)?,
        ..defaults
    };
    let top: usize = args.parse_or("top", 10)?;

    let report = run_solver(
        &spec,
        variant,
        &g,
        k,
        config,
        args.optional("trace"),
        args.flag("progress"),
    )?;

    if let Some(out) = args.optional("out") {
        let json = serde_json::to_string_pretty(&report).map_err(CliError::from_display)?;
        std::fs::write(out, json).map_err(CliError::from_display)?;
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} retained {} of {} items, cover {:.4} ({} gain evaluations, {:?})",
        report.algorithm.label(),
        report.k(),
        g.node_count(),
        report.cover,
        report.gain_evaluations,
        report.elapsed,
    );
    let _ = writeln!(out, "first retained items (selection order):");
    for &v in report.order.iter().take(top) {
        let label = g.label(v).unwrap_or("");
        let _ = writeln!(
            out,
            "  {:>8}  {}  weight {:.5}",
            v.raw(),
            if label.is_empty() { "-" } else { label },
            g.node_weight(v),
        );
    }
    Ok(out)
}

fn minimize_cmd(args: &Args) -> Result<String, CliError> {
    let g = load_graph(args.required("graph")?)?;
    let threshold: f64 = args.required_parse("threshold")?;
    let variant = parse_variant(args)?;
    let result = match variant {
        Variant::Independent => minimize::greedy_min_cover::<Independent>(&g, threshold),
        Variant::Normalized => minimize::greedy_min_cover::<Normalized>(&g, threshold),
    }
    .map_err(CliError::from_display)?;
    Ok(format!(
        "threshold {:.3}: smallest greedy set has {} of {} items (cover {:.4})",
        threshold,
        result.set_size(),
        g.node_count(),
        result.report.cover,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;

    fn run_tokens(tokens: &[&str]) -> Result<String, CliError> {
        run(&Args::parse(tokens.iter().map(|s| s.to_string())).unwrap())
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("pcover-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn help_and_unknown_command() {
        let help_text = run_tokens(&["help"]).unwrap();
        assert!(help_text.contains("SUBCOMMANDS"));
        assert!(help_text.contains("serve"), "serve must be documented");
        assert!(help_text.contains("/admin/delta"));
        assert!(help_text.contains("convert"), "convert must be documented");
        assert!(help_text.contains("probe"), "probe must be documented");
        assert!(
            help_text.contains("gen-graph"),
            "gen-graph must be documented"
        );
        assert!(run_tokens(&["frobnicate"]).is_err());
    }

    #[test]
    fn convert_and_probe_round_trip_a_container() {
        let json_in = tmp("convert-in.json");
        let container = tmp("convert-out.pcov");
        let json_back = tmp("convert-back.json");
        let g = pcover_graph::examples::figure1();
        pcover_graph::io::json::write_json(&g, &json_in).unwrap();

        let out = run_tokens(&["convert", &json_in, &container]).unwrap();
        assert!(out.contains("5 nodes"), "{out}");

        let probed = run_tokens(&["probe", &container]).unwrap();
        assert!(probed.contains("nodes: 5"), "{probed}");
        assert!(probed.contains("labels: yes"), "{probed}");
        assert!(probed.contains("header only"), "{probed}");
        let verified = run_tokens(&["probe", &container, "--verify"]).unwrap();
        assert!(
            verified.contains("checksums + CSR invariants"),
            "{verified}"
        );

        // Every --graph option accepts the container directly (sniffed by
        // magic, not extension).
        let stats = run_tokens(&["stats", "--graph", &container]).unwrap();
        assert_eq!(stats, run_tokens(&["stats", "--graph", &json_in]).unwrap());

        let out = run_tokens(&["convert", &container, &json_back, "--to", "json"]).unwrap();
        assert!(out.contains("5 nodes"), "{out}");
        let round = pcover_graph::io::json::read_json(&json_back, &LoadOptions::default()).unwrap();
        assert_eq!(round.node_count(), g.node_count());
        assert_eq!(round.edge_count(), g.edge_count());
    }

    #[test]
    fn convert_and_probe_error_paths() {
        // Unknown target format.
        let json_in = tmp("convert-err.json");
        pcover_graph::io::json::write_json(&pcover_graph::examples::figure1(), &json_in).unwrap();
        let err =
            run_tokens(&["convert", &json_in, &tmp("x.pcov"), "--to", "parquet"]).unwrap_err();
        assert!(err.to_string().contains("parquet"), "{err}");
        // Probing a JSON file is a typed "not a container" error, not a
        // panic or a garbage header dump.
        let err = run_tokens(&["probe", &json_in]).unwrap_err();
        assert!(err.to_string().contains("container"), "{err}");
        // Missing operands name the operand.
        let err = run_tokens(&["probe"]).unwrap_err();
        assert!(err.to_string().contains("<file>"), "{err}");
        let err = run_tokens(&["convert", &json_in]).unwrap_err();
        assert!(err.to_string().contains("<output>"), "{err}");
    }

    #[test]
    fn gen_graph_streamed_container_matches_json_convert() {
        let direct = tmp("gen-direct.pcov");
        let json = tmp("gen-via.json");
        let via = tmp("gen-via.pcov");
        let out = run_tokens(&[
            "gen-graph",
            "--nodes",
            "500",
            "--degree",
            "3",
            "--seed",
            "7",
            "--normalized",
            "--out",
            &direct,
        ])
        .unwrap();
        assert!(out.contains("streamed"), "{out}");
        run_tokens(&[
            "gen-graph",
            "--nodes",
            "500",
            "--degree",
            "3",
            "--seed",
            "7",
            "--normalized",
            "--out",
            &json,
        ])
        .unwrap();
        run_tokens(&["convert", &json, &via, "--variant", "normalized"]).unwrap();
        // The streamed writer, the in-memory writer, and a JSON round trip
        // all land on identical bytes.
        assert_eq!(
            std::fs::read(&direct).unwrap(),
            std::fs::read(&via).unwrap()
        );
    }

    #[test]
    fn serve_requires_a_graph() {
        assert!(run_tokens(&["serve"]).is_err());
        assert!(run_tokens(&["serve", "--graph", "/nonexistent.json"]).is_err());
    }

    #[test]
    fn serve_starts_answers_and_shuts_down() {
        use std::io::{Read as _, Write as _};

        // Build a real graph file, then run `serve` on an ephemeral port in
        // a background thread and drive it over TCP like a client would.
        let graph_path = tmp("serve-graph.json");
        pcover_graph::io::json::write_json(&pcover_graph::examples::figure1(), &graph_path)
            .unwrap();
        let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let port = probe.local_addr().unwrap().port().to_string();
        drop(probe);
        let args: Vec<String> = [
            "serve",
            "--graph",
            &graph_path,
            "--port",
            &port,
            "--threads",
            "2",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let server = std::thread::spawn(move || run(&Args::parse(args).unwrap()).unwrap());

        let addr = format!("127.0.0.1:{port}");
        let send = |target: &str, method: &str| -> String {
            // The server may still be binding; retry briefly.
            let mut last_err = None;
            for _ in 0..100 {
                match std::net::TcpStream::connect(&addr) {
                    Ok(mut s) => {
                        s.write_all(
                            format!(
                                "{method} {target} HTTP/1.1\r\nHost: t\r\n\
                                 Content-Length: 0\r\nConnection: close\r\n\r\n"
                            )
                            .as_bytes(),
                        )
                        .unwrap();
                        let mut out = String::new();
                        s.read_to_string(&mut out).unwrap();
                        return out;
                    }
                    Err(e) => {
                        last_err = Some(e);
                        std::thread::sleep(std::time::Duration::from_millis(20));
                    }
                }
            }
            panic!("server never came up: {last_err:?}");
        };

        let health = send("/healthz", "GET");
        assert!(health.contains("200 OK"), "{health}");
        let solved = send("/solve?k=2", "GET");
        assert!(solved.contains("\"cover\""), "{solved}");
        let bye = send("/admin/shutdown", "POST");
        assert!(bye.contains("shutting down"), "{bye}");
        let summary = server.join().unwrap();
        assert!(summary.contains("shut down"), "{summary}");
    }

    #[test]
    fn full_pipeline_through_files() {
        let sessions = tmp("pipeline.jsonl");
        let graph = tmp("pipeline-graph.json");

        let out = run_tokens(&[
            "generate",
            "--profile",
            "YC",
            "--scale",
            "0.005",
            "--seed",
            "7",
            "--out",
            &sessions,
        ])
        .unwrap();
        assert!(out.contains("generated"), "{out}");

        let out = run_tokens(&["diagnose", "--input", &sessions]).unwrap();
        assert!(out.contains("recommended variant"), "{out}");

        let out = run_tokens(&[
            "adapt",
            "--input",
            &sessions,
            "--variant",
            "independent",
            "--out",
            &graph,
        ])
        .unwrap();
        assert!(out.contains("adapted"), "{out}");

        let out = run_tokens(&["stats", "--graph", &graph]).unwrap();
        assert!(out.contains("nodes:"), "{out}");

        let out = run_tokens(&[
            "solve",
            "--graph",
            &graph,
            "--k",
            "50",
            "--variant",
            "independent",
            "--algorithm",
            "lazy",
        ])
        .unwrap();
        assert!(out.contains("retained 50"), "{out}");

        let out = run_tokens(&[
            "minimize",
            "--graph",
            &graph,
            "--threshold",
            "0.5",
            "--variant",
            "independent",
        ])
        .unwrap();
        assert!(out.contains("smallest greedy set"), "{out}");
    }

    #[test]
    fn solve_writes_report_json() {
        let sessions = tmp("report.jsonl");
        let graph = tmp("report-graph.json");
        let report = tmp("report-out.json");
        run_tokens(&[
            "generate",
            "--profile",
            "YC",
            "--scale",
            "0.003",
            "--out",
            &sessions,
        ])
        .unwrap();
        run_tokens(&[
            "adapt",
            "--input",
            &sessions,
            "--variant",
            "normalized",
            "--out",
            &graph,
        ])
        .unwrap();
        run_tokens(&[
            "solve",
            "--graph",
            &graph,
            "--k",
            "10",
            "--variant",
            "normalized",
            "--out",
            &report,
        ])
        .unwrap();
        let parsed: pcover_core::SolveReport =
            serde_json::from_str(&std::fs::read_to_string(&report).unwrap()).unwrap();
        assert_eq!(parsed.k(), 10);
    }

    #[test]
    fn all_algorithms_run_on_small_graph() {
        let sessions = tmp("algos.jsonl");
        let graph = tmp("algos-graph.json");
        run_tokens(&[
            "generate",
            "--profile",
            "YC",
            "--scale",
            "0.001",
            "--seed",
            "3",
            "--out",
            &sessions,
        ])
        .unwrap();
        run_tokens(&[
            "adapt",
            "--input",
            &sessions,
            "--variant",
            "independent",
            "--out",
            &graph,
        ])
        .unwrap();
        for algo in ["greedy", "lazy", "parallel", "topk-w", "topk-c", "random"] {
            let out = run_tokens(&[
                "solve",
                "--graph",
                &graph,
                "--k",
                "5",
                "--variant",
                "independent",
                "--algorithm",
                algo,
            ])
            .unwrap();
            assert!(out.contains("retained 5"), "algorithm {algo}: {out}");
        }
        assert!(run_tokens(&[
            "solve",
            "--graph",
            &graph,
            "--k",
            "5",
            "--variant",
            "independent",
            "--algorithm",
            "nope",
        ])
        .is_err());
    }

    #[test]
    fn extended_algorithms_run() {
        let sessions = tmp("ext-algos.jsonl");
        let graph = tmp("ext-algos-graph.json");
        run_tokens(&[
            "generate",
            "--profile",
            "YC",
            "--scale",
            "0.001",
            "--seed",
            "4",
            "--out",
            &sessions,
        ])
        .unwrap();
        run_tokens(&[
            "adapt",
            "--input",
            &sessions,
            "--variant",
            "independent",
            "--out",
            &graph,
        ])
        .unwrap();
        for algo in ["stochastic", "sieve", "local-search", "partitioned"] {
            let out = run_tokens(&[
                "solve",
                "--graph",
                &graph,
                "--k",
                "5",
                "--variant",
                "independent",
                "--algorithm",
                algo,
            ])
            .unwrap();
            assert!(out.contains("retained"), "algorithm {algo}: {out}");
        }
    }

    /// Acceptance check for the registry refactor: a solver registered from
    /// outside this crate is reachable from CLI dispatch, help text, and
    /// the unknown-algorithm suggestion with zero edits here.
    #[test]
    fn fictitious_registered_solver_is_reachable_from_dispatch_and_help() {
        use pcover_core::{Algorithm, Solver, SolverCaps};

        let mut registry = Registry::builtin();
        registry.register(SolverSpec::new(
            "fixture-greedy",
            Algorithm::Greedy,
            "test-only fixture solver",
            SolverCaps::default(),
            |v, g, k, ctx| pcover_core::greedy::Greedy.dispatch(v, g, k, ctx),
        ));

        assert!(help_with(&registry).contains("fixture-greedy"));

        let sessions = tmp("fixture.jsonl");
        let graph = tmp("fixture-graph.json");
        run_tokens(&[
            "generate",
            "--profile",
            "YC",
            "--scale",
            "0.001",
            "--seed",
            "5",
            "--out",
            &sessions,
        ])
        .unwrap();
        run_tokens(&[
            "adapt",
            "--input",
            &sessions,
            "--variant",
            "independent",
            "--out",
            &graph,
        ])
        .unwrap();

        let solve = |algo: &str| {
            let tokens = [
                "solve",
                "--graph",
                &graph,
                "--k",
                "5",
                "--variant",
                "independent",
                "--algorithm",
                algo,
            ];
            run_with_registry(
                &Args::parse(tokens.iter().map(|s| s.to_string())).unwrap(),
                &registry,
            )
        };
        let out = solve("fixture-greedy").unwrap();
        assert!(out.contains("retained 5"), "{out}");

        // The unknown-algorithm error suggests every registered name,
        // including the fixture.
        let err = solve("nope").unwrap_err().to_string();
        assert!(err.contains("unknown algorithm"), "{err}");
        assert!(err.contains("fixture-greedy"), "{err}");
        assert!(err.contains("lazy"), "{err}");
    }

    #[test]
    fn solve_trace_flag_writes_observer_json() {
        let sessions = tmp("trace.jsonl");
        let graph = tmp("trace-graph.json");
        let trace = tmp("trace-out.json");
        run_tokens(&[
            "generate",
            "--profile",
            "YC",
            "--scale",
            "0.001",
            "--seed",
            "6",
            "--out",
            &sessions,
        ])
        .unwrap();
        run_tokens(&[
            "adapt",
            "--input",
            &sessions,
            "--variant",
            "independent",
            "--out",
            &graph,
        ])
        .unwrap();
        let out = run_tokens(&[
            "solve",
            "--graph",
            &graph,
            "--k",
            "5",
            "--variant",
            "independent",
            "--algorithm",
            "greedy",
            "--trace",
            &trace,
            "--progress",
        ])
        .unwrap();
        assert!(out.contains("retained 5"), "{out}");
        let parsed: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&trace).unwrap()).unwrap();
        let events = parsed.get("events").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 5);
        assert_eq!(parsed.get("rounds").unwrap().as_array().unwrap().len(), 5);
        let covers: Vec<f64> = events
            .iter()
            .map(|e| e.get("cover").unwrap().as_f64().unwrap())
            .collect();
        for w in covers.windows(2) {
            assert!(w[1] >= w[0], "trace covers must be non-decreasing");
        }
    }

    #[test]
    fn repair_and_export_dot() {
        let sessions = tmp("repair.jsonl");
        let graph = tmp("repair-graph.json");
        let report = tmp("repair-report.json");
        let dot = tmp("repair.dot");
        run_tokens(&[
            "generate",
            "--profile",
            "YC",
            "--scale",
            "0.002",
            "--seed",
            "8",
            "--out",
            &sessions,
        ])
        .unwrap();
        run_tokens(&[
            "adapt",
            "--input",
            &sessions,
            "--variant",
            "independent",
            "--out",
            &graph,
        ])
        .unwrap();
        run_tokens(&[
            "solve",
            "--graph",
            &graph,
            "--k",
            "10",
            "--variant",
            "independent",
            "--out",
            &report,
        ])
        .unwrap();

        let out = run_tokens(&[
            "repair",
            "--graph",
            &graph,
            "--report",
            &report,
            "--variant",
            "independent",
            "--max-changes",
            "2",
        ])
        .unwrap();
        assert!(out.contains("repaired solution of 10 items"), "{out}");

        let out = run_tokens(&[
            "export-dot",
            "--graph",
            &graph,
            "--out",
            &dot,
            "--report",
            &report,
        ])
        .unwrap();
        assert!(out.contains("wrote DOT"), "{out}");
        let content = std::fs::read_to_string(&dot).unwrap();
        assert!(content.contains("digraph"));
        assert_eq!(content.matches("peripheries=2").count(), 10);
    }

    #[test]
    fn closure_and_delta_commands() {
        let graph = tmp("closure-graph.json");
        let closed = tmp("closure-closed.json");
        let changes = tmp("closure-delta.json");
        let updated = tmp("closure-updated.json");

        // A 3-node chain browse graph.
        let mut b = pcover_graph::GraphBuilder::new().normalize_node_weights(true);
        let x = b.add_node(1.0);
        let y = b.add_node(1.0);
        let z = b.add_node(1.0);
        b.add_edge(x, y, 0.5).unwrap();
        b.add_edge(y, z, 0.4).unwrap();
        let g = b.build().unwrap();
        graph_json::write_json(&g, &graph).unwrap();

        let out = run_tokens(&[
            "closure", "--graph", &graph, "--out", &closed, "--depth", "2",
        ])
        .unwrap();
        assert!(out.contains("2 -> 3 edges"), "{out}");

        std::fs::write(
            &changes,
            r#"{"changes": [{"Delist": {"node": 2}}, {"SetNodeWeight": {"node": 0, "weight": 3.0}}]}"#,
        )
        .unwrap();
        let out = run_tokens(&[
            "delta",
            "--graph",
            &graph,
            "--changes",
            &changes,
            "--out",
            &updated,
        ])
        .unwrap();
        assert!(out.contains("applied 2 changes"), "{out}");
        let g2 = load_graph(&updated).unwrap();
        assert_eq!(g2.edge_weight(y, z), None);
        // x set to (unnormalized) 3.0 against y's surviving 1/3:
        // renormalized share 3 / (3 + 1/3) = 0.9.
        assert!((g2.node_weight(x) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn bench_snapshot_writes_stable_schema_and_enforces_delta_wins() {
        let out = tmp("bench-snapshot.json");
        let msg = run_tokens(&["bench-snapshot", "--grid", "small", "--out", &out]).unwrap();
        assert!(msg.contains(&out), "{msg}");

        let parsed: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&out).unwrap()).unwrap();
        assert_eq!(
            parsed.get("schema").unwrap().as_str().unwrap(),
            BENCH_SCHEMA
        );
        let entries = parsed.get("entries").unwrap().as_array().unwrap();
        // 5 solvers x 2 variants x 1 shape x 2 budgets.
        assert_eq!(entries.len(), 20);

        let field = |e: &serde_json::Value, key: &str| e.get(key).unwrap().clone();
        let evals = |solver: &str, variant: &str, k: u64| -> u64 {
            entries
                .iter()
                .find(|e| {
                    field(e, "solver").as_str() == Some(solver)
                        && field(e, "variant").as_str() == Some(variant)
                        && field(e, "k").as_u64() == Some(k)
                })
                .unwrap_or_else(|| panic!("missing entry {solver}/{variant}/k={k}"))
                .get("gain_evaluations")
                .unwrap()
                .as_u64()
                .unwrap()
        };
        for variant in ["independent", "normalized"] {
            for k in [8, 32] {
                assert!(
                    evals("delta", variant, k) < evals("greedy", variant, k),
                    "{variant} k={k}: delta must evaluate strictly fewer gains"
                );
            }
        }
        for e in entries {
            assert!(field(e, "wall_ms").as_f64().unwrap() >= 0.0);
            assert!(field(e, "memory_bytes").as_u64().unwrap() > 0);
            assert!(field(e, "cover").as_f64().unwrap() > 0.0);
        }

        assert!(run_tokens(&["bench-snapshot", "--grid", "bogus", "--out", &out]).is_err());
    }

    #[test]
    fn bench_snapshot_warm_mode_records_bit_identical_cheaper_repairs() {
        let out = tmp("bench-snapshot-warm.json");
        let msg =
            run_tokens(&["bench-snapshot", "--grid", "small", "--warm", "--out", &out]).unwrap();
        assert!(msg.contains("warm-vs-cold"), "{msg}");

        let parsed: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&out).unwrap()).unwrap();
        let entries = parsed.get("entries").unwrap().as_array().unwrap();
        // 20 base entries + 2 variants x 2 budgets x (delta-cold, delta-warm).
        assert_eq!(entries.len(), 28);

        let find = |solver: &str, variant: &str, k: u64| -> &serde_json::Value {
            entries
                .iter()
                .find(|e| {
                    e.get("solver").unwrap().as_str() == Some(solver)
                        && e.get("variant").unwrap().as_str() == Some(variant)
                        && e.get("k").unwrap().as_u64() == Some(k)
                })
                .unwrap_or_else(|| panic!("missing entry {solver}/{variant}/k={k}"))
        };
        for variant in ["independent", "normalized"] {
            for k in [8, 32] {
                let cold = find("delta-cold", variant, k);
                let warm = find("delta-warm", variant, k);
                // Bit-identical answers: identical JSON-printed covers.
                assert_eq!(
                    cold.get("cover").unwrap().to_string(),
                    warm.get("cover").unwrap().to_string(),
                    "{variant} k={k}: warm cover must match cold byte-for-byte"
                );
                // Strictly fewer evaluations even at small n (the hard gate
                // is n >= 1000, but a <=1% edge delta wins at n=200 too).
                assert!(
                    warm.get("gain_evaluations").unwrap().as_u64()
                        < cold.get("gain_evaluations").unwrap().as_u64(),
                    "{variant} k={k}: warm repair must re-evaluate fewer gains"
                );
                let reused = warm.get("rounds_reused").unwrap().as_u64().unwrap();
                let repaired = warm.get("rounds_repaired").unwrap().as_u64().unwrap();
                assert_eq!(reused + repaired, k, "round accounting partitions k");
                assert!(warm.get("delta_changes").unwrap().as_u64().unwrap() >= 1);
            }
        }
    }

    #[test]
    fn bad_variant_is_rejected() {
        let err = run_tokens(&[
            "adapt",
            "--input",
            "x.jsonl",
            "--variant",
            "bogus",
            "--out",
            "y.json",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("variant"));
    }

    #[test]
    fn error_paths_are_clean_messages() {
        // Missing file.
        let err = run_tokens(&["stats", "--graph", "/nonexistent/g.json"]).unwrap_err();
        assert!(err.to_string().contains("io error"), "{err}");

        // k larger than the graph.
        let sessions = tmp("errs.jsonl");
        let graph = tmp("errs-graph.json");
        run_tokens(&[
            "generate",
            "--profile",
            "YC",
            "--scale",
            "0.001",
            "--out",
            &sessions,
        ])
        .unwrap();
        run_tokens(&[
            "adapt",
            "--input",
            &sessions,
            "--variant",
            "independent",
            "--out",
            &graph,
        ])
        .unwrap();
        let err = run_tokens(&[
            "solve",
            "--graph",
            &graph,
            "--k",
            "999999",
            "--variant",
            "independent",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("exceeds"), "{err}");

        // Unparseable k.
        let err = run_tokens(&[
            "solve",
            "--graph",
            &graph,
            "--k",
            "many",
            "--variant",
            "independent",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("--k"), "{err}");

        // Threshold outside [0, 1].
        let err = run_tokens(&[
            "minimize",
            "--graph",
            &graph,
            "--threshold",
            "1.5",
            "--variant",
            "independent",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("1.5"), "{err}");

        // Bad scale and profile for generate.
        assert!(run_tokens(&["generate", "--profile", "ZZ", "--out", "x.jsonl"]).is_err());
        assert!(run_tokens(&[
            "generate",
            "--profile",
            "YC",
            "--scale",
            "nope",
            "--out",
            "x.jsonl"
        ])
        .is_err());
    }

    #[test]
    fn yoochoose_format_generation() {
        let base = tmp("ycgen.dat");
        let out = run_tokens(&[
            "generate",
            "--profile",
            "PM",
            "--scale",
            "0.001",
            "--out",
            &base,
            "--format",
            "yoochoose",
        ])
        .unwrap();
        assert!(out.contains("generated"));
        let clicks = std::path::Path::new(&base).with_extension("clicks.dat");
        let buys = std::path::Path::new(&base).with_extension("buys.dat");
        assert!(clicks.exists() && buys.exists());
        let (cs, _) = cs_io::read_yoochoose(&clicks, &buys).unwrap();
        assert!(!cs.is_empty());
    }
}

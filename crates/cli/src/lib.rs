//! # pcover-cli
//!
//! The end-to-end command line of the Preference Cover system, wiring the
//! Figure 2 architecture: raw data → Data Adaptation Engine → Preference
//! Cover Solver → retained items + coverage metadata.
//!
//! The binary is `pcover`; the library exposes the command implementations
//! so they are unit-testable without spawning processes.
//!
//! ```text
//! pcover generate --profile YC --scale 0.01 --seed 42 --out sessions.jsonl
//! pcover diagnose --input sessions.jsonl
//! pcover adapt    --input sessions.jsonl --variant independent --out graph.json
//! pcover stats    --graph graph.json
//! pcover solve    --graph graph.json --k 100 --variant independent --algorithm lazy
//! pcover minimize --graph graph.json --threshold 0.8 --variant independent
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod args;
pub mod commands;

/// CLI-level errors: argument problems or failures from the underlying
/// libraries, all rendered as user-facing messages.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

impl CliError {
    /// Builds an error from anything displayable.
    pub fn from_display(e: impl std::fmt::Display) -> Self {
        CliError(e.to_string())
    }
}

//! Minimal `--key value` argument parsing.
//!
//! A hand-rolled parser keeps the dependency tree small (see DESIGN.md);
//! the grammar is `<subcommand> <positional>{arity} (--key value | --flag)*`
//! where the positional arity is declared per subcommand in
//! [`positional_arity`] — zero for every command except the file-operand
//! container commands (`convert`, `probe`). Positionals must precede
//! options; a stray positional after a zero-arity subcommand is still a
//! usage error.

use std::collections::HashMap;

use crate::CliError;

/// How many positional operands a subcommand takes (exactly). Commands not
/// listed here accept none, so `pcover solve stray` stays a usage error.
fn positional_arity(command: &str) -> usize {
    match command {
        "convert" => 2,
        "probe" => 1,
        _ => 0,
    }
}

/// Parsed arguments: a subcommand plus positionals and key→value options.
#[derive(Clone, Debug, Default)]
pub struct Args {
    /// The subcommand (first positional token).
    pub command: String,
    /// Positional operands (only for subcommands that declare them).
    positionals: Vec<String>,
    options: HashMap<String, String>,
    /// Keys that appeared without a value (boolean flags).
    flags: Vec<String>,
}

impl Args {
    /// Parses a raw argument list (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Args, CliError> {
        let mut iter = raw.into_iter().peekable();
        let command = iter
            .next()
            .ok_or_else(|| CliError("missing subcommand; try `pcover help`".into()))?;
        if command.starts_with("--") {
            return Err(CliError(format!(
                "expected a subcommand before options, found {command:?}"
            )));
        }
        let arity = positional_arity(&command);
        let mut positionals = Vec::new();
        while positionals.len() < arity {
            match iter.peek() {
                Some(next) if !next.starts_with("--") => {
                    positionals.push(iter.next().expect("peeked"));
                }
                _ => break,
            }
        }
        let mut options = HashMap::new();
        let mut flags = Vec::new();
        while let Some(token) = iter.next() {
            let key = token
                .strip_prefix("--")
                .ok_or_else(|| CliError(format!("expected --option, found {token:?}")))?
                .to_owned();
            if key.is_empty() {
                return Err(CliError("empty option name".into()));
            }
            match iter.peek() {
                Some(next) if !next.starts_with("--") => {
                    let value = iter.next().expect("peeked");
                    if options.insert(key.clone(), value).is_some() {
                        return Err(CliError(format!("option --{key} given twice")));
                    }
                }
                _ => flags.push(key),
            }
        }
        Ok(Args {
            command,
            positionals,
            options,
            flags,
        })
    }

    /// The `idx`-th positional operand, named for the error message.
    pub fn positional(&self, idx: usize, name: &str) -> Result<&str, CliError> {
        self.positionals
            .get(idx)
            .map(String::as_str)
            .ok_or_else(|| CliError(format!("missing required operand <{name}>")))
    }

    /// A required string option.
    pub fn required(&self, key: &str) -> Result<&str, CliError> {
        self.options
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| CliError(format!("missing required option --{key}")))
    }

    /// An optional string option.
    pub fn optional(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// A parsed required option.
    pub fn required_parse<T: std::str::FromStr>(&self, key: &str) -> Result<T, CliError> {
        let raw = self.required(key)?;
        raw.parse()
            .map_err(|_| CliError(format!("cannot parse --{key} value {raw:?}")))
    }

    /// A parsed optional option with a default.
    pub fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.optional(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| CliError(format!("cannot parse --{key} value {raw:?}"))),
        }
    }

    /// Whether a boolean flag was given.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Args, CliError> {
        Args::parse(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_command_options_and_flags() {
        let a = parse(&["solve", "--k", "10", "--graph", "g.json", "--verbose"]).unwrap();
        assert_eq!(a.command, "solve");
        assert_eq!(a.required("k").unwrap(), "10");
        assert_eq!(a.required_parse::<usize>("k").unwrap(), 10);
        assert_eq!(a.optional("graph"), Some("g.json"));
        assert!(a.flag("verbose"));
        assert!(!a.flag("quiet"));
    }

    #[test]
    fn missing_subcommand_is_an_error() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["--k", "10"]).is_err());
    }

    #[test]
    fn duplicate_option_rejected() {
        assert!(parse(&["solve", "--k", "1", "--k", "2"]).is_err());
    }

    #[test]
    fn missing_required_reports_key() {
        let a = parse(&["solve"]).unwrap();
        let err = a.required("graph").unwrap_err();
        assert!(err.to_string().contains("--graph"));
    }

    #[test]
    fn parse_or_defaults() {
        let a = parse(&["solve", "--k", "7"]).unwrap();
        assert_eq!(a.parse_or::<usize>("threads", 4).unwrap(), 4);
        assert_eq!(a.parse_or::<usize>("k", 1).unwrap(), 7);
        assert!(a.parse_or::<usize>("k", 1).is_ok());
        let bad = parse(&["solve", "--k", "seven"]).unwrap();
        assert!(bad.parse_or::<usize>("k", 1).is_err());
    }

    #[test]
    fn positional_after_command_rejected() {
        assert!(parse(&["solve", "stray"]).is_err());
    }

    #[test]
    fn declared_positionals_are_accepted_in_order() {
        let a = parse(&["convert", "in.json", "out.pcov", "--to", "container"]).unwrap();
        assert_eq!(a.positional(0, "input").unwrap(), "in.json");
        assert_eq!(a.positional(1, "output").unwrap(), "out.pcov");
        assert_eq!(a.optional("to"), Some("container"));

        let a = parse(&["probe", "g.pcov", "--verify"]).unwrap();
        assert_eq!(a.positional(0, "file").unwrap(), "g.pcov");
        assert!(a.flag("verify"));
    }

    #[test]
    fn missing_positional_reports_operand_name() {
        let a = parse(&["probe"]).unwrap();
        let err = a.positional(0, "file").unwrap_err();
        assert!(err.to_string().contains("<file>"), "{err}");
    }

    #[test]
    fn excess_positionals_rejected() {
        // A third operand after convert's two is a usage error.
        assert!(parse(&["convert", "a", "b", "c"]).is_err());
        assert!(parse(&["probe", "a", "b"]).is_err());
    }
}

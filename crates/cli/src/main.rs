//! The `pcover` binary: parse, dispatch, print.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use pcover_cli::args::Args;
use pcover_cli::commands;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    // `--help` looks like an option, which the grammar forbids before the
    // subcommand; honor it here so `pcover --help` behaves like `pcover help`.
    if raw.first().is_some_and(|a| a == "--help" || a == "-h") {
        print!("{}", commands::help());
        return;
    }
    let args = match Args::parse(raw) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", commands::help());
            std::process::exit(2);
        }
    };
    match commands::run(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

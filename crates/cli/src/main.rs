//! The `pcover` binary: parse, dispatch, print.

use pcover_cli::args::Args;
use pcover_cli::commands;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match Args::parse(raw) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", commands::HELP);
            std::process::exit(2);
        }
    };
    match commands::run(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

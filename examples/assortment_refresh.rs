//! Assortment refresh: the paper's "incremental maintenance" future-work
//! direction, end to end.
//!
//! A store runs with a Preference-Cover-optimized inventory. A quarter
//! later, demand has shifted, two items were discontinued, and a new item
//! launched. Swapping the whole inventory maximizes cover but churns the
//! warehouse; this example compares
//!
//! * doing nothing (stale inventory on the new graph),
//! * full re-optimization (max cover, max churn),
//! * bounded repair (evict the lowest-value items, greedily refill).
//!
//! Run with: `cargo run --release --example assortment_refresh`

use preference_cover::graph::delta::{apply, Change, GraphDelta};
use preference_cover::prelude::*;
use preference_cover::solver::baselines::evaluate_selection;
use preference_cover::solver::extensions::incremental::repair;

fn main() {
    // Quarter 1: build and optimize.
    let (catalog_cfg, session_cfg) = DatasetProfile::PE.configs(Scale::Fraction(0.003), 11);
    let (_, sessions) = generate_clickstream(&catalog_cfg, &session_cfg);
    let adapted = adapt(
        &sessions,
        &AdaptOptions {
            variant: Variant::Independent,
            label_nodes: false,
            min_edge_support: 1,
        },
    )
    .expect("nonempty clickstream");
    let g1 = adapted.graph;
    let k = g1.node_count() / 20;
    let registry = Registry::builtin();
    let lazy_spec = registry.get("lazy").expect("built-in");
    let q1 = lazy_spec
        .solve(Variant::Independent, &g1, k, &mut SolveCtx::default())
        .expect("valid k");
    println!(
        "Q1: {} items stocked out of {}, cover {:.2}%",
        k,
        g1.node_count(),
        q1.cover * 100.0
    );

    // Quarter 2: the catalog drifts. Demand for the currently-stocked head
    // items fades, two retained items are discontinued, one new item
    // arrives as a strong substitute for a popular one.
    let popular = q1.order[0];
    let mut delta = GraphDelta::new();
    for &v in q1.order.iter().take(20) {
        delta = delta.push(Change::SetNodeWeight {
            node: v,
            weight: g1.node_weight(v) * 0.3,
        });
    }
    delta = delta
        .push(Change::Delist { node: q1.order[3] })
        .push(Change::Delist { node: q1.order[7] })
        .push(Change::AddNode {
            weight: 0.01,
            label: Some("new-hot-item".into()),
        });
    let new_item = ItemId::from_index(g1.node_count());
    delta = delta.push(Change::UpsertEdge {
        source: popular,
        target: new_item,
        weight: 0.6,
    });
    let g2 = apply(&g1, &delta).expect("valid delta");
    println!(
        "Q2 graph: {} nodes, {} edges after {} changes",
        g2.node_count(),
        g2.edge_count(),
        delta.len()
    );

    // The stale Q1 inventory still contains the two delisted items; drop
    // them (they are gone physically) and evaluate what's left.
    let stale: Vec<ItemId> = q1
        .order
        .iter()
        .copied()
        .filter(|&v| !(v == q1.order[3] || v == q1.order[7]))
        .collect();
    let stale_report = evaluate_selection::<Independent>(&g2, &stale).expect("valid selection");
    println!(
        "\ndo nothing:      cover {:.3}% with 0 new stock movements",
        stale_report.cover * 100.0
    );

    // Bounded repair: refill the two freed slots plus up to 3 swaps.
    let repaired = repair::<Independent>(&g2, &stale, 3).expect("valid repair");
    println!(
        "bounded repair:  cover {:.3}% with {} evictions + {} additions",
        repaired.report.cover * 100.0,
        repaired.evicted.len(),
        repaired.added.len()
    );

    // Full re-optimization: the ceiling, at maximal churn.
    let fresh = lazy_spec
        .solve(Variant::Independent, &g2, k, &mut SolveCtx::default())
        .expect("valid k");
    let kept: usize = fresh.order.iter().filter(|v| stale.contains(v)).count();
    println!(
        "re-optimize all: cover {:.3}% but only {} of {} old items kept ({} swapped)",
        fresh.cover * 100.0,
        kept,
        stale.len(),
        k - kept
    );

    let recovered = (repaired.report.cover - stale_report.cover)
        / (fresh.cover - stale_report.cover).max(1e-12);
    println!(
        "\nbounded repair recovered {:.0}% of the achievable improvement while \
         touching at most {} slots",
        recovered * 100.0,
        3 + 2
    );

    assert!(repaired.report.cover >= stale_report.cover - 1e-12);
    assert!(fresh.cover >= repaired.report.cover - 1e-9);
}

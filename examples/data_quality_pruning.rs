//! Inventory disposal: the paper's data-maintenance scenario, plus the
//! revenue and pinned-item extensions.
//!
//! Large inventories cost money to maintain (cleaning, entity resolution,
//! semantic enhancement), so platforms periodically dispose of the least
//! valuable few percent. Dropping the *worst sellers* is the obvious move;
//! Preference Cover instead drops the items whose demand is best absorbed
//! by what remains — and can weight the decision by revenue or respect
//! contractual must-keep items.
//!
//! Run with: `cargo run --release --example data_quality_pruning`

use preference_cover::prelude::*;
use preference_cover::solver::extensions::{pinned, revenue};

fn main() {
    let (catalog_cfg, session_cfg) = DatasetProfile::PF.configs(Scale::Fraction(0.005), 99);
    let (_, sessions) = generate_clickstream(&catalog_cfg, &session_cfg);
    let adapted = adapt(
        &sessions,
        &AdaptOptions {
            variant: Variant::Independent,
            label_nodes: false,
            min_edge_support: 1,
        },
    )
    .expect("nonempty clickstream");
    let g = &adapted.graph;
    let n = g.node_count();
    // Dispose aggressively — half the catalog. (At a 5% disposal the tail
    // is so light that any policy keeps ~100% of demand; the differences
    // between policies appear once real demand is at stake.)
    let keep = n / 2;

    // Baseline disposal: drop the worst sellers.
    let registry = Registry::builtin();
    let naive = adapted
        .solve(
            registry.get("topk-w").expect("built-in"),
            keep,
            &mut SolveCtx::default(),
        )
        .expect("valid k");
    // Preference-aware disposal.
    let smart = adapted
        .solve(
            registry.get("lazy").expect("built-in"),
            keep,
            &mut SolveCtx::default(),
        )
        .expect("valid k");
    println!("disposing 50% of a {n}-item catalog (keeping {keep}):");
    println!(
        "  drop worst sellers: {:.4}% of demand still served",
        naive.cover * 100.0
    );
    println!(
        "  preference cover:   {:.4}% of demand still served",
        smart.cover * 100.0
    );

    // Revenue-weighted: make a random 10% of items premium (5x revenue) and
    // re-optimize for expected revenue instead of sales count.
    let revenues: Vec<f64> = (0..n)
        .map(|i| if i % 10 == 0 { 5.0 } else { 1.0 })
        .collect();
    let rev = revenue::solve::<Independent>(g, &revenues, keep).expect("valid revenue weights");
    println!(
        "\nrevenue-weighted objective: {:.3}% of attainable revenue retained \
         ({:.3} revenue units per request)",
        rev.report.cover * 100.0,
        rev.expected_revenue_per_request()
    );

    // Pinned items: contracts force the first 20 item ids to stay.
    let pins: Vec<ItemId> = (0..20u32).map(ItemId::new).collect();
    let constrained =
        pinned::solve_with_prefix::<Independent>(g, &pins, keep).expect("valid pinned prefix");
    println!(
        "\nwith 20 contractual must-keep items pinned: {:.3}% of demand served \
         (unconstrained: {:.3}%)",
        constrained.cover * 100.0,
        smart.cover * 100.0
    );

    assert!(smart.cover >= naive.cover - 1e-9);
    assert!(constrained.cover <= smart.cover + 1e-9);
}

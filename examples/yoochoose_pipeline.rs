//! The public-dataset path: YooChoose-format files end to end.
//!
//! The paper includes the public YooChoose RecSys'15 dataset so readers can
//! reproduce its results. This example writes a synthetic clickstream in
//! the exact YooChoose file format, then runs the entire pipeline off those
//! files — drop in the real `yoochoose-clicks.dat` / `yoochoose-buys.dat`
//! (pass their paths as the two CLI arguments) and the same code processes
//! the genuine dataset.
//!
//! Run with: `cargo run --release --example yoochoose_pipeline [clicks.dat buys.dat]`

use preference_cover::clickstream::io as cs_io;
use preference_cover::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (clicks_path, buys_path) = if args.len() == 2 {
        (args[0].clone(), args[1].clone())
    } else {
        // No real dataset given: synthesize one in the same format.
        let dir = std::env::temp_dir().join("pcover-yoochoose-example");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let clicks = dir.join("yoochoose-clicks.dat");
        let buys = dir.join("yoochoose-buys.dat");
        let (catalog_cfg, session_cfg) = DatasetProfile::YC.configs(Scale::Fraction(0.02), 15);
        let (_, cs) = generate_clickstream(&catalog_cfg, &session_cfg);
        cs_io::write_yoochoose(&cs, &clicks, &buys).expect("write synthetic files");
        println!(
            "(no files given; synthesized YooChoose-format data in {})\n",
            dir.display()
        );
        (
            clicks.to_string_lossy().into_owned(),
            buys.to_string_lossy().into_owned(),
        )
    };

    // 1. Parse the two-file format, normalizing to single-purchase sessions.
    let (sessions, filter_stats) =
        cs_io::read_yoochoose(&clicks_path, &buys_path).expect("readable YooChoose files");
    println!(
        "parsed {} purchase sessions ({} raw, {} dropped without purchase, {} split)",
        sessions.len(),
        filter_stats.raw_sessions,
        filter_stats.dropped_no_purchase,
        filter_stats.split_multi_purchase
    );

    // 2. Variant diagnostics — the paper classifies YC as Independent.
    let diagnosis = diagnose(&sessions, &DiagnosticThresholds::default());
    println!(
        "diagnostics: <=1-alt {:.3}, NMI {:?} -> {:?}",
        diagnosis.single_alt_fraction, diagnosis.weighted_mean_nmi, diagnosis.recommendation
    );

    // 3. Adapt and solve at the paper's Figure 4c operating points.
    let adapted = adapt(
        &sessions,
        &AdaptOptions {
            variant: Variant::Independent,
            label_nodes: false,
            min_edge_support: 1,
        },
    )
    .expect("nonempty clickstream");
    let g = &adapted.graph;
    println!(
        "graph: {} items, {} edges\n",
        g.node_count(),
        g.edge_count()
    );

    println!(
        "{:>6} | {:>8} | {:>8} | {:>8}",
        "k/n", "Greedy", "TopK-C", "TopK-W"
    );
    let registry = Registry::builtin();
    let solve = |name: &str, k: usize| {
        registry
            .get(name)
            .expect("built-in solver")
            .solve(Variant::Independent, g, k, &mut SolveCtx::default())
            .expect("valid k")
    };
    for tenth in [1, 3, 5, 7, 9] {
        let k = g.node_count() * tenth / 10;
        let gr = solve("lazy", k);
        let tc = solve("topk-c", k);
        let tw = solve("topk-w", k);
        println!(
            "{:>5.0}% | {:>7.2}% | {:>7.2}% | {:>7.2}%",
            tenth as f64 * 10.0,
            gr.cover * 100.0,
            tc.cover * 100.0,
            tw.cover * 100.0
        );
    }
}

//! Writes the paper's Figure 1 example graph as a JSON file — a
//! ready-made `--graph` input for `pcover serve` (and the CI serve smoke
//! test, which launches the server against exactly this file).
//!
//! Run with: `cargo run --release --example export_figure1 -- figure1.json`

use preference_cover::graph::examples::figure1;
use preference_cover::graph::io::json::write_json;

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "figure1.json".to_owned());
    let g = figure1();
    write_json(&g, &path).expect("write graph JSON");
    println!("wrote Figure 1 graph ({} nodes) to {path}", g.node_count());
}

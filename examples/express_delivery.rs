//! Express delivery store: the paper's first motivating scenario.
//!
//! A same-day-delivery warehouse can stock only a small percentage of the
//! full catalog (the paper cites Amazon Prime same-day as the example).
//! This example synthesizes an electronics-like clickstream (PE profile,
//! scaled down), builds the preference graph, diagnoses the variant, and
//! compares stocking the top 5% sellers against the Preference Cover
//! greedy's 5%.
//!
//! Run with: `cargo run --release --example express_delivery`

use preference_cover::prelude::*;

fn main() {
    // 1. Raw data: a synthetic PE-like clickstream (~19K items, ~108K
    //    sessions at 1% scale).
    let (catalog_cfg, session_cfg) = DatasetProfile::PE.configs(Scale::Fraction(0.01), 2024);
    let (_, sessions) = generate_clickstream(&catalog_cfg, &session_cfg);
    let stats = sessions.stats();
    println!(
        "clickstream: {} sessions, {} items, mean {:.2} alternatives/session",
        stats.sessions,
        stats.items,
        stats.mean_alternatives()
    );

    // 2. Which variant fits? (PE-style data clicks alternatives
    //    independently, so the diagnostics should say Independent.)
    let diagnosis = diagnose(&sessions, &DiagnosticThresholds::default());
    println!(
        "diagnostics: <=1-alt fraction {:.3}, NMI {:?} -> {:?}",
        diagnosis.single_alt_fraction, diagnosis.weighted_mean_nmi, diagnosis.recommendation
    );
    let variant = diagnosis
        .recommendation
        .variant()
        .unwrap_or(Variant::Independent);

    // 3. Data Adaptation Engine: clickstream -> preference graph.
    let adapted = adapt(
        &sessions,
        &AdaptOptions {
            variant,
            label_nodes: false,
            min_edge_support: 1,
        },
    )
    .expect("nonempty clickstream");
    let g = &adapted.graph;
    println!(
        "preference graph: {} nodes, {} edges, max in-degree {}",
        g.node_count(),
        g.edge_count(),
        g.max_in_degree()
    );

    // 4. Stock 5% of the catalog.
    let k = g.node_count() / 20;
    let registry = Registry::builtin();
    let naive = adapted
        .solve(
            registry.get("topk-w").expect("built-in"),
            k,
            &mut SolveCtx::default(),
        )
        .expect("valid k");
    let smart = adapted
        .solve(
            registry.get("lazy").expect("built-in"),
            k,
            &mut SolveCtx::default(),
        )
        .expect("valid k");
    println!("\nstocking k = {k} items (5% of catalog):");
    println!(
        "  TopK-W (best sellers):   {:.2}% of purchase requests served",
        naive.cover * 100.0
    );
    println!(
        "  Preference Cover greedy: {:.2}% of purchase requests served",
        smart.cover * 100.0
    );
    println!(
        "  lift: +{:.2} percentage points, i.e. {:.1}% fewer lost sales",
        (smart.cover - naive.cover) * 100.0,
        (1.0 - (1.0 - smart.cover) / (1.0 - naive.cover)) * 100.0
    );

    // 5. The incremental trajectory prices smaller warehouses for free.
    println!("\nwarehouse sizing (same greedy run, prefix covers):");
    for percent in [1, 2, 5] {
        let kp = g.node_count() * percent / 100;
        if let Some((_, cover)) = smart.prefix(kp) {
            println!(
                "  {percent:>2}% of catalog -> {:.2}% of requests",
                cover * 100.0
            );
        }
    }

    assert!(smart.cover >= naive.cover - 1e-9);
}

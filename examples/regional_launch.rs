//! Regional launch: the complementary minimization problem.
//!
//! Opening a branch overseas (the paper's AliExpress scenario), the
//! business question inverts: not "how much coverage do k items buy" but
//! "how few items reach the coverage target the launch plan demands".
//! This example uses a PM-like (motors) clickstream, which the diagnostics
//! classify as Normalized, and compares the greedy minimizer against the
//! binary-search adaptations of both TopK baselines across thresholds —
//! the Figure 4f experiment as a business narrative.
//!
//! Run with: `cargo run --release --example regional_launch`

use preference_cover::prelude::*;
use preference_cover::solver::minimize;

fn main() {
    let (catalog_cfg, session_cfg) = DatasetProfile::PM.configs(Scale::Fraction(0.005), 7);
    let (_, sessions) = generate_clickstream(&catalog_cfg, &session_cfg);

    let diagnosis = diagnose(&sessions, &DiagnosticThresholds::default());
    println!(
        "diagnostics: {:.1}% of sessions consider <= 1 alternative -> {:?}",
        diagnosis.single_alt_fraction * 100.0,
        diagnosis.recommendation
    );
    assert_eq!(diagnosis.recommendation, Recommendation::Normalized);

    let adapted = adapt(
        &sessions,
        &AdaptOptions {
            variant: Variant::Normalized,
            label_nodes: false,
            min_edge_support: 1,
        },
    )
    .expect("nonempty clickstream");
    let g = &adapted.graph;
    println!(
        "catalog: {} items; regulations and logistics cap the launch inventory\n",
        g.node_count()
    );

    println!(
        "{:>9} | {:>8} | {:>8} | {:>8}",
        "threshold", "Greedy", "TopK-C", "TopK-W"
    );
    println!("{:->9}-+-{:->8}-+-{:->8}-+-{:->8}", "", "", "", "");
    for threshold in [0.5, 0.6, 0.7, 0.8, 0.9] {
        let gr = minimize::greedy_min_cover::<Normalized>(g, threshold).expect("reachable");
        let tc = minimize::top_k_coverage_min_cover::<Normalized>(g, threshold).expect("reachable");
        let tw = minimize::top_k_weight_min_cover::<Normalized>(g, threshold).expect("reachable");
        println!(
            "{:>9.0}% | {:>8} | {:>8} | {:>8}",
            threshold * 100.0,
            gr.set_size(),
            tc.set_size(),
            tw.set_size()
        );
        assert!(gr.set_size() <= tc.set_size());
        assert!(gr.set_size() <= tw.set_size());
    }

    println!("\nGreedy ships the launch plan with the smallest inventory at every target. ✔");
}

//! Quickstart: the paper's Figure 1 / Example 1.1 walkthrough.
//!
//! Five items, budget for two. The naive top-seller choice keeps A and B
//! and satisfies ~77% of requests; the Preference Cover greedy keeps B and
//! D (the *least-sold* item!) and satisfies 87.3%, because B also covers
//! most requests for A and all of C, while D covers 90% of E.
//!
//! Run with: `cargo run --release --example quickstart`

use preference_cover::prelude::*;

fn main() {
    let g = preference_cover::graph::examples::figure1();
    let k = 2;

    // All solvers are dispatched by name through the registry.
    let registry = Registry::builtin();
    let solve = |name: &str| {
        registry
            .get(name)
            .expect("built-in solver")
            .solve(
                Variant::Normalized,
                &g,
                k,
                &mut SolveCtx::new(SolverConfig::default()),
            )
            .expect("valid k")
    };

    println!("Figure 1 catalog ({} items, keeping {k}):", g.node_count());
    for v in g.node_ids() {
        let alternatives: Vec<String> = g
            .out_edges(v)
            .map(|(u, w)| format!("{} ({:.0}%)", g.label(u).unwrap_or("?"), w * 100.0))
            .collect();
        println!(
            "  {}  demand {:>4.1}%  alternatives: {}",
            g.label(v).unwrap_or("?"),
            g.node_weight(v) * 100.0,
            if alternatives.is_empty() {
                "none".to_owned()
            } else {
                alternatives.join(", ")
            }
        );
    }

    // The naive baseline: keep the best sellers.
    let naive = solve("topk-w");
    println!(
        "\nTopK-W keeps {:?} and covers {:.1}% of requests",
        labels(&g, &naive.order),
        naive.cover * 100.0
    );

    // The paper's greedy.
    let smart = solve("greedy");
    println!(
        "Greedy keeps {:?} and covers {:.1}% of requests",
        labels(&g, &smart.order),
        smart.cover * 100.0
    );

    // Brute force confirms greedy found the optimum here.
    let optimal = solve("bf");
    println!(
        "Brute force optimum: {:?} at {:.1}%",
        labels(&g, &optimal.order),
        optimal.cover * 100.0
    );

    // The coverage metadata of Figure 2: how well each item's requests are
    // served by the retained set.
    println!("\nPer-item coverage under the greedy solution:");
    for v in g.node_ids() {
        println!(
            "  {}  {:>5.1}%{}",
            g.label(v).unwrap_or("?"),
            smart.coverage_of(&g, v) * 100.0,
            if smart.order.contains(&v) {
                "  (retained)"
            } else {
                ""
            }
        );
    }

    assert!((smart.cover - 0.873).abs() < 1e-9, "the paper's 87.3%");
    assert!((naive.cover - 0.77).abs() < 1e-9, "the paper's ~77%");
    println!("\nAll numbers match the paper. ✔");
}

fn labels(g: &PreferenceGraph, order: &[ItemId]) -> Vec<String> {
    order
        .iter()
        .map(|&v| g.label(v).unwrap_or("?").to_owned())
        .collect()
}

//! # preference-cover
//!
//! A complete Rust implementation of **"Inventory Reduction via Maximal
//! Coverage in E-Commerce"** (Gershtein, Milo, Novgorodov — EDBT 2020): the
//! Preference Cover problem, its Independent (`IPC_k`) and Normalized
//! (`NPC_k`) variants, the scalable greedy solver family, the Data
//! Adaptation Engine that builds preference graphs from clickstreams, and
//! synthetic data generation standing in for the paper's private datasets.
//!
//! This crate is a facade re-exporting the workspace's subcrates under one
//! roof:
//!
//! * [`graph`] — the preference-graph substrate ([`pcover_graph`]).
//! * [`solver`] — cover functions, greedy/lazy/parallel solvers, baselines,
//!   brute force, minimization, extensions ([`pcover_core`]).
//! * [`clickstream`] — session model and IO ([`pcover_clickstream`]).
//! * [`datagen`] — synthetic catalogs, sessions and graphs
//!   ([`pcover_datagen`]).
//! * [`adapt`] — clickstream → graph construction and variant diagnostics
//!   ([`pcover_adapt`]).
//!
//! ## Five-minute tour
//!
//! ```
//! use preference_cover::prelude::*;
//!
//! // The paper's Figure 1 graph: five items, greedy retains B then D and
//! // covers 87.3% of requests with 2 of 5 items. Solvers are dispatched
//! // by name through the registry (see `Registry::builtin()` for the
//! // full family).
//! let registry = Registry::builtin();
//! let greedy = registry.get("greedy").unwrap();
//! let g = preference_cover::graph::examples::figure1();
//! let report = greedy
//!     .solve(Variant::Normalized, &g, 2, &mut SolveCtx::default())
//!     .unwrap();
//! assert!((report.cover - 0.873).abs() < 1e-9);
//!
//! // End to end: synthesize a clickstream, build the graph, solve.
//! let (catalog_cfg, session_cfg) = DatasetProfile::YC.configs(Scale::Fraction(0.002), 42);
//! let (_, sessions) = generate_clickstream(&catalog_cfg, &session_cfg);
//! let adapted = adapt(&sessions, &AdaptOptions::default()).unwrap();
//! let lazy = registry.get("lazy").unwrap();
//! let report = adapted.solve(lazy, 20, &mut SolveCtx::default()).unwrap();
//! assert!(report.cover > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use pcover_adapt::{adapt, AdaptOptions, AdaptReport, Adapted};

/// The preference-graph substrate (re-export of [`pcover_graph`]).
pub mod graph {
    pub use pcover_graph::*;
}

/// Solvers and cover functions (re-export of [`pcover_core`]).
pub mod solver {
    pub use pcover_core::*;
}

/// Clickstream model and IO (re-export of [`pcover_clickstream`]).
pub mod clickstream {
    pub use pcover_clickstream::*;
}

/// Synthetic data generation (re-export of [`pcover_datagen`]).
pub mod datagen {
    pub use pcover_datagen::*;
}

/// Adaptation engine and diagnostics (re-export of [`pcover_adapt`]).
pub mod adaptation {
    pub use pcover_adapt::*;
}

/// The names most programs need, in one import.
pub mod prelude {
    pub use pcover_adapt::diagnostics::{diagnose, DiagnosticThresholds, Recommendation};
    pub use pcover_adapt::{adapt, AdaptOptions, Adapted};
    pub use pcover_clickstream::{Clickstream, Session};
    pub use pcover_core::{
        baselines, brute_force, greedy, lazy, local_search, minimize, parallel, stochastic,
        streaming, Algorithm, CoverModel, Independent, NoopObserver, Normalized, Observer,
        ProgressObserver, Registry, SolveCtx, SolveReport, Solver, SolverCaps, SolverConfig,
        SolverSpec, TraceObserver, Variant,
    };
    pub use pcover_datagen::behavior::BehaviorModel;
    pub use pcover_datagen::graphgen::{generate_graph, GraphGenConfig};
    pub use pcover_datagen::profiles::{DatasetProfile, Scale};
    pub use pcover_datagen::sessions::{generate_clickstream, SessionConfig};
    pub use pcover_graph::{GraphBuilder, GraphStats, ItemId, PreferenceGraph};
}
